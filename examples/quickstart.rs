//! Quickstart: the paper's §1 introductory program, driven interactively.
//!
//! Three trails run in parallel: one increments `v` every second, one
//! resets it on every `Restart` input, and one prints every change
//! (notified through the internal event `changed`).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ceu::runtime::{Host, HostResult, Status, Value};
use ceu::{Compiler, Simulator};

/// The §1 program, verbatim.
const PROGRAM: &str = r#"
    input int Restart;     // an external event
    internal void changed; // an internal event
    int v = 0;             // a variable
    par do
       loop do             // 1st trail
          await 1s;
          v = v + 1;
          emit changed;
       end
    with
       loop do             // 2nd trail
          v = await Restart;
          emit changed;
       end
    with
       loop do             // 3rd trail
          await changed;
          _printf("v = %d\n", v);
       end
    end
"#;

/// A host that implements `_printf` for the usual two-argument form.
struct Stdio;

impl Host for Stdio {
    fn call(&mut self, name: &str, args: &[Value]) -> HostResult<Value> {
        match name {
            "printf" => {
                if let [Value::Str(fmt), rest @ ..] = args {
                    let mut out = fmt.to_string();
                    for v in rest {
                        out = out.replacen("%d", &v.to_string(), 1);
                    }
                    print!("{out}");
                } else {
                    println!("{args:?}");
                }
                Ok(Value::Int(0))
            }
            other => Err(format!("no `_{other}`")),
        }
    }
}

fn main() {
    // the compiler runs the full pipeline: parse → bounded-execution check
    // → resolve → codegen → DFA determinism analysis
    let program = Compiler::new().compile(PROGRAM).expect("program is safe");
    println!(
        "compiled: {} tracks, {} gates, {} data slots",
        program.blocks.len(),
        program.gates.len(),
        program.data_len
    );

    let mut sim = Simulator::new(program, Stdio);
    sim.start().expect("boot");

    println!("--- three seconds pass ---");
    sim.advance_by(3_000_000).expect("time");

    println!("--- Restart = 100 ---");
    sim.event("Restart", Some(Value::Int(100))).expect("event");

    println!("--- two more seconds ---");
    sim.advance_by(2_000_000).expect("time");

    assert_eq!(sim.read_var("v#0"), Some(&Value::Int(102)));
    assert_eq!(sim.status(), Status::Running);
    println!("final v = 102, program still reactive — quickstart ok");
}

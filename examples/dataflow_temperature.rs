//! Dataflow in Céu (§2.2): dependency chains and mutual dependencies
//! expressed with internal events.
//!
//! Part 1 is the `v1 → v2 → v3` propagation chain; part 2 is the
//! Celsius/Fahrenheit pair, whose mutual dependency would need explicit
//! `delay` combinators in classic dataflow languages but simply works
//! under Céu's stack policy for internal events.
//!
//! ```sh
//! cargo run --example dataflow_temperature
//! ```

use ceu::runtime::{NullHost, Value};
use ceu::{Compiler, Simulator};

const CHAIN: &str = r#"
    input int Set;
    int v1, v2, v3;
    internal void v1_evt, v2_evt, v3_evt;
    par do
       loop do              // v2 = v1 + 1
          await v1_evt;
          v2 = v1 + 1;
          emit v2_evt;
       end
    with
       loop do              // v3 = v2 * 2
          await v2_evt;
          v3 = v2 * 2;
          emit v3_evt;
       end
    with
       loop do              // external writes to v1
          v1 = await Set;
          emit v1_evt;
       end
    end
"#;

const TEMPERATURE: &str = r#"
    input int SetC, SetF;
    int tc, tf;
    internal void tc_evt, tf_evt;
    par do
       loop do              // tf follows tc
          await tc_evt;
          tf = 9 * tc / 5 + 32;
          emit tf_evt;
       end
    with
       loop do              // tc follows tf — mutual dependency, no cycle
          await tf_evt;
          tc = 5 * (tf-32) / 9;
          emit tc_evt;
       end
    with
       loop do
          tc = await SetC;
          emit tc_evt;
       end
    with
       loop do
          tf = await SetF;
          emit tf_evt;
       end
    end
"#;

fn main() {
    // ---- dependency chain ----
    let program = Compiler::new().compile(CHAIN).expect("chain is deterministic");
    let mut sim = Simulator::new(program, NullHost);
    sim.start().unwrap();
    for set in [10, 15, 0] {
        sim.event("Set", Some(Value::Int(set))).unwrap();
        let v2 = sim.read_var("v2#1").unwrap().clone();
        let v3 = sim.read_var("v3#2").unwrap().clone();
        println!("v1={set:3}  →  v2={v2:3}  →  v3={v3}");
        assert_eq!(v2, Value::Int(set + 1));
        assert_eq!(v3, Value::Int((set + 1) * 2));
    }

    // ---- mutual dependency ----
    let program = Compiler::new().compile(TEMPERATURE).expect("temperature is deterministic");
    let mut sim = Simulator::new(program, NullHost);
    sim.start().unwrap();

    sim.event("SetC", Some(Value::Int(100))).unwrap();
    println!("set 100°C → {}°F", sim.read_var("tf#1").unwrap());
    assert_eq!(sim.read_var("tf#1"), Some(&Value::Int(212)));

    sim.event("SetF", Some(Value::Int(32))).unwrap();
    println!("set  32°F → {}°C", sim.read_var("tc#0").unwrap());
    assert_eq!(sim.read_var("tc#0"), Some(&Value::Int(0)));

    sim.event("SetC", Some(Value::Int(-40))).unwrap();
    println!("set -40°C → {}°F (the crossing point)", sim.read_var("tf#1").unwrap());
    assert_eq!(sim.read_var("tf#1"), Some(&Value::Int(-40)));

    println!("dataflow ok — no delay combinators, no cycles");
}

//! GALS multi-process composition — the paper's **future-work** sketch
//! ("Multiple processes"), implemented: programs declare `output` events;
//! the environment (here, this driver playing the role of the OS) links
//! one process's outputs to another's inputs. Each process keeps its own
//! synchronous clock; the composition is globally asynchronous.
//!
//! Process 1 (producer) samples a sensor every 100 ms and emits each
//! reading. Process 2 (consumer) smooths readings and raises an alarm
//! when the smoothed value crosses a threshold — and clears it when it
//! falls back.
//!
//! ```sh
//! cargo run --example gals_pipeline
//! ```

use ceu::runtime::{Host, HostResult, Machine, NullHost, Value};
use ceu::Compiler;

/// The producer: `output int Sample;` — §"Future work" syntax, verbatim
/// (`emit A` from synchronous code).
const PRODUCER: &str = r#"
    output int Sample;
    int reading;
    loop do
       reading = _sensor();
       emit Sample = reading;
       await 100ms;
    end
"#;

/// The consumer: a 4-sample moving average with hysteresis alarms.
const CONSUMER: &str = r#"
    input int Sample;
    output int Alarm;
    int[4] window;
    int idx, n, sum, avg, alarmed;
    loop do
       int s = await Sample;
       sum = sum - window[idx] + s;
       window[idx] = s;
       idx = (idx + 1) % 4;
       if n < 4 then
          n = n + 1;
       end
       avg = sum / n;
       if avg > 75 then
          if !alarmed then
             alarmed = 1;
             emit Alarm = avg;
          end
       else
          if avg < 60 then
             if alarmed then
                alarmed = 0;
                emit Alarm = 0;
             end
          end
       end
    end
"#;

/// The producer's sensor: a deterministic spike waveform.
struct SensorHost {
    t: i64,
}

impl Host for SensorHost {
    fn call(&mut self, name: &str, _args: &[Value]) -> HostResult<Value> {
        match name {
            "sensor" => {
                self.t += 1;
                // calm …, spike between samples 20-35, calm again
                let v = if (20..35).contains(&self.t) { 90 } else { 40 };
                Ok(Value::Int(v))
            }
            other => Err(format!("no `_{other}`")),
        }
    }
}

fn main() {
    let producer = Compiler::new().compile(PRODUCER).expect("producer is safe");
    let consumer = Compiler::new().compile(CONSUMER).expect("consumer is safe");

    let mut p1 = Machine::new(producer);
    let mut p2 = Machine::new(consumer);
    let mut h1 = SensorHost { t: 0 };
    let mut h2 = NullHost;

    let sample_out = p1.event_id("Sample").unwrap();
    let sample_in = p2.event_id("Sample").unwrap();

    p1.go_init(&mut h1).unwrap();
    p2.go_init(&mut h2).unwrap();

    // The "OS": each process runs on its own clock (GALS) — the consumer's
    // clock even drifts relative to the producer's; only the *order* of the
    // linked events matters, so the composition still behaves.
    let mut alarms: Vec<(u64, i64)> = Vec::new();
    for tick in 1..=60u64 {
        let t1 = tick * 100_000;
        p1.go_time(t1, &mut h1).unwrap();
        // link: producer outputs → consumer inputs
        for (eid, value) in p1.take_outputs() {
            assert_eq!(eid, sample_out);
            p2.go_event(sample_in, value, &mut h2).unwrap();
        }
        // the consumer's local clock runs 3% slow — irrelevant, as promised
        p2.go_time(t1 * 97 / 100, &mut h2).unwrap();
        for (eid, value) in p2.take_outputs() {
            let name = &p2.program().events.get(eid).name;
            let v = value.and_then(|v| v.as_int()).unwrap_or(0);
            println!("t={:>4}ms  {name} = {v}", t1 / 1000);
            alarms.push((t1, v));
        }
    }

    // the spike (samples 20..35) must raise exactly one alarm and clear it
    assert_eq!(alarms.len(), 2, "one raise + one clear: {alarms:?}");
    assert!(alarms[0].1 > 75, "raised with the smoothed value");
    assert_eq!(alarms[1].1, 0, "cleared after the spike");
    assert!(alarms[0].0 < alarms[1].0);
    println!("gals pipeline ok — two synchronous processes, asynchronous composition");
}

//! `suspend` extension demo — a game-style pause screen.
//!
//! The paper's related-work section singles out Esterel's `suspend` as a
//! statement "which we are considering to incorporate into Céu"; this
//! reproduction implements it (level-sensitive, like Céu v2's `pause/if`).
//! A game clock, a spawn timer, and an animation all live inside one
//! `suspend` block; the pause button freezes all of them at once — their
//! timers do not age while paused — while the menu trail outside keeps
//! reacting.
//!
//! ```sh
//! cargo run --example pause_resume
//! ```

use ceu::runtime::{RecordingHost, Value};
use ceu::{Compiler, Simulator};

const GAME: &str = r#"
    input int Pause;
    input void MenuKey;
    deterministic _tick, _spawn, _frame, _menu;
    int seconds, enemies, frames, menu_hits;

    par do
       suspend Pause do
          par do
             loop do                  // the game clock
                await 1s;
                seconds = seconds + 1;
                _tick(seconds);
             end
          with
             loop do                  // enemy spawner
                await 700ms;
                enemies = enemies + 1;
                _spawn(enemies);
             end
          with
             loop do                  // animation
                await 250ms;
                frames = frames + 1;
                _frame(frames);
             end
          end
       end
       await forever;
    with
       loop do                        // the pause menu lives outside
          await MenuKey;
          menu_hits = menu_hits + 1;
          _menu(menu_hits);
       end
    end
"#;

fn read(sim: &Simulator<RecordingHost>, name: &str) -> i64 {
    let unique = sim
        .machine()
        .program()
        .slots
        .iter()
        .find(|s| s.name.split('#').next() == Some(name))
        .unwrap()
        .name
        .clone();
    sim.read_var(&unique).and_then(|v| v.as_int()).unwrap()
}

fn main() {
    let program = Compiler::new().compile(GAME).expect("game is safe");
    let mut sim = Simulator::new(program, RecordingHost::new());
    sim.start().unwrap();

    // 3 seconds of play
    sim.advance_to(3_000_000).unwrap();
    println!(
        "t=3s    clock={}s enemies={} frames={}",
        read(&sim, "seconds"),
        read(&sim, "enemies"),
        read(&sim, "frames")
    );
    assert_eq!(read(&sim, "seconds"), 3);
    assert_eq!(read(&sim, "enemies"), 4); // 0.7, 1.4, 2.1, 2.8
    assert_eq!(read(&sim, "frames"), 12);

    // pause for 10 seconds; the menu still reacts, the game is frozen
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    println!("t=3s    PAUSED");
    sim.advance_to(8_000_000).unwrap();
    sim.event("MenuKey", None).unwrap();
    sim.advance_to(13_000_000).unwrap();
    sim.event("MenuKey", None).unwrap();
    assert_eq!(read(&sim, "seconds"), 3, "clock frozen");
    assert_eq!(read(&sim, "frames"), 12, "animation frozen");
    assert_eq!(read(&sim, "menu_hits"), 2, "menu alive");
    println!("t=13s   still clock=3s, menu handled {} keys", read(&sim, "menu_hits"));

    // resume: every timer owes exactly its remaining share, not 10s worth
    sim.event("Pause", Some(Value::Int(0))).unwrap();
    println!("t=13s   RESUMED");
    sim.advance_to(16_000_000).unwrap();
    println!(
        "t=16s   clock={}s enemies={} frames={}",
        read(&sim, "seconds"),
        read(&sim, "enemies"),
        read(&sim, "frames")
    );
    // 3s of play before + 3s after = 6 ticks; no burst of 10 stale ticks
    assert_eq!(read(&sim, "seconds"), 6);
    assert_eq!(read(&sim, "frames"), 24);
    println!("pause/resume ok — frozen timers resumed with their remainders, no catch-up burst");
}

//! The §3.1 WSN ring demo: three motes pass an incrementing counter around
//! a ring forever; losing the network triggers a blinking red led and a
//! 10-second retry until the ring heals.
//!
//! All three motes run the *same* Céu program (standard WSN practice, as
//! the paper notes); mote 0 initiates. The run injects a mote failure,
//! watches the network-down behaviour appear, heals the mote, and checks
//! the counter resumes.
//!
//! ```sh
//! cargo run --example ring_network
//! ```

use wsn_sim::{CeuMote, Radio, Topology, World};

/// The demo program: communicating trail + monitoring trail + initiating
/// trail, as assembled in the paper.
///
/// One divergence worth knowing about: our temporal analysis follows
/// wall-clock time through loops, so it notices that the 500 ms blink can
/// coincide with the 10 s retry (20 × 500 ms) and with the retry's
/// radio send — hence the `deterministic` annotations below, which the
/// paper's listing did not need to spell out.
const RING: &str = r#"
    input _message_t* Radio_receive;
    internal void retry;
    pure _Radio_getPayload;
    deterministic _Radio_send, _Leds_set, _Leds_led0Toggle;

    par do
       // COMMUNICATING TRAIL: receive, show, wait 1s, increment, forward
       loop do
          _message_t* msg = await Radio_receive;
          int* cnt = _Radio_getPayload(msg);
          _Leds_set(*cnt);
          await 1s;
          *cnt = *cnt + 1;
          _Radio_send((_TOS_NODE_ID+1)%3, msg);
       end
    with
       // MONITORING TRAIL: after 5s of silence, blink red and retry every
       // 10s, until the link comes back
       loop do
          par/or do
             await 5s;
             par do
                loop do
                   emit retry;
                   await 10s;
                end
             with
                _Leds_set(0);
                loop do
                   _Leds_led0Toggle();
                   await 500ms;
                end
             end
          with
             await Radio_receive;
          end
       end
    with
       // INITIATING TRAIL: mote 0 kicks the ring at boot and on retries
       if _TOS_NODE_ID == 0 then
          loop do
             _message_t msg;
             int* cnt = _Radio_getPayload(&msg);
             *cnt = 1;
             _Radio_send(1, &msg)
             await retry;
          end
       else
          await forever;
       end
    end
"#;

fn main() {
    let program = ceu::Compiler::new().compile(RING).expect("ring program is safe");
    println!(
        "ring image compiled once for all motes: {} tracks, {} gates",
        program.blocks.len(),
        program.gates.len()
    );

    let mut w = World::new(Radio::new(Topology::Ring { n: 3 }, 2_000, 0.0, 7));
    for id in 0..3 {
        w.add_mote(Box::new(CeuMote::new(program.clone(), id)));
    }
    w.boot();

    // ---- phase 1: healthy ring for 15 s ----
    w.run_until(15_000_000);
    let count_at_15s = w.leds(0).state;
    println!("t=15s   counter at mote 0 (led mask): {count_at_15s}");
    assert!(count_at_15s >= 3, "the counter should have lapped the ring a few times");

    // ---- phase 2: mote 1 dies ----
    println!("t=15s   mote 1 goes down");
    w.radio.set_down(1, true);
    let blinks_before = w.leds(0).on_times(0).len();
    w.run_until(40_000_000);
    let blinks_during = w.leds(0).on_times(0).len() - blinks_before;
    println!("t=40s   mote 0 blinked the red led {blinks_during} times while the ring was down");
    assert!(
        blinks_during >= 10,
        "5s timeout then 500ms blinking should accumulate many blinks, got {blinks_during}"
    );

    // ---- phase 3: mote 1 heals; a 10s retry restores the ring ----
    println!("t=40s   mote 1 comes back");
    w.radio.set_down(1, false);
    w.run_until(80_000_000);
    let final_count = w.leds(2).state;
    println!("t=80s   counter at mote 2 (led mask): {final_count}");
    assert!(final_count > count_at_15s, "counter resumed after recovery");

    println!(
        "stats: {} delivered, {} lost transmissions (all during the outage)",
        w.stats.delivered, w.stats.lost
    );
    assert!(w.stats.lost > 0, "the outage must have eaten the retries");
    println!("ring demo ok");
}

//! Remote application switching (end of §3.1): several applications are
//! compiled into one image; a `Switch` request kills the running one and
//! starts another — the composition pattern the paper proposes for motes
//! that cannot be physically recovered.
//!
//! The paper's memory observation is checked too: ROM grows with the sum
//! of the installed applications, but RAM is the *maximum* across them,
//! because they never run in parallel (overlay allocation, §4.2).
//!
//! ```sh
//! cargo run --example app_switching
//! ```

use ceu::runtime::{RecordingHost, Value};
use ceu::{Compiler, Simulator};

/// APP 1: fast blinker on led0. APP 2: slow heartbeat pattern on led1.
const COMBINED: &str = r#"
    input int Switch;
    deterministic _led0, _led1;
    int cur_app = 1;
    loop do
       par/or do
          cur_app = await Switch;
       with
          if cur_app == 1 then
             // CODE for APP1: 400ms blinker with a local duty counter
             int duty = 0;
             loop do
                _led0(duty % 2);
                duty = duty + 1;
                await 400ms;
             end
          end
          if cur_app == 2 then
             // CODE for APP2: double-pulse heartbeat every 2s
             int phase = 0, beats = 0;
             loop do
                _led1(1);
                await 100ms;
                _led1(0);
                await 100ms;
                _led1(1);
                await 100ms;
                _led1(0);
                phase = phase + 1;
                beats = beats + 1;
                await 1700ms;
             end
          end
          await forever;
       end
    end
"#;

/// The two applications on their own, for the memory comparison.
const APP1: &str = r#"
    int duty = 0;
    loop do
       _led0(duty % 2);
       duty = duty + 1;
       await 400ms;
    end
"#;

const APP2: &str = r#"
    int phase = 0, beats = 0;
    loop do
       _led1(1);
       await 100ms;
       _led1(0);
       await 100ms;
       _led1(1);
       await 100ms;
       _led1(0);
       phase = phase + 1;
       beats = beats + 1;
       await 1700ms;
    end
"#;

fn main() {
    let combined = Compiler::new().compile(COMBINED).expect("combined image is safe");
    let app1 = Compiler::new().compile(APP1).unwrap();
    let app2 = Compiler::new().compile(APP2).unwrap();

    // ---- the paper's memory claim ----
    let rc = ceu::codegen::memory_report(&combined);
    let r1 = ceu::codegen::memory_report(&app1);
    let r2 = ceu::codegen::memory_report(&app2);
    println!("ROM: app1={}  app2={}  combined={}", r1.rom_bytes, r2.rom_bytes, rc.rom_bytes);
    println!(
        "RAM data slots: app1={}  app2={}  combined={}",
        r1.data_slots, r2.data_slots, rc.data_slots
    );
    // ROM of the combined image carries both apps…
    assert!(rc.rom_bytes as f64 > 0.8 * (r1.rom_bytes + r2.rom_bytes) as f64 - 2000.0);
    // …but app variables overlay: the combined image needs the max, not
    // the sum (+1 slot for cur_app)
    assert!(
        rc.data_slots <= r1.data_slots.max(r2.data_slots) + 1,
        "RAM must be the max across apps, not the sum"
    );

    // ---- drive the switching ----
    let mut sim = Simulator::new(combined, RecordingHost::new());
    sim.start().unwrap();
    sim.advance_by(2_000_000).unwrap();
    let led0_calls = sim.host().calls.iter().filter(|(n, _)| n == "led0").count();
    println!("t=2s    app1 ran: {led0_calls} led0 updates");
    assert!(led0_calls >= 5);

    println!("t=2s    Switch → app 2");
    sim.event("Switch", Some(Value::Int(2))).unwrap();
    let before = sim.host().calls.len();
    sim.advance_by(4_000_000).unwrap();
    let after: Vec<_> = sim.host().calls[before..].iter().map(|(n, _)| n.clone()).collect();
    let led1_calls = after.iter().filter(|n| *n == "led1").count();
    let led0_after = after.iter().filter(|n| *n == "led0").count();
    println!("t=6s    app2 ran: {led1_calls} led1 updates, {led0_after} led0 updates");
    assert!(led1_calls >= 8, "heartbeat pattern must run");
    assert_eq!(led0_after, 0, "app1 must be completely dead");

    println!("t=6s    Switch → app 1 again");
    sim.event("Switch", Some(Value::Int(1))).unwrap();
    let before = sim.host().calls.len();
    sim.advance_by(2_000_000).unwrap();
    let led0_back = sim.host().calls[before..].iter().filter(|(n, _)| n == "led0").count();
    assert!(led0_back >= 5, "app1 restarted from scratch");
    println!("switching ok — one image, one app live at a time, RAM = max not sum");
}

//! The §3.2 Arduino ship game: dodge meteors on a two-row LCD, with game
//! speed increasing every completed phase, a collision animation, and the
//! debounced analog key sampler generating the game's own input events.
//!
//! The run is headless: scripted analog levels stand in for the two push
//! buttons, and every LCD frame is recorded. The harness steers the ship
//! through the map and prints selected frames.
//!
//! ```sh
//! cargo run --example ship_game
//! ```

use arduino_sim::{ShipHost, KEY_DOWN, KEY_UP};
use ceu::{Compiler, Simulator};

/// The full game, assembled from the paper's CODE 1/2/3 plus the input
/// generator trail. Annotations as discussed in §3.2 (extended to the LCD
/// calls of the collision animation, which our time-aware analysis also
/// sees as potentially concurrent with the sampler).
const SHIP: &str = r#"
    input int Key;
    pure _analog2key;
    deterministic _analogRead, _map_generate;
    deterministic _analogRead, _redraw;
    deterministic _analogRead, _lcd.setCursor, _lcd.write;

    int ship, dt, step, points, win;
    win = 0;

    par do
       // ============ THE GAME ============
       loop do
          // CODE 1: set game attributes
          ship = 0;
          if !win then
             dt     = 500;   // game speed (500ms/step)
             step   = 0;
             points = 0;
          else
             step = 0;
             if dt > 100 then
                dt = dt - 50;
             end
          end

          _map_generate();
          _redraw(step, ship, points);
          await Key;  // starting key

          win =
             // CODE 2: the central loop
             par do
                loop do
                   await(dt*1000);
                   step = step + 1;
                   _redraw(step, ship, points);

                   if _MAP[ship][step] == '#' then
                      return 0;  // a collision
                   end

                   if step == _FINISH then
                      return 1;  // finish line
                   end

                   points = points + 1;
                end
             with
                loop do
                   int key = await Key;
                   if key == _KEY_UP then
                      ship = 0;
                   end
                   if key == _KEY_DOWN then
                      ship = 1;
                   end
                end
             end;

          // CODE 3: after game
          par/or do
             await Key;
          with
             if !win then
                loop do
                   await 100ms;
                   _lcd.setCursor(0, ship);
                   _lcd.write('<');
                   await 100ms;
                   _lcd.setCursor(0, ship);
                   _lcd.write('>');
                end
             end
          end
       end
    with
       // ============ INPUT GENERATOR ============
       int key = _KEY_NONE;
       loop do
          int read1 = _analog2key(_analogRead(0));
          await 50ms;
          int read2 = _analog2key(_analogRead(0));
          if read1 == read2 && key != read1 then
             key = read1;
             if key != _KEY_NONE then
                async do
                   emit Key = read1;
                end
             end
          end
       end
    end
"#;

fn main() {
    let program = Compiler::new().compile(SHIP).expect("ship game is safe");
    println!(
        "ship game compiled: {} tracks, {} gates, {} data slots",
        program.blocks.len(),
        program.gates.len(),
        program.data_len
    );

    let mut host = ShipHost::new(1234, 64);
    // script: press a key to start the first phase
    host.script_key(200_000, KEY_DOWN);
    host.script_key(400_000, arduino_sim::KEY_NONE);

    let mut sim = Simulator::new(program, host);
    sim.start().expect("boot");

    // drive wall-clock time in 50ms steps (the sampler period), keeping
    // the host's notion of time in sync for the analog script, and steer
    // away from meteors by looking one cell ahead like a player would
    let mut t = 0u64;
    let mut phases = 0;
    while t < 120_000_000 {
        t += 50_000;
        sim.host_mut().now = t;
        sim.advance_to(t).expect("tick");

        // a simple "player": read the public game state and dodge
        let ship = sim.read_var("ship#0").and_then(|v| v.as_int()).unwrap_or(0);
        let step = sim.read_var("step#2").and_then(|v| v.as_int()).unwrap_or(0);
        let h = sim.host_mut();
        let look = (step + 1).max(0) as usize;
        if look < h.map[0].len() {
            let row = ship.clamp(0, 1) as usize;
            let danger = h.map[row][look] == '#';
            let other = 1 - row;
            if danger && h.map[other][look] != '#' {
                let want = if other == 0 { KEY_UP } else { KEY_DOWN };
                h.script_key(t + 1_000, want);
                h.script_key(t + 120_000, arduino_sim::KEY_NONE);
            }
        }

        // count phase starts (a redraw at step 0 = a fresh game)
        if let Some(&(0, _, _)) = sim.host().redraws.last() {
            phases += 1;
        }
    }

    let frames = sim.host().lcd.frames.clone();
    println!("played for 120 virtual seconds: {} LCD frames recorded", frames.len());
    assert!(frames.len() > 50, "the game must have redrawn many times");
    println!("--- a mid-game frame ---");
    let mid = &frames[frames.len() / 2];
    println!("|{}|", mid[0]);
    println!("|{}|", mid[1]);
    assert!(
        frames.iter().any(|f| f[0].starts_with('>') || f[1].starts_with('>')),
        "the ship must appear on screen"
    );
    let deepest: i64 = sim.host().redraws.iter().map(|&(s, _, _)| s).max().unwrap_or(0);
    println!("deepest step reached: {deepest}; phase-start redraws seen: {phases}");
    assert!(deepest > 5, "the game must have advanced");
    println!("ship game ok");
}

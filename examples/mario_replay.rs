//! The §3.3 game-simulation demo: a self-contained Mario game embedded
//! *unmodified* in three environments — live play, forward replay, and
//! backward replay — exploiting the paper's key property: a deterministic
//! reactive program's behaviour depends only on the order of its inputs.
//!
//! The environment (an `async`) records which steps the player pressed a
//! key at, then re-executes the game from scratch feeding the same
//! sequence. The harness checks the replay is frame-for-frame identical,
//! and that the backward replay shows the original scenes in reverse.
//!
//! ```sh
//! cargo run --example mario_replay
//! ```

use arduino_sim::MarioHost;
use ceu::{Compiler, Simulator};

/// The game (§3.3) wrapped in the restart template, composed with the
/// recording + forward-replay + backward-replay event generator.
const MARIO: &str = r#"
    input int  Seed;
    input void Key, Step, Restart;
    pure _rand;

    par do
       // ====================== THE GAME (unmodified) ======================
       loop do
          par/or do
             internal void collision;

             int seed = await Seed;
             _srand(seed);

             int mario_x  = 10;
             int mario_dx = 1;
             int mario_y  = 236;
             int mario_dy = 0;

             int turtle_x  = 600;
             int turtle_y  = 250;
             int turtle_dx = 0;

             _redraw(mario_x,mario_y, turtle_x,turtle_y);

             par do
                 loop do
                     await 50ms;
                     turtle_dx = 0 - (_rand()%4-1);
                 end
             with
                 loop do
                     int v =
                         par do
                             await Key;
                             return 1;
                         with
                             await collision;
                             return 0;
                         end;
                     if v == 1 then
                         mario_dy = 0-2;
                         await 500ms;
                         mario_dy = 2;
                         await 500ms;
                         mario_dy = 0;
                     else
                         mario_dx = 0-4;
                         await 300ms;
                         mario_dx = 1;
                     end
                 end
             with
                 loop do
                     await Step;
                     mario_x  = mario_x  + mario_dx;
                     mario_y  = mario_y  + mario_dy;
                     turtle_x = turtle_x + turtle_dx;
                     if !( mario_x+32<turtle_x || turtle_x+32<mario_x ) then
                         emit collision;
                     end
                     _redraw(mario_x,mario_y, turtle_x,turtle_y);
                 end
             end
          with
             await Restart;
          end
       end
    with
       // ================== THE EVENT GENERATOR (async) ==================
       async do
          // --- original gameplay, recording key steps ---
          int seed = 7;
          emit Seed = seed;
          int[16] keys;
          keys[0] = 0-1;
          int idx = 0;
          int step = 0;
          loop do
             if _key_pressed(step) then
                keys[idx] = step;
                idx = idx + 1;
                keys[idx] = 0-1;
                emit Key;
             end
             emit 10ms;
             emit Step;
             step = step + 1;
             if step == 1000 then
                break;
             end
          end
          _mark(1);

          // --- forward replay: same seed, same key sequence ---
          emit Restart;
          emit Seed = seed;
          step = 0;
          idx  = 0;
          loop do
             if step == keys[idx] then
                emit Key;
                idx = idx + 1;
             else
                emit 10ms;
                emit Step;
                step = step + 1;
                if step == 1000 then
                   break;
                end
             end
          end
          _mark(2);

          // --- backward replay: show scene step_ref, then step_ref-50, …
          // (drawing disabled while fast-forwarding to each scene;
          //  one extra drawn Step renders the scene itself) ---
          int step_ref = 949;
          loop do
             _redraw_on(0);
             emit Restart;
             emit Seed = seed;
             step = 0;
             idx  = 0;
             loop do
                if step == keys[idx] then
                   emit Key;
                   idx = idx + 1;
                else
                   if step == step_ref then
                      break;
                   end
                   emit 10ms;
                   emit Step;
                   step = step + 1;
                end
             end
             _redraw_on(1);
             emit 10ms;
             emit Step;
             _redraw_on(0);
             step_ref = step_ref - 50;
             if step_ref < 0 then
                break;
             end
          end
          _mark(3);
       end
       await forever;
    end
"#;

fn main() {
    let program = Compiler::new().compile(MARIO).expect("mario is locally deterministic");
    println!(
        "mario compiled: {} tracks, {} gates, {} asyncs",
        program.blocks.len(),
        program.gates.len(),
        program.asyncs.len()
    );

    let mut host = MarioHost::new(7);
    // the "player" jumps at these steps
    host.key_steps = vec![40, 200, 420, 700];

    let mut sim = Simulator::new(program, host);
    sim.start().expect("the whole session runs inside the language");

    let host = sim.host();
    let marks: std::collections::HashMap<i64, usize> = host.marks.iter().copied().collect();
    let (m1, m2, m3) = (marks[&1], marks[&2], marks[&3]);
    let original = &host.frames[..m1];
    let forward = &host.frames[m1..m2];
    let backward = &host.frames[m2..m3];

    println!("original gameplay : {} frames", original.len());
    println!("forward replay    : {} frames", forward.len());
    println!("backward replay   : {} frames", backward.len());

    // 1. the forward replay is bit-for-bit the original
    assert_eq!(original, forward, "replay must reproduce the gameplay exactly");

    // 2. the backward replay shows the original scenes in reverse:
    //    scene k of the backward pass = original frame after (949-50k)+1 steps
    assert_eq!(backward.len(), 19); // step_ref 949, 899, …, 49
    for (k, frame) in backward.iter().enumerate() {
        let step_ref = 949 - 50 * k as i64;
        let expected = original[(step_ref + 1) as usize];
        assert_eq!(*frame, expected, "backward scene {k} (step {step_ref})");
    }

    // 3. the gameplay was eventful: mario jumped and got knocked back
    let max_x = original.iter().map(|f| f.0).max().unwrap();
    let min_y = original.iter().map(|f| f.1).min().unwrap();
    let collided = original.windows(2).any(|w| w[1].0 < w[0].0 - 1);
    println!("mario reached x={max_x}, jumped to y={min_y}, knocked back: {collided}");
    assert!(min_y < 236, "mario must have jumped");
    assert!(collided, "mario must have hit the turtle");

    println!("record/replay ok — forward identical, backward reversed");
}

//! Offline stand-in for `serde_derive`: a `#[derive(Serialize)]` macro
//! written against `proc_macro` directly (no syn/quote, which are not
//! available in the offline build container).
//!
//! Supported shapes:
//! * structs with named fields → `{"field": value, ...}`;
//! * unit structs → `{}`;
//! * enums with unit variants → `"Variant"`;
//! * enums with named-field variants → `{"Variant": {"field": ...}}`
//!   (serde's externally-tagged default).
//!
//! Tuple structs/variants and generic types are rejected with a
//! `compile_error!` pointing here — implement `serde::Serialize` by hand
//! for those.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(code) => code.parse().expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let mut toks = input.into_iter().peekable();

    // skip outer attributes and visibility
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                toks.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde stub derive: expected struct/enum, got {other:?}")),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("serde stub derive: expected type name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde stub derive does not support generic type `{name}`; \
                 implement serde::Serialize manually (see third_party/serde)"
            ));
        }
    }

    let body = match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                struct_body(&fields)
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => struct_body(&[]),
            None => struct_body(&[]),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stub derive does not support tuple struct `{name}`; \
                     implement serde::Serialize manually"
                ));
            }
            other => return Err(format!("serde stub derive: unexpected token {other:?}")),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                enum_body(&name, g.stream())?
            }
            other => return Err(format!("serde stub derive: expected enum body, got {other:?}")),
        },
        other => return Err(format!("serde stub derive: cannot derive for `{other}`")),
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self, __s: &mut ::serde::Serializer) {{\n{body}    }}\n\
         }}\n"
    ))
}

fn struct_body(fields: &[String]) -> String {
    let mut out = String::from("        __s.begin_object();\n");
    for f in fields {
        out.push_str(&format!("        __s.field({f:?}, &self.{f});\n"));
    }
    out.push_str("        __s.end_object();\n");
    out
}

fn enum_body(name: &str, stream: TokenStream) -> Result<String, String> {
    let variants = parse_variants(stream)?;
    let mut arms = String::new();
    for (vname, fields) in &variants {
        match fields {
            None => {
                arms.push_str(&format!("            {name}::{vname} => __s.string({vname:?}),\n"));
            }
            Some(fs) => {
                let binds = fs.join(", ");
                let mut writes = String::new();
                for f in fs {
                    writes.push_str(&format!("__s.field({f:?}, {f}); "));
                }
                arms.push_str(&format!(
                    "            {name}::{vname} {{ {binds} }} => {{\n\
                                     __s.begin_object();\n\
                                     __s.key({vname:?});\n\
                                     __s.begin_object();\n\
                                     {writes}\n\
                                     __s.end_object();\n\
                                     __s.end_object();\n\
                                 }}\n"
                ));
            }
        }
    }
    Ok(format!("        match self {{\n{arms}        }}\n"))
}

/// Parses `name: Type, ...` named fields, skipping attributes and
/// visibility. Tracks `<...>` depth so commas inside generics don't split.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // skip attributes / visibility
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let fname = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("serde stub derive: expected field name, got {other:?}")),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde stub derive: expected `:`, got {other:?}")),
        }
        // consume the type up to a top-level comma
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && angle_depth > 0 => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(fname);
    }
    Ok(fields)
}

type Variant = (String, Option<Vec<String>>);

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // skip attributes
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                toks.next();
            } else {
                break;
            }
        }
        let vname = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => return Err(format!("serde stub derive: expected variant, got {other:?}")),
        };
        let mut fields = None;
        match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = match toks.next() {
                    Some(TokenTree::Group(g)) => g,
                    _ => unreachable!(),
                };
                fields = Some(parse_named_fields(g.stream())?);
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stub derive does not support tuple variant `{vname}`; \
                     implement serde::Serialize manually"
                ));
            }
            _ => {}
        }
        // skip an optional discriminant, then the separating comma
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push((vname, fields));
    }
    Ok(variants)
}

//! Offline stand-in for the `serde` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `serde` to this minimal subset (see `third_party/README.md`).
//! Unlike real serde there is no data-model abstraction: [`Serialize`]
//! writes JSON directly through a [`Serializer`] that wraps a string
//! buffer. `#[derive(Serialize)]` is provided by the sibling
//! `serde_derive` stub for plain structs with named fields; richer
//! types implement the trait by hand (see `ceu-runtime`'s
//! `telemetry-json` feature for examples).

pub use serde_derive::Serialize;

/// A JSON value writer. Tracks whether a comma is needed before the next
/// element so `Serialize` impls can be written as straight-line code.
pub struct Serializer {
    out: String,
    needs_comma: bool,
}

impl Default for Serializer {
    fn default() -> Self {
        Serializer::new()
    }
}

impl Serializer {
    pub fn new() -> Self {
        Serializer { out: String::with_capacity(128), needs_comma: false }
    }

    pub fn into_string(self) -> String {
        self.out
    }

    fn elem_prefix(&mut self) {
        if self.needs_comma {
            self.out.push(',');
        }
        self.needs_comma = false;
    }

    pub fn begin_object(&mut self) {
        self.elem_prefix();
        self.out.push('{');
    }

    pub fn end_object(&mut self) {
        self.out.push('}');
        self.needs_comma = true;
    }

    pub fn begin_array(&mut self) {
        self.elem_prefix();
        self.out.push('[');
    }

    pub fn end_array(&mut self) {
        self.out.push(']');
        self.needs_comma = true;
    }

    /// Writes `"name":` and the value (inside an object).
    pub fn field<T: Serialize + ?Sized>(&mut self, name: &str, value: &T) {
        self.elem_prefix();
        write_json_string(&mut self.out, name);
        self.out.push(':');
        self.needs_comma = false;
        value.serialize(self);
        self.needs_comma = true;
    }

    /// Writes `"name":` and leaves the serializer expecting the value
    /// (for incremental object construction, e.g. tagged enums).
    pub fn key(&mut self, name: &str) {
        self.elem_prefix();
        write_json_string(&mut self.out, name);
        self.out.push(':');
        self.needs_comma = false;
    }

    /// Writes one array element.
    pub fn element<T: Serialize + ?Sized>(&mut self, value: &T) {
        self.elem_prefix();
        value.serialize(self);
        self.needs_comma = true;
    }

    /// Writes a bare scalar that is already valid JSON (numbers, etc.).
    pub fn raw(&mut self, json: &str) {
        self.elem_prefix();
        self.out.push_str(json);
        self.needs_comma = true;
    }

    pub fn string(&mut self, s: &str) {
        self.elem_prefix();
        write_json_string(&mut self.out, s);
        self.needs_comma = true;
    }
}

/// Writes `s` as a JSON string literal (with escaping) onto `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialization to JSON. The single method appends this value's JSON
/// encoding to the serializer.
pub trait Serialize {
    fn serialize(&self, s: &mut Serializer);
}

macro_rules! impl_serialize_display_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                s.raw(&self.to_string());
            }
        }
    )*};
}
impl_serialize_display_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self, s: &mut Serializer) {
                if self.is_finite() {
                    s.raw(&format!("{self}"));
                } else {
                    s.raw("null"); // JSON has no NaN/Inf; match serde_json's lossy default
                }
            }
        }
    )*};
}
impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self, s: &mut Serializer) {
        s.raw(if *self { "true" } else { "false" });
    }
}

impl Serialize for str {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Serialize for String {
    fn serialize(&self, s: &mut Serializer) {
        s.string(self);
    }
}

impl Serialize for char {
    fn serialize(&self, s: &mut Serializer) {
        s.string(&self.to_string());
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self, s: &mut Serializer) {
        (**self).serialize(s);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self, s: &mut Serializer) {
        match self {
            Some(v) => v.serialize(s),
            None => s.raw("null"),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_array();
        for v in self {
            s.element(v);
        }
        s.end_array();
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self, s: &mut Serializer) {
        self.as_slice().serialize(s);
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize(&self, s: &mut Serializer) {
        s.begin_object();
        for (k, v) in self {
            s.field(k, v);
        }
        s.end_object();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_encode() {
        let mut s = Serializer::new();
        s.begin_object();
        s.field("n", &42u64);
        s.field("x", &-1.5f64);
        s.field("ok", &true);
        s.field("name", "a\"b");
        s.field("none", &Option::<u32>::None);
        s.field("list", &vec![1u8, 2, 3]);
        s.end_object();
        assert_eq!(
            s.into_string(),
            r#"{"n":42,"x":-1.5,"ok":true,"name":"a\"b","none":null,"list":[1,2,3]}"#
        );
    }
}

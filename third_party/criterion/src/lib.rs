//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `criterion` to this minimal harness (see
//! `third_party/README.md`). It keeps the API surface the repo's benches
//! use — `criterion_group!`/`criterion_main!`, `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size` — and measures wall time with a simple
//! calibrated loop instead of criterion's statistical machinery.
//!
//! Output is one line per benchmark: `name ... mean ± spread ns/iter`
//! (median of per-sample means, min..max spread). There are no HTML
//! reports, no outlier analysis, and no saved baselines.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measuring time per benchmark (after calibration).
const TARGET: Duration = Duration::from_millis(150);
const DEFAULT_SAMPLES: usize = 10;

/// The per-iteration timing handle passed to bench closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration of each measured sample.
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher { samples: Vec::new(), sample_count }
    }

    /// Runs the routine repeatedly and records per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // calibration: find an iteration count that takes ~TARGET/samples
        let mut iters: u64 = 1;
        let per_sample = TARGET / self.sample_count as u32;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= per_sample / 4 || iters >= 1 << 30 {
                break;
            }
            let grow = if elapsed.is_zero() {
                16
            } else {
                ((per_sample.as_nanos() / elapsed.as_nanos().max(1)) as u64).clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        // measurement
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<40} (no measurement: bench closure never called iter)");
            return;
        }
        let mut s = self.samples.clone();
        s.sort_by(|a, b| a.total_cmp(b));
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        println!("{name:<40} {median:>12.1} ns/iter  (min {min:.1} .. max {max:.1})");
    }
}

/// Identifies a benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: std::fmt::Display, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id().id));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.into_benchmark_id().id));
        self
    }

    pub fn finish(self) {}
}

/// Conversion helper so ids can be given as strings or [`BenchmarkId`]s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: DEFAULT_SAMPLES }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup { name: name.into(), sample_count, _parent: self }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Accepted for API compatibility; command-line filtering is not
    /// implemented in the offline stub.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(3);
        b.iter(|| (0..100u64).sum::<u64>());
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&ns| ns > 0.0));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `proptest` to this minimal reimplementation (see
//! `third_party/README.md`). It keeps the *surface* the repo's property
//! tests use — `proptest!`, `prop_oneof!`, `prop_assert*!`, `Just`,
//! ranges-as-strategies, tuples, `prop_map`, `prop_recursive`, `boxed`,
//! `collection::vec`, `sample::select` — over a deterministic RNG.
//!
//! **Deliberate simplifications** versus real proptest:
//! * no shrinking: a failing case reports its inputs but is not minimised;
//! * generation is seeded per test name (override with `PROPTEST_SEED`),
//!   so runs are reproducible by default;
//! * `prop_recursive` builds a bounded tower of the recursion closure
//!   instead of a weighted size-driven recursion.

// ---- RNG ----------------------------------------------------------------------

pub mod test_runner {
    /// Deterministic xorshift64* generator (same family as the
    /// `third_party/rand` stub, duplicated to keep the stubs standalone).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> Self {
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            TestRng { state: if z == 0 { 0x853c_49e6_748f_ea9b } else { z } }
        }

        /// Seeded from the test name (stable across runs) unless the
        /// `PROPTEST_SEED` environment variable overrides it.
        pub fn deterministic(name: &str) -> Self {
            if let Ok(s) = std::env::var("PROPTEST_SEED") {
                if let Ok(seed) = s.parse::<u64>() {
                    return TestRng::seed_from_u64(seed ^ hash_name(name));
                }
            }
            TestRng::seed_from_u64(hash_name(name))
        }

        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform in `[0, n)`; `n` must be nonzero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn hash_name(name: &str) -> u64 {
        // FNV-1a
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Per-`proptest!` block configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property (carries the formatted assertion message).
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl From<String> for TestCaseError {
        fn from(s: String) -> Self {
            TestCaseError(s)
        }
    }

    impl From<&str> for TestCaseError {
        fn from(s: &str) -> Self {
            TestCaseError(s.to_string())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;
}

// ---- Strategy core ------------------------------------------------------------

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A generator of values. Unlike real proptest there is no value
    /// tree / shrinking: `new_value` produces the final value directly.
    pub trait Strategy: Clone {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f: Rc::new(f) }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy { inner: Rc::new(self) }
        }

        /// Bounded recursion: applies `recurse` to the strategy-so-far a
        /// random number of times up to `depth`, then samples.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            Recursive { base: self.boxed(), grow: Rc::new(move |b| recurse(b).boxed()), depth }
        }
    }

    /// Object-safe view of a strategy (the boxing substrate).
    trait DynStrategy {
        type Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
            self.new_value(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Rc<dyn DynStrategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { inner: Rc::clone(&self.inner) }
        }
    }

    impl<T: 'static> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_new_value(rng)
        }

        fn boxed(self) -> BoxedStrategy<T> {
            self
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: Rc<F>,
    }

    impl<S: Clone, F> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Map { inner: self.inner.clone(), f: Rc::clone(&self.f) }
        }
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        grow: Rc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Clone for Recursive<T> {
        fn clone(&self) -> Self {
            Recursive { base: self.base.clone(), grow: Rc::clone(&self.grow), depth: self.depth }
        }
    }

    impl<T: 'static> Strategy for Recursive<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let levels = rng.below(self.depth as u64 + 1) as u32;
            let mut s = self.base.clone();
            for _ in 0..levels {
                s = (self.grow)(s);
            }
            s.new_value(rng)
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union { arms: self.arms.clone() }
        }
    }

    impl<T: 'static> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.arms.len() as u64) as usize;
            self.arms[k].new_value(rng)
        }
    }

    // ranges are strategies
    macro_rules! impl_range_strategy_uint {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    ((self.start as i64) + rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    // tuples of strategies are strategies
    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

// ---- collections & sampling ---------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `prop::collection::vec(strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::rc::Rc;

    pub struct Select<T> {
        items: Rc<Vec<T>>,
    }

    impl<T> Clone for Select<T> {
        fn clone(&self) -> Self {
            Select { items: Rc::clone(&self.items) }
        }
    }

    /// `prop::sample::select(vec![...])` — uniform choice of one element.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select needs at least one item");
        Select { items: Rc::new(items) }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let k = rng.below(self.items.len() as u64) as usize;
            self.items[k].clone()
        }
    }
}

// ---- macros -------------------------------------------------------------------

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::from(
                format!("prop_assert!({}) failed", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::from(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::from(
                format!("prop_assert_eq! failed: {:?} != {:?}", a, b),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::from(
                format!("prop_assert_eq! failed: {:?} != {:?}: {}", a, b, format!($($fmt)+)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::from(format!(
                "prop_assert_ne! failed: both {:?}",
                a
            )));
        }
    }};
}

/// The property-test harness macro. Supports the standard shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, s in my_strategy()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut rng);)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}\n(offline stub: no shrinking; rerun with PROPTEST_SEED to vary)",
                            stringify!($name), case + 1, cfg.cases, e
                        );
                    }
                }
            }
        )*
    };
}

// ---- prelude ------------------------------------------------------------------

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace the real prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = crate::test_runner::TestRng::deterministic("t1");
        let s = (0u8..4, (-5i64..5)).prop_map(|(a, b)| format!("{a}/{b}"));
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v.contains('/'));
        }
    }

    #[test]
    fn oneof_and_select_cover_all_arms() {
        let mut rng = crate::test_runner::TestRng::deterministic("t2");
        let s = prop_oneof![Just("a"), Just("b"), prop::sample::select(vec!["c", "d"])];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.new_value(&mut rng));
        }
        assert_eq!(seen.len(), 4, "{seen:?}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        let mut rng = crate::test_runner::TestRng::deterministic("t3");
        let leaf = (0u8..10).prop_map(|n| n.to_string());
        let expr = leaf.prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        for _ in 0..50 {
            let v = expr.new_value(&mut rng);
            assert!(!v.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_macro_works(x in 0u64..100, v in prop::collection::vec(0u8..3, 0..5)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 5);
            prop_assert_eq!(x, x);
        }
    }
}

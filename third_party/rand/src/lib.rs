//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `rand` to this minimal, API-compatible subset (see
//! `third_party/README.md`). It provides exactly what the repo uses —
//! seeded `StdRng`, `Rng::{gen, gen_bool, gen_range}` — with a
//! deterministic xorshift64* generator. It is **not** cryptographically
//! secure and makes no claim of statistical quality beyond "good enough
//! for simulation jitter and property tests".

use std::ops::Range;

/// Core trait: a source of 64-bit randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types samplable from a uniform bit stream (the `Standard` distribution
/// analog, collapsed into one trait).
pub trait Standard: Sized {
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn from_bits(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                ((range.start as i64).wrapping_add((rng() % span) as i64)) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn FnMut() -> u64, range: Range<Self>) -> Self {
        range.start + f64::from_bits_uniform(rng()) * (range.end - range.start)
    }
}

trait F64Uniform {
    fn from_bits_uniform(bits: u64) -> f64;
}
impl F64Uniform for f64 {
    fn from_bits_uniform(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let mut draw = || self.next_u64();
        T::sample_range(&mut draw, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xorshift64* generator, seeded through splitmix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 turns any seed (including 0) into a good state
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            StdRng { state: if z == 0 { 0x853c_49e6_748f_ea9b } else { z } }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }

    /// Process-local generator handle (see [`super::thread_rng`]).
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A loosely-seeded generator for non-reproducible use. Deterministic
/// within a thread, perturbed per call site by a counter.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::cell::Cell;
    thread_local! {
        static COUNTER: Cell<u64> = const { Cell::new(0) };
    }
    let n = COUNTER.with(|c| {
        let v = c.get();
        c.set(v + 1);
        v
    });
    let pid = std::process::id() as u64;
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(pid ^ (n << 32) ^ 0x5bf0_3635))
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.gen_range(10i64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..5);
            assert!(y < 5);
        }
    }
}

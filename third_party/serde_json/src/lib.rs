//! Offline stand-in for the `serde_json` crate.
//!
//! The build container has no access to crates.io, so the workspace
//! patches `serde_json` to this minimal subset (see
//! `third_party/README.md`): [`to_string`] over the stub
//! `serde::Serialize`, plus an owned [`Value`] tree with a strict
//! recursive-descent parser ([`from_str`]) that the telemetry tests use
//! to validate emitted JSON.
//!
//! **API deviation:** `from_str` is not generic over `Deserialize` (the
//! stub serde has no deserialization); it always yields a [`Value`].

use std::collections::BTreeMap;
use std::fmt;

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = serde::Serializer::new();
    value.serialize(&mut s);
    Ok(s.into_string())
}

/// A parse or serialize error.
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
    /// Byte offset of the error in the input (parse errors).
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.offset)
    }
}

impl std::error::Error for Error {}

/// An owned JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        self.as_i64().filter(|&n| n >= 0).map(|n| n as u64)
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object member lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error { msg: msg.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex: String =
                            (0..4).filter_map(|_| self.bump().map(|b| b as char)).collect();
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|_| self.err("bad \\u escape"))?;
                        // surrogate pairs are not recombined (stub limitation)
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // re-assemble UTF-8 multibyte sequences
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    for _ in 1..len {
                        self.bump();
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(self.err("invalid UTF-8")),
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_stub_serde() {
        let v = vec![1u64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(
            from_str(&s).unwrap(),
            Value::Array(vec![Value::Number(1.0), Value::Number(2.0), Value::Number(3.0),])
        );
    }

    #[test]
    fn parses_nested_documents() {
        let v = from_str(r#"{"a": [1, {"b": "x\ny"}, null], "c": -2.5e1, "d": true}"#).unwrap();
        assert_eq!(v["a"][1]["b"].as_str(), Some("x\ny"));
        assert_eq!(v["c"].as_f64(), Some(-25.0));
        assert_eq!(v["d"].as_bool(), Some(true));
        assert_eq!(v["a"][2], Value::Null);
        assert!(v["missing"].is_null());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{\"a\" 1}").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = from_str(r#""café ☕""#).unwrap();
        assert_eq!(v.as_str(), Some("café ☕"));
    }
}

//! `ceuc run --faults --blackbox` end to end: an injected crash exits
//! with the crash status, lands a `ceu-blackbox/v1` dump, and
//! `ceu-trace blackbox` renders that dump into the triage page.

use std::io::Write as _;
use std::process::Command;

fn ceuc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceuc"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ceuc-blackbox-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

/// Stays reactive forever so a scheduled fault, not termination, ends it.
const REACTIVE: &str = "input int Kick;\nint v = 0;\nloop do\n v = await Kick;\nend";

#[test]
fn fault_plan_crash_dumps_and_renders() {
    let prog = write_tmp("faulty.ceu", REACTIVE);
    let script = write_tmp("faulty.script", "event Kick 1\ntime 10ms\n");
    let plan = write_tmp("faulty.plan", "at 5ms crash 0\n");
    let dump_path = std::env::temp_dir().join("ceuc-blackbox-tests").join("faulty.jsonl");
    let _ = std::fs::remove_file(&dump_path);

    let out = ceuc()
        .arg("run")
        .arg(&prog)
        .arg(&script)
        .arg("--faults")
        .arg(&plan)
        .arg("--blackbox")
        .arg(&dump_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "crash exit status: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crashed at 5000us"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("black-box dump written"), "{stderr}");

    let text = std::fs::read_to_string(&dump_path).expect("dump landed at --blackbox PATH");
    let dump = ceu_trace::parse_blackbox(&text).expect("dump parses");
    assert_eq!(dump.crashed_mote(), Some(0));
    assert!(!dump.records.is_empty(), "the ring kept the final reactions");

    let page = ceu_trace::render_blackbox(&dump, Some(REACTIVE), 8);
    assert!(page.starts_with("black box: machine-crashed"), "{page}");
    assert!(page.contains("fault-injected crash"), "{page}");
    assert!(page.contains("machine:"), "machine ring stats render: {page}");
    assert!(page.contains("mote 0: final"), "final reactions render: {page}");
}

#[test]
fn runtime_error_crash_also_dumps() {
    let prog = write_tmp("div0.ceu", "input int Kick;\nint v = 1;\nv = v / (v - 1);\nreturn v;");
    let script = write_tmp("div0.script", "time 1ms\n");
    let dump_path = std::env::temp_dir().join("ceuc-blackbox-tests").join("div0.jsonl");
    let _ = std::fs::remove_file(&dump_path);

    let out = ceuc()
        .arg("run")
        .arg(&prog)
        .arg(&script)
        .arg("--blackbox")
        .arg(&dump_path)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "runtime error is a crash: {out:?}");
    let text = std::fs::read_to_string(&dump_path).expect("dump written on runtime error");
    let dump = ceu_trace::parse_blackbox(&text).expect("dump parses");
    let page = ceu_trace::render_blackbox(&dump, None, 8);
    assert!(page.starts_with("black box: machine-crashed"), "{page}");
}

//! Scale smoke tests: wide fan-outs, long virtual runs, deep recursion of
//! internal emits — the shapes that stress the scheduler, the timer wheel
//! and the emit stack.

use ceu::runtime::{NullHost, Status, Value};
use ceu::{Compiler, Simulator};

#[test]
fn two_hundred_trails_share_one_event() {
    let mut src = String::from("input void E;\nint n;\npar do\n");
    for i in 0..200 {
        if i > 0 {
            src.push_str("with\n");
        }
        src.push_str(" loop do\n  await E;\n end\n");
    }
    src.push_str("with\n loop do\n  await E;\n  n = n + 1;\n end\nend");
    let p = Compiler::unchecked().compile(&src).unwrap();
    assert!(p.gates.len() >= 201);
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    for _ in 0..50 {
        sim.event("E", None).unwrap();
    }
    assert_eq!(sim.read_source_var("n"), Some(&Value::Int(50)));
}

#[test]
fn a_virtual_day_of_timers() {
    // 86_400 reactions of a 1s loop plus a 7s loop: the timer wheel must
    // stay exact over a day of virtual time
    let src = "int a, b;\npar do\n loop do\n  await 1s;\n  a = a + 1;\n end\nwith\n loop do\n  await 7s;\n  b = b + 1;\n end\nend";
    let p = Compiler::unchecked().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.advance_to(86_400_000_000).unwrap();
    assert_eq!(sim.read_source_var("a"), Some(&Value::Int(86_400)));
    assert_eq!(sim.read_source_var("b"), Some(&Value::Int(86_400 / 7)));
}

#[test]
fn deep_emit_chain() {
    // 64 chained internal events propagate within one reaction
    let n = 64;
    let mut src = String::from("input void Go;\nint v;\ninternal void ");
    src.push_str(&(0..n).map(|i| format!("e{i}")).collect::<Vec<_>>().join(", "));
    src.push_str(";\npar do\n");
    for i in 0..n - 1 {
        src.push_str(&format!(" loop do\n  await e{i};\n  emit e{};\n end\nwith\n", i + 1));
    }
    src.push_str(&format!(
        " loop do\n  await e{};\n  v = v + 1;\n end\nwith\n loop do\n  await Go;\n  emit e0;\n end\nend",
        n - 1
    ));
    let p = Compiler::new().compile(&src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Go", None).unwrap();
    sim.event("Go", None).unwrap();
    assert_eq!(sim.read_source_var("v"), Some(&Value::Int(2)));
}

#[test]
fn nested_par_ors_thirty_two_deep() {
    let depth = 32;
    let mut src = String::from("input void E;\nint v;\n");
    for _ in 0..depth {
        src.push_str("par/or do\n");
    }
    src.push_str("await E;\n");
    for _ in 0..depth {
        src.push_str("with\n await forever;\nend\n");
    }
    src.push_str("v = 1;\nawait forever;");
    let p = Compiler::new().compile(&src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("E", None).unwrap();
    assert_eq!(sim.read_source_var("v"), Some(&Value::Int(1)));
    assert_eq!(sim.status(), Status::Running);
}

#[test]
fn thousand_iteration_async_under_watchdogs() {
    let src = r#"
        int r;
        par/or do
           r = async do
              int i = 0;
              loop do
                 if i == 100000 then break; end
                 i = i + 1;
              end
              return i;
           end;
        with
           await 1h;
           r = 0 - 1;
        end
        return r;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    assert_eq!(sim.status(), Status::Terminated(Some(100000)));
}

//! The §3 demo applications as automated tests (condensed versions of the
//! runnable examples), exercising both substrates end to end.

use arduino_sim::{MarioHost, ShipHost, KEY_DOWN};
use ceu::runtime::Value;
use ceu::{Compiler, Simulator};
use wsn_sim::{BlinkThread, OccamLedProc, OccamTimerProc};
use wsn_sim::{CeuMote, MantisMote, Radio, Topology, World};

const RING: &str = r#"
    input _message_t* Radio_receive;
    internal void retry;
    pure _Radio_getPayload;
    deterministic _Radio_send, _Leds_set, _Leds_led0Toggle;
    par do
       loop do
          _message_t* msg = await Radio_receive;
          int* cnt = _Radio_getPayload(msg);
          _Leds_set(*cnt);
          await 1s;
          *cnt = *cnt + 1;
          _Radio_send((_TOS_NODE_ID+1)%3, msg);
       end
    with
       loop do
          par/or do
             await 5s;
             par do
                loop do
                   emit retry;
                   await 10s;
                end
             with
                _Leds_set(0);
                loop do
                   _Leds_led0Toggle();
                   await 500ms;
                end
             end
          with
             await Radio_receive;
          end
       end
    with
       if _TOS_NODE_ID == 0 then
          loop do
             _message_t msg;
             int* cnt = _Radio_getPayload(&msg);
             *cnt = 1;
             _Radio_send(1, &msg)
             await retry;
          end
       else
          await forever;
       end
    end
"#;

#[test]
fn ring_counter_circulates() {
    let program = Compiler::new().compile(RING).unwrap();
    let mut w = World::new(Radio::new(Topology::Ring { n: 3 }, 2_000, 0.0, 7));
    for id in 0..3 {
        w.add_mote(Box::new(CeuMote::new(program.clone(), id)));
    }
    w.boot();
    w.run_until(10_000_000);
    // ~1 increment per second; the led mask shows the last counter seen
    assert!(w.leds(0).state >= 3, "counter: {}", w.leds(0).state);
    assert_eq!(w.stats.lost, 0);
}

#[test]
fn ring_detects_failure_and_recovers() {
    let program = Compiler::new().compile(RING).unwrap();
    let mut w = World::new(Radio::new(Topology::Ring { n: 3 }, 2_000, 0.0, 7));
    for id in 0..3 {
        w.add_mote(Box::new(CeuMote::new(program.clone(), id)));
    }
    w.boot();
    w.run_until(8_000_000);
    let healthy = w.leds(0).state;
    w.radio.set_down(2, true);
    w.run_until(25_000_000);
    // network-down mode: the red led blinks on the starved motes
    assert!(w.leds(0).on_times(0).len() >= 5, "mote 0 must blink during the outage");
    w.radio.set_down(2, false);
    w.run_until(60_000_000);
    assert!(w.leds(1).state > healthy, "counter resumed after recovery");
}

#[test]
fn ship_game_runs_headless() {
    // central loop + key handling, without the outer phase loop
    let src = r#"
        input int Key;
        deterministic _analogRead, _redraw;
        pure _analog2key;
        int ship, dt, step, points, win;
        dt = 200;
        _map_generate();
        win =
           par do
              loop do
                 await(dt*1000);
                 step = step + 1;
                 _redraw(step, ship, points);
                 if _MAP[ship][step] == '#' then
                    return 0;
                 end
                 if step == _FINISH then
                    return 1;
                 end
                 points = points + 1;
              end
           with
              loop do
                 int key = await Key;
                 if key == _KEY_UP then
                    ship = 0;
                 end
                 if key == _KEY_DOWN then
                    ship = 1;
                 end
              end
           end;
        return win * 1000 + points;
    "#;
    let program = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(program, ShipHost::new(5, 32));
    sim.start().unwrap();
    // autopilot: dodge by probing the map before each 200ms step
    let mut t = 0u64;
    while !sim.status().is_terminated() && t < 30_000_000 {
        t += 200_000;
        let step = sim.read_var("step#2").and_then(|v| v.as_int()).unwrap_or(0);
        let ship = sim.read_var("ship#0").and_then(|v| v.as_int()).unwrap_or(0) as usize;
        let h = sim.host_mut();
        let next = (step + 1) as usize;
        if next < h.map[0].len() && h.map[ship][next] == '#' {
            let key = if ship == 0 { arduino_sim::KEY_DOWN } else { arduino_sim::KEY_UP };
            sim.event("Key", Some(Value::Int(key))).unwrap();
        }
        sim.host_mut().now = t;
        sim.advance_to(t).unwrap();
    }
    match sim.status() {
        ceu::Status::Terminated(Some(v)) => {
            assert_eq!(v, 1030, "autopilot must reach the finish line: {v}");
        }
        other => panic!("game did not finish: {other:?}"),
    }
    assert!(!sim.host().lcd.frames.is_empty());
}

#[test]
fn ship_game_collision_without_steering() {
    let src = r#"
        input int Key;
        deterministic _analogRead, _redraw;
        int ship, dt, step;
        dt = 100;
        _map_generate();
        int win =
           par do
              loop do
                 await(dt*1000);
                 step = step + 1;
                 _redraw(step, ship, 0);
                 if _MAP[ship][step] == '#' then
                    return 0;
                 end
                 if step == _FINISH then
                    return 1;
                 end
              end
           with
              await Key;
              return 99;
           end;
        return win;
    "#;
    let program = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(program, ShipHost::new(5, 64));
    sim.start().unwrap();
    sim.advance_by(30_000_000).unwrap();
    // row 0 of seed-5's map has a meteor before the finish: crash
    assert_eq!(sim.status(), ceu::Status::Terminated(Some(0)));
}

/// A 200-step Mario session with one jump, recorded and replayed.
#[test]
fn mario_record_replay_is_exact() {
    let src = r#"
        input int  Seed;
        input void Key, Step, Restart;
        pure _rand;
        par do
           loop do
              par/or do
                 internal void collision;
                 int seed = await Seed;
                 _srand(seed);
                 int mario_x = 10, mario_dx = 1, mario_y = 236, mario_dy = 0;
                 int turtle_x = 600, turtle_dx = 0;
                 _redraw(mario_x,mario_y, turtle_x,250);
                 par do
                    loop do
                       await 50ms;
                       turtle_dx = 0 - (_rand()%4-1);
                    end
                 with
                    loop do
                       int v = par do
                                  await Key;
                                  return 1;
                               with
                                  await collision;
                                  return 0;
                               end;
                       if v == 1 then
                          mario_dy = 0-2;
                          await 500ms;
                          mario_dy = 2;
                          await 500ms;
                          mario_dy = 0;
                       else
                          mario_dx = 0-4;
                          await 300ms;
                          mario_dx = 1;
                       end
                    end
                 with
                    loop do
                       await Step;
                       mario_x = mario_x + mario_dx;
                       mario_y = mario_y + mario_dy;
                       turtle_x = turtle_x + turtle_dx;
                       if !( mario_x+32<turtle_x || turtle_x+32<mario_x ) then
                          emit collision;
                       end
                       _redraw(mario_x,mario_y, turtle_x,250);
                    end
                 end
              with
                 await Restart;
              end
           end
        with
           async do
              int seed = 3;
              emit Seed = seed;
              int[8] keys;
              keys[0] = 0-1;
              int idx = 0;
              int step = 0;
              loop do
                 if _key_pressed(step) then
                    keys[idx] = step;
                    idx = idx + 1;
                    keys[idx] = 0-1;
                    emit Key;
                 end
                 emit 10ms;
                 emit Step;
                 step = step + 1;
                 if step == 200 then break; end
              end
              _mark(1);
              emit Restart;
              emit Seed = seed;
              step = 0;
              idx = 0;
              loop do
                 if step == keys[idx] then
                    emit Key;
                    idx = idx + 1;
                 else
                    emit 10ms;
                    emit Step;
                    step = step + 1;
                    if step == 200 then break; end
                 end
              end
              _mark(2);
           end
           await forever;
        end
    "#;
    let program = Compiler::new().compile(src).unwrap();
    let mut host = MarioHost::new(3);
    host.key_steps = vec![25, 90];
    let mut sim = Simulator::new(program, host);
    sim.start().unwrap();
    let host = sim.host();
    let m1 = host.marks[0].1;
    let m2 = host.marks[1].1;
    assert_eq!(&host.frames[..m1], &host.frames[m1..m2]);
    assert_eq!(m1, 201); // initial redraw + 200 steps
}

#[test]
fn blink_sync_ceu_stays_locked_preemptive_drifts() {
    // §5: two leds at 400ms / 1000ms should light together every 4s
    let ceu_src = r#"
        deterministic _led0, _led1;
        par do
           int on0 = 0;
           loop do
              on0 = 1 - on0;
              _led0(on0);
              await 400ms;
           end
        with
           int on1 = 0;
           loop do
              on1 = 1 - on1;
              _led1(on1);
              await 1000ms;
           end
        end
    "#;
    let program = Compiler::new().compile(ceu_src).unwrap();

    struct LedHost {
        history: Vec<(u64, u8, bool)>,
        now: u64,
    }
    impl ceu::Host for LedHost {
        fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, String> {
            let on = args[0].as_int().unwrap_or(0) != 0;
            match name {
                "led0" => self.history.push((self.now, 0, on)),
                "led1" => self.history.push((self.now, 1, on)),
                other => return Err(format!("no _{other}")),
            }
            Ok(Value::Int(0))
        }
    }

    let mut sim = Simulator::new(program, LedHost { history: vec![], now: 0 });
    let mut t = 0;
    sim.start().unwrap();
    while t < 60_000_000 {
        t += 100_000;
        sim.host_mut().now = t;
        sim.advance_to(t).unwrap();
    }
    // Céu: both leds switch on together at every multiple of 2s
    let h = &sim.host().history;
    let on0: Vec<u64> = h.iter().filter(|(_, l, on)| *l == 0 && *on).map(|(t, _, _)| *t).collect();
    let on1: Vec<u64> = h.iter().filter(|(_, l, on)| *l == 1 && *on).map(|(t, _, _)| *t).collect();
    let coincidences = on0.iter().filter(|t| on1.contains(t)).count();
    // both switch on together every 4s (LCM of the 800ms/2000ms on-grids),
    // exactly as the paper observes ("light-on together every four seconds")
    assert!(coincidences >= 15, "Céu leds stay synchronized: {coincidences}");

    // preemptive threads drift apart
    let mut w = World::new(Radio::ideal(0));
    let mut mote = MantisMote::new(0);
    mote.spawn(1, Box::new(BlinkThread { led: 0, period_us: 400_000 }));
    mote.spawn(1, Box::new(BlinkThread { led: 1, period_us: 1_000_000 }));
    w.add_mote(Box::new(mote));
    w.boot();
    w.run_until(60_000_000);
    let on0 = w.leds(0).on_times(0);
    let on1 = w.leds(0).on_times(1);
    let coincidences = on0.iter().filter(|t| on1.contains(t)).count();
    assert!(coincidences <= 2, "preemptive leds lose sync: {coincidences}");

    // …and so do occam-analog processes
    let mut w = World::new(Radio::ideal(0));
    let mut mote = MantisMote::new(0);
    mote.spawn(1, Box::new(OccamTimerProc { chan: 0, period_us: 400_000 }));
    mote.spawn(1, Box::new(OccamLedProc { chan: 0, led: 0 }));
    mote.spawn(1, Box::new(OccamTimerProc { chan: 1, period_us: 1_000_000 }));
    mote.spawn(1, Box::new(OccamLedProc { chan: 1, led: 1 }));
    w.add_mote(Box::new(mote));
    w.boot();
    w.run_until(60_000_000);
    let on0 = w.leds(0).on_times(0);
    let on1 = w.leds(0).on_times(1);
    let coincidences = on0.iter().filter(|t| on1.contains(t)).count();
    assert!(coincidences <= 2, "occam leds lose sync: {coincidences}");
}

/// `KEY_DOWN` import is used by the ship tests via fully qualified paths;
/// silence the lint while keeping the import for readability.
#[allow(dead_code)]
fn _use(_: i64) {
    let _ = KEY_DOWN;
}

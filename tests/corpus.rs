//! Corpus driver: every `.ceu` file under `corpus/` is run through the
//! pipeline and checked against the expectation directives in its header
//! comments (rustc-UI-test style).
//!
//! * `corpus/accept/*.ceu` — `// expect: ok`: must pass every analysis.
//! * `corpus/reject/*.ceu` — `// expect: parse-error | resolve-error |
//!   unbounded | nondeterministic <kind>`: must be refused at the right
//!   stage.
//! * `corpus/run/*.ceu` — executed with `// run:` directives (the `ceuc`
//!   script syntax) and checked against `// assert-var`, `// assert-status`,
//!   `// assert-calls`, `// assert-output` directives.

use ceu::runtime::{RecordingHost, Status, Value};
use ceu::{Compiler, Error, Simulator};
use std::path::{Path, PathBuf};

fn corpus_dir(sub: &str) -> PathBuf {
    // tests run from the crate dir (crates/core); corpus sits at the root
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    here.join("../../corpus").join(sub)
}

fn ceu_files(sub: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(corpus_dir(sub))
        .unwrap_or_else(|e| panic!("corpus/{sub} missing: {e}"))
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ceu"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus/{sub} is empty");
    files
}

/// Extracts `// key: value` directives from the header comments.
fn directives<'a>(src: &'a str, key: &str) -> Vec<&'a str> {
    let prefix = format!("// {key}:");
    src.lines().filter_map(|l| l.trim().strip_prefix(&prefix)).map(|v| v.trim()).collect()
}

#[test]
fn accept_corpus_passes_all_analyses() {
    for path in ceu_files("accept") {
        let src = std::fs::read_to_string(&path).unwrap();
        assert_eq!(directives(&src, "expect"), vec!["ok"], "{path:?} must declare expect: ok");
        Compiler::new()
            .compile(&src)
            .unwrap_or_else(|e| panic!("{}: expected acceptance, got: {e}", path.display()));
    }
}

#[test]
fn reject_corpus_fails_at_the_declared_stage() {
    for path in ceu_files("reject") {
        let src = std::fs::read_to_string(&path).unwrap();
        let expects = directives(&src, "expect");
        assert_eq!(expects.len(), 1, "{path:?} needs exactly one expect directive");
        let expect = expects[0];
        let err = Compiler::new()
            .compile(&src)
            .expect_err(&format!("{} must be refused", path.display()));
        let ok = match (expect, &err) {
            ("parse-error", Error::Parse(_)) => true,
            ("resolve-error", Error::Resolve(_)) => true,
            ("unbounded", Error::Unbounded(_)) => true,
            (e, Error::Nondeterministic(cs)) if e.starts_with("nondeterministic") => {
                let kind = e.trim_start_matches("nondeterministic").trim();
                use ceu::analysis::ConflictKind::*;
                let want = match kind {
                    "variable" => Variable,
                    "internal-event" => InternalEvent,
                    "c-call" => CCall,
                    other => panic!("{path:?}: unknown conflict kind `{other}`"),
                };
                cs.iter().any(|c| c.kind == want)
            }
            _ => false,
        };
        assert!(ok, "{}: expected `{expect}`, got: {err}", path.display());
    }
}

#[test]
fn run_corpus_behaves_as_declared() {
    for path in ceu_files("run") {
        let src = std::fs::read_to_string(&path).unwrap();
        let program =
            Compiler::new().compile(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // keep the original-name → unique-name map for assert-var
        let slot_names: Vec<String> = program.slots.iter().map(|s| s.name.clone()).collect();
        let mut sim = Simulator::new(program, RecordingHost::new());
        sim.start().unwrap_or_else(|e| panic!("{}: boot: {e}", path.display()));

        for d in directives(&src, "run") {
            if sim.status().is_terminated() {
                break;
            }
            let mut it = d.split_whitespace();
            match it.next() {
                Some("event") => {
                    let name = it.next().expect("event name");
                    let value = it.next().map(|v| Value::Int(v.parse().unwrap()));
                    sim.event(name, value)
                        .unwrap_or_else(|e| panic!("{}: event {name}: {e}", path.display()));
                }
                Some("time") => {
                    let t = it.next().expect("duration");
                    let us = ceu::ast::TimeSpec::parse(t)
                        .map(|t| t.us)
                        .or_else(|| t.parse().ok())
                        .unwrap_or_else(|| panic!("{}: bad duration `{t}`", path.display()));
                    sim.advance_by(us).unwrap_or_else(|e| panic!("{}: time: {e}", path.display()));
                }
                Some("async") => {
                    let n: usize = it.next().unwrap_or("1000").parse().unwrap();
                    sim.run_asyncs(n).unwrap();
                }
                other => panic!("{}: unknown run directive {other:?}", path.display()),
            }
        }

        for d in directives(&src, "assert-var") {
            let mut it = d.split_whitespace();
            let name = it.next().expect("var name");
            let want: i64 = it.next().expect("value").parse().unwrap();
            let unique = slot_names
                .iter()
                .find(|n| n.split('#').next() == Some(name))
                .unwrap_or_else(|| panic!("{}: no variable `{name}`", path.display()));
            let got = sim.read_var(unique).and_then(|v| v.as_int());
            assert_eq!(got, Some(want), "{}: var {name}", path.display());
        }

        for d in directives(&src, "assert-status") {
            let mut it = d.split_whitespace();
            match it.next() {
                Some("running") => {
                    assert_eq!(sim.status(), Status::Running, "{}: status", path.display())
                }
                Some("terminated") => match it.next() {
                    Some(v) => assert_eq!(
                        sim.status(),
                        Status::Terminated(Some(v.parse().unwrap())),
                        "{}: status",
                        path.display()
                    ),
                    None => assert!(
                        sim.status().is_terminated(),
                        "{}: expected termination",
                        path.display()
                    ),
                },
                other => panic!("{}: bad assert-status {other:?}", path.display()),
            }
        }

        for d in directives(&src, "assert-calls") {
            let want: Vec<&str> = d.split(',').map(|s| s.trim()).collect();
            assert_eq!(sim.host().call_names(), want, "{}: calls", path.display());
        }

        for d in directives(&src, "assert-output") {
            let mut it = d.split_whitespace();
            let name = it.next().expect("output name");
            let value = it.next().map(|v| Value::Int(v.parse().unwrap()));
            assert!(
                sim.host().outputs.iter().any(|(n, v)| n == name && *v == value),
                "{}: missing output {name} {value:?}; got {:?}",
                path.display(),
                sim.host().outputs
            );
        }
    }
}

#[test]
fn accept_corpus_round_trips_through_the_printer() {
    // every accepted program must survive print → parse → print
    for path in ceu_files("accept") {
        let src = std::fs::read_to_string(&path).unwrap();
        let ast = ceu::parser::parse(&src).unwrap();
        let printed = ceu::ast::pretty(&ast);
        let again = ceu::parser::parse(&printed)
            .unwrap_or_else(|e| panic!("{}: reparse: {e}\n{printed}", path.display()));
        assert_eq!(printed, ceu::ast::pretty(&again), "{}", path.display());
    }
}

#[test]
fn accept_corpus_emits_complete_c() {
    // the C backend covers every accepted program
    for path in ceu_files("accept") {
        let src = std::fs::read_to_string(&path).unwrap();
        let program = Compiler::new().compile(&src).unwrap();
        let c = ceu::codegen::cbackend::emit_c(&program);
        assert!(c.contains("switch (track)"), "{}", path.display());
        // every track appears as a case
        for i in 0..program.blocks.len() {
            assert!(c.contains(&format!("case {i}:")), "{}: track {i}", path.display());
        }
    }
}

#[test]
fn run_corpus_is_deterministic_across_replays() {
    // the central promise, checked over the whole run corpus: repeat every
    // scripted run and require identical data and host-call logs
    for path in ceu_files("run") {
        let src = std::fs::read_to_string(&path).unwrap();
        let run_once = || {
            let program = Compiler::new().compile(&src).unwrap();
            let mut sim = Simulator::new(program, RecordingHost::new());
            sim.start().unwrap();
            for d in directives(&src, "run") {
                if sim.status().is_terminated() {
                    break;
                }
                let mut it = d.split_whitespace();
                match it.next() {
                    Some("event") => {
                        let name = it.next().unwrap();
                        let value = it.next().map(|v| Value::Int(v.parse().unwrap()));
                        sim.event(name, value).unwrap();
                    }
                    Some("time") => {
                        let t = it.next().unwrap();
                        let us = ceu::ast::TimeSpec::parse(t)
                            .map(|t| t.us)
                            .or_else(|| t.parse().ok())
                            .unwrap();
                        sim.advance_by(us).unwrap();
                    }
                    Some("async") => {
                        let n: usize = it.next().unwrap_or("1000").parse().unwrap();
                        sim.run_asyncs(n).unwrap();
                    }
                    _ => unreachable!(),
                }
            }
            let data = sim.machine().data().to_vec();
            let calls = sim.host().call_names().join(",");
            (data, calls, sim.status())
        };
        let a = run_once();
        let b = run_once();
        assert_eq!(a.0, b.0, "{}: data", path.display());
        assert_eq!(a.1, b.1, "{}: calls", path.display());
        assert_eq!(a.2, b.2, "{}: status", path.display());
    }
}

//! The generated C is a real translation unit: compile every accepted
//! corpus program (and the demo sources) with the system C compiler.
//! Host symbols stay extern — exactly the situation of the reference
//! implementation, whose output is linked against the platform binding.

use ceu::Compiler;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;

fn have_cc() -> Option<&'static str> {
    ["gcc", "cc"].into_iter().find(|cc| Command::new(cc).arg("--version").output().is_ok())
}

fn compile_c(cc: &str, c_src: &str, tag: &str) -> Result<(), String> {
    let dir = std::env::temp_dir().join("ceu-cbackend-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let src_path = dir.join(format!("{tag}.c"));
    let obj_path = dir.join(format!("{tag}.o"));
    let mut f = std::fs::File::create(&src_path).unwrap();
    f.write_all(c_src.as_bytes()).unwrap();
    let out = Command::new(cc)
        .args(["-std=gnu11", "-Wall", "-Wno-unused", "-c"])
        .arg(&src_path)
        .arg("-o")
        .arg(&obj_path)
        .output()
        .map_err(|e| e.to_string())?;
    if out.status.success() {
        Ok(())
    } else {
        Err(String::from_utf8_lossy(&out.stderr).into_owned())
    }
}

fn corpus_accept() -> Vec<PathBuf> {
    let here = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<PathBuf> = std::fs::read_dir(here.join("../../corpus/accept"))
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "ceu"))
        .collect();
    files.sort();
    files
}

#[test]
fn generated_c_compiles_with_the_system_compiler() {
    let Some(cc) = have_cc() else {
        eprintln!("no C compiler found; skipping");
        return;
    };
    for path in corpus_accept() {
        let src = std::fs::read_to_string(&path).unwrap();
        let program = Compiler::new().compile(&src).unwrap();
        let c = ceu::codegen::cbackend::emit_c(&program);
        let tag = path.file_stem().unwrap().to_string_lossy().into_owned();
        compile_c(cc, &c, &tag)
            .unwrap_or_else(|e| panic!("{}: generated C must compile:\n{e}", path.display()));
    }
}

#[test]
fn generated_c_for_the_demos_compiles() {
    let Some(cc) = have_cc() else {
        eprintln!("no C compiler found; skipping");
        return;
    };
    let ring = r#"
        input _message_t* Radio_receive;
        internal void retry;
        pure _Radio_getPayload;
        deterministic _Radio_send, _Leds_set, _Leds_led0Toggle;
        par do
           loop do
              _message_t* msg = await Radio_receive;
              int* cnt = _Radio_getPayload(msg);
              _Leds_set(*cnt);
              await 1s;
              *cnt = *cnt + 1;
              _Radio_send((_TOS_NODE_ID+1)%3, msg);
           end
        with
           loop do
              par/or do
                 await 5s;
                 par do
                    loop do
                       emit retry;
                       await 10s;
                    end
                 with
                    _Leds_set(0);
                    loop do
                       _Leds_led0Toggle();
                       await 500ms;
                    end
                 end
              with
                 await Radio_receive;
              end
           end
        with
           if _TOS_NODE_ID == 0 then
              loop do
                 _message_t msg;
                 int* cnt = _Radio_getPayload(&msg);
                 *cnt = 1;
                 _Radio_send(1, &msg)
                 await retry;
              end
           else
              await forever;
           end
        end
    "#;
    let program = Compiler::new().compile(ring).unwrap();
    let c = ceu::codegen::cbackend::emit_c(&program);
    compile_c(cc, &c, "ring_demo").unwrap_or_else(|e| panic!("ring demo C:\n{e}"));
    // method-style calls are mangled for C
    let ship_fragment = r#"
        input int Key;
        deterministic _analogRead, _lcd.setCursor, _lcd.write;
        int ship;
        par do
           loop do
              int k = await Key;
              ship = k % 2;
              _lcd.setCursor(0, ship);
              _lcd.write('<');
           end
        with
           loop do
              await 50ms;
              _analogRead(0);
           end
        end
    "#;
    let program = Compiler::new().compile(ship_fragment).unwrap();
    let c = ceu::codegen::cbackend::emit_c(&program);
    assert!(c.contains("lcd_setCursor("), "dots mangled:\n{c}");
    compile_c(cc, &c, "ship_fragment").unwrap_or_else(|e| panic!("ship fragment C:\n{e}"));
}

#[test]
fn generated_c_object_sizes_scale_with_program() {
    let Some(cc) = have_cc() else {
        eprintln!("no C compiler found; skipping");
        return;
    };
    let size_of = |src: &str, tag: &str| -> u64 {
        let program = Compiler::new().compile(src).unwrap();
        let c = ceu::codegen::cbackend::emit_c(&program);
        compile_c(cc, &c, tag).unwrap_or_else(|e| panic!("{tag}: {e}"));
        let obj = std::env::temp_dir().join("ceu-cbackend-tests").join(format!("{tag}.o"));
        std::fs::metadata(obj).unwrap().len()
    };
    let small = size_of("await 1s;", "size_small");
    let big = size_of(
        "input void A, B, C;\npar do\n loop do await A; end\nwith\n loop do await B; end\nwith\n loop do await C; end\nwith\n loop do await 10ms; end\nwith\n loop do await 20ms; end\nend",
        "size_big",
    );
    assert!(big > small, "object code grows with the program: {small} vs {big}");
}

//! End-to-end tests of the `ceuc` CLI binary (spawned as a subprocess).

use std::io::Write as _;
use std::process::Command;

fn ceuc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ceuc"))
}

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("ceuc-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(content.as_bytes()).unwrap();
    path
}

const OK_PROGRAM: &str = "input int Restart;\nint v = 0;\npar/or do\n loop do\n  await 1s;\n  v = v + 1;\n end\nwith\n v = await Restart;\nend\nreturn v;";

#[test]
fn check_accepts_safe_program() {
    let path = write_tmp("ok.ceu", OK_PROGRAM);
    let out = ceuc().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ok (bounded, deterministic)"), "{stdout}");
}

#[test]
fn check_rejects_tight_loop_with_diagnostic() {
    let path = write_tmp("tight.ceu", "int v;\nloop do\n v = v + 1;\nend");
    let out = ceuc().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("tight loop"), "{stderr}");
    assert!(stderr.contains("2:1"), "span points at the loop: {stderr}");
}

#[test]
fn check_rejects_nondeterminism_with_both_spans() {
    let path = write_tmp("race.ceu", "int v;\npar/and do\n v = 1;\nwith\n v = 2;\nend\nreturn v;");
    let out = ceuc().arg("check").arg(&path).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("concurrent access to variable `v`"), "{stderr}");
}

#[test]
fn run_executes_a_script() {
    let prog = write_tmp("run.ceu", OK_PROGRAM);
    let script = write_tmp("run.script", "time 2500ms\nprint v\nevent Restart 7  # reset\n");
    let out = ceuc().arg("run").arg(&prog).arg(&script).output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("v = 2"), "{stdout}");
    assert!(stdout.contains("terminated: 7"), "{stdout}");
}

#[test]
fn emit_c_produces_the_paper_shape() {
    let path = write_tmp("emit.ceu", OK_PROGRAM);
    let out = ceuc().arg("emit-c").arg(&path).output().unwrap();
    assert!(out.status.success());
    let c = String::from_utf8_lossy(&out.stdout);
    assert!(c.contains("switch (track)"), "{c}");
    assert!(c.contains("void ceu_go_event"));
}

#[test]
fn dfa_and_flow_emit_dot() {
    let path = write_tmp("dot.ceu", OK_PROGRAM);
    for cmd in ["dfa", "flow"] {
        let out = ceuc().arg(cmd).arg(&path).output().unwrap();
        assert!(out.status.success(), "{cmd}");
        let dot = String::from_utf8_lossy(&out.stdout);
        assert!(dot.starts_with("digraph"), "{cmd}: {dot}");
    }
}

#[test]
fn report_prints_memory_numbers() {
    let path = write_tmp("report.ceu", OK_PROGRAM);
    let out = ceuc().arg("report").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("ROM (generated C bytes):"), "{stdout}");
    assert!(stdout.contains("RAM (static state bytes):"), "{stdout}");
}

#[test]
fn bad_usage_and_missing_files_fail_cleanly() {
    let out = ceuc().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));

    let out = ceuc().arg("check").arg("/nonexistent/x.ceu").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));

    let path = write_tmp("cmd.ceu", OK_PROGRAM);
    let out = ceuc().arg("frobnicate").arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn script_errors_carry_line_numbers() {
    let prog = write_tmp("se.ceu", OK_PROGRAM);
    let script = write_tmp("se.script", "time 1s\nevent Nope\n");
    let out = ceuc().arg("run").arg(&prog).arg(&script).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown event"), "{stderr}");
}

#[test]
fn run_trace_jsonl_pairs_reactions_with_injected_events() {
    let prog = write_tmp("trace.ceu", OK_PROGRAM);
    let script = write_tmp("trace.script", "time 1500ms\nevent Restart 3\n");
    let trace = std::env::temp_dir().join("ceuc-cli-tests").join("trace.jsonl");
    let out = ceuc()
        .arg("run")
        .arg(&prog)
        .arg(&script)
        .arg("--trace=jsonl")
        .arg("--trace-out")
        .arg(&trace)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let text = std::fs::read_to_string(&trace).unwrap();
    let (mut starts, mut ends) = (0, 0);
    let mut depth = 0i64;
    for line in text.lines() {
        let doc = serde_json::from_str(line)
            .unwrap_or_else(|e| panic!("line is not valid JSON: {line} ({e:?})"));
        match doc.get("ev").and_then(|v| v.as_str()).expect("every line has `ev`") {
            "ReactionStart" => {
                starts += 1;
                depth += 1;
            }
            "ReactionEnd" => {
                ends += 1;
                depth -= 1;
            }
            _ => {}
        }
        assert!((0..=1).contains(&depth), "reactions must not nest or underflow");
    }
    // boot + one timer expiry (1s) + the Restart event = 3 chains
    assert_eq!(starts, 3, "one ReactionStart per cause:\n{text}");
    assert_eq!(starts, ends, "every chain closes:\n{text}");
}

#[test]
fn run_metrics_prints_a_summary() {
    let prog = write_tmp("met.ceu", OK_PROGRAM);
    let script = write_tmp("met.script", "time 2s\nevent Restart 1\n");
    let out = ceuc().arg("run").arg(&prog).arg(&script).arg("--metrics").output().unwrap();
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("--- metrics ---"), "{stdout}");
    // boot + 2 timer reactions + the event
    assert!(stdout.contains("reactions"), "{stdout}");
    assert!(stdout.contains("terminated: 1"), "{stdout}");
}

#[test]
fn run_watchdog_aborts_runaway_reactions() {
    let prog = write_tmp("wd.ceu", OK_PROGRAM);
    let script = write_tmp("wd.script", "time 1s\n");
    let out =
        ceuc().arg("run").arg(&prog).arg(&script).args(["--max-tracks", "1"]).output().unwrap();
    assert!(!out.status.success(), "the boot chain alone exceeds one track");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("track"), "{stderr}");
}

#[test]
fn run_rejects_unknown_flags() {
    let prog = write_tmp("uf.ceu", OK_PROGRAM);
    let out = ceuc().arg("run").arg(&prog).arg("--no-such-flag").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown flag"));
}

#[test]
fn fmt_produces_canonical_reparsable_output() {
    let path = write_tmp("fmt.ceu", "int   v;v=1\n;;await 1s;");
    let out = ceuc().arg("fmt").arg(&path).output().unwrap();
    assert!(out.status.success());
    let formatted = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(formatted.contains("int v;"), "{formatted}");
    // formatting is idempotent: fmt(fmt(x)) == fmt(x)
    let path2 = write_tmp("fmt2.ceu", &formatted);
    let out2 = ceuc().arg("fmt").arg(&path2).output().unwrap();
    assert_eq!(formatted, String::from_utf8_lossy(&out2.stdout));
}

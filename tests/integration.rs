//! Cross-crate integration: the full pipeline (parse → desugar → resolve →
//! bounded check → codegen → temporal analysis → VM) on the paper's
//! guiding examples, plus the C backend and the analysis artifacts.

use ceu::analysis::{self, ConflictKind, DfaOptions};
use ceu::codegen::{cbackend, memory_report};
use ceu::runtime::{RecordingHost, Status, Value};
use ceu::{Compiler, Error, Simulator};

/// The §4 guiding example used throughout the implementation section.
const GUIDING: &str = r#"
    input int A, B;
    input void C;
    int ret;
    loop do
       par/or do
          int a = await A;
          int b = await B;
          ret = a + b;
          break;
       with
          par/and do
             await C;
          with
             await A;
          end
       end
    end
    return ret;
"#;

#[test]
fn guiding_example_compiles_and_runs() {
    let program = Compiler::new().compile(GUIDING).expect("guiding example is safe");
    // four awaits → four gates, as §4.3 describes
    assert_eq!(program.gates.len(), 4);

    let mut sim = Simulator::new(program, RecordingHost::new());
    sim.start().unwrap();
    // A then B completes the first arm, breaks the loop, returns a+b
    sim.event("A", Some(Value::Int(40))).unwrap();
    sim.event("B", Some(Value::Int(2))).unwrap();
    assert_eq!(sim.status(), Status::Terminated(Some(42)));
}

#[test]
fn guiding_example_second_arm_restarts_loop() {
    let program = Compiler::new().compile(GUIDING).unwrap();
    let mut sim = Simulator::new(program, RecordingHost::new());
    sim.start().unwrap();
    // C and A complete the par/and → the par/or rejoins → loop restarts
    sim.event("C", None).unwrap();
    sim.event("A", Some(Value::Int(1))).unwrap();
    assert_eq!(sim.status(), Status::Running);
    // now the first arm again: a fresh await A is active
    sim.event("A", Some(Value::Int(20))).unwrap();
    sim.event("B", Some(Value::Int(22))).unwrap();
    assert_eq!(sim.status(), Status::Terminated(Some(42)));
}

#[test]
fn c_backend_renders_the_guiding_example() {
    let program = Compiler::new().compile(GUIDING).unwrap();
    let c = cbackend::emit_c(&program);
    // the paper's §4.4 shape
    for needle in [
        "_SWITCH:",
        "switch (track)",
        "void ceu_go_init",
        "void ceu_go_event",
        "memset(GATES",
        "#define EVT_A 0",
    ] {
        assert!(c.contains(needle), "generated C must contain `{needle}`");
    }
    // one case per track
    let cases = c.matches("case ").count();
    assert!(cases >= program.blocks.len(), "{cases} cases");
}

#[test]
fn pipeline_error_reporting_names_the_construct() {
    // tight loop
    let err = Compiler::new().compile("loop do nothing; end").unwrap_err();
    assert!(matches!(err, Error::Unbounded(_)));
    // nondeterminism, with the variable named
    let err = Compiler::new()
        .compile("int v;\npar/and do v = 1; with v = 2; end\nreturn v;")
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("`v`"), "{msg}");
    assert!(msg.contains("concurrent access"), "{msg}");
}

#[test]
fn analyze_exposes_dfa_for_nondeterministic_programs() {
    let (program, dfa) = Compiler::new()
        .analyze(
            "input void A;\nint v;\npar do\n loop do\n  await A;\n  await A;\n  v = 1;\n end\nwith\n loop do\n  await A;\n  await A;\n  await A;\n  v = 2;\n end\nend",
        )
        .unwrap();
    assert_eq!(dfa.conflicts.len(), 1);
    assert_eq!(dfa.conflict_depth(&dfa.conflicts[0]), Some(6));
    let dot = analysis::dfa::to_dot(&dfa, &program);
    assert!(dot.contains("color=red"), "conflicting state highlighted");
}

#[test]
fn memory_report_tracks_app_growth() {
    // Céu's fixed runtime cost amortises: bigger app → smaller relative
    // overhead (the Table-1 trend)
    let blink = Compiler::new().compile("loop do\n _led0Toggle();\n await 250ms;\nend").unwrap();
    let bigger = Compiler::new()
        .compile(
            r#"
            input _message_t* Radio_receive;
            internal void retry;
            pure _Radio_getPayload;
            deterministic _Radio_send, _Leds_set, _Leds_led0Toggle;
            par do
               loop do
                  _message_t* msg = await Radio_receive;
                  int* cnt = _Radio_getPayload(msg);
                  _Leds_set(*cnt);
                  await 1s;
                  *cnt = *cnt + 1;
                  _Radio_send((_TOS_NODE_ID+1)%3, msg);
               end
            with
               loop do
                  par/or do
                     await 5s;
                     loop do
                        emit retry;
                        await 10s;
                     end
                  with
                     await Radio_receive;
                  end
               end
            with
               await forever;
            end
        "#,
        )
        .unwrap();
    let (small, big) = (memory_report(&blink), memory_report(&bigger));
    assert!(big.rom_bytes > small.rom_bytes);
    assert!(big.ram_bytes > small.ram_bytes);
    let small_rel = small.rom_bytes as f64 / small.instrs as f64;
    let big_rel = big.rom_bytes as f64 / big.instrs as f64;
    assert!(
        big_rel < small_rel,
        "per-instruction ROM must shrink as apps grow: {small_rel:.0} vs {big_rel:.0}"
    );
}

#[test]
fn determinism_analysis_never_blocks_gals_asyncs() {
    // §2.9: async completion order is *globally* nondeterministic but the
    // analysis only enforces local determinism — this program is accepted
    let src = r#"
        int ret;
        par/or do
            ret = async do
               int i = 0;
               loop do
                  if i == 1000 then break; end
                  i = i + 1;
               end
               return 1;
            end;
        with
            await 1s;
            ret = 2;
        end
        return ret;
    "#;
    Compiler::new().compile(src).expect("GALS nondeterminism is allowed");
}

#[test]
fn dfa_options_cap_state_explosion() {
    // a program with many independent timer loops explodes the product
    // state space; the cap must kick in instead of hanging
    let mut src = String::from("int x;\npar do\n");
    for i in 0..6 {
        src.push_str(&format!(" loop do\n  await {}ms;\n  x = x + 0;\n end\nwith\n", 7 + i * 13));
    }
    src.push_str(" await forever;\nend");
    let program = Compiler::unchecked().compile(&src).unwrap();
    let opts = DfaOptions { max_states: 200, ..Default::default() };
    let dfa = analysis::analyze(&program, &opts);
    assert!(dfa.truncated || dfa.states.len() <= 200);
}

#[test]
fn flowgraph_and_c_are_consistent_on_track_count() {
    let program = Compiler::new().compile(GUIDING).unwrap();
    let dot = analysis::flowgraph::to_dot(&program);
    let nodes = dot.matches("\n  b").count();
    assert!(nodes >= program.blocks.len(), "every track appears in the flow graph");
}

#[test]
fn event_values_are_conveyed_through_the_whole_stack() {
    let program = Compiler::new()
        .compile("input int X;\nint a, b;\na = await X;\nb = await X;\nreturn a * 100 + b;")
        .unwrap();
    let mut sim = Simulator::new(program, RecordingHost::new());
    sim.start().unwrap();
    sim.event("X", Some(Value::Int(4))).unwrap();
    sim.event("X", Some(Value::Int(2))).unwrap();
    assert_eq!(sim.status(), Status::Terminated(Some(402)));
}

#[test]
fn conflict_kinds_cover_all_three_sources() {
    // §2.6: variables, internal events, C calls
    let var = Compiler::new()
        .compile("int v;\npar/and do v = 1; with v = 2; end\nreturn v;")
        .unwrap_err();
    let evt = Compiler::new()
        .compile(
            "input void A;\ninternal void e;\npar do\n loop do\n await A;\n emit e;\n end\nwith\n loop do\n await A;\n emit e;\n end\nwith\n loop do await e; end\nend",
        )
        .unwrap_err();
    let ccall = Compiler::new().compile("par/and do _led1On(); with _led2On(); end").unwrap_err();
    for (err, kind) in [
        (var, ConflictKind::Variable),
        (evt, ConflictKind::InternalEvent),
        (ccall, ConflictKind::CCall),
    ] {
        match err {
            Error::Nondeterministic(cs) => {
                assert!(cs.iter().any(|c| c.kind == kind), "{cs:?}")
            }
            other => panic!("expected nondeterminism, got {other}"),
        }
    }
}

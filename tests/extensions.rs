//! Tests for the implemented future-work extension: `output` events and
//! multi-process (GALS) composition (paper §"Future work").

use ceu::runtime::{Machine, NullHost, RecordingHost, Value};
use ceu::{Compiler, Error, Simulator};

#[test]
fn outputs_reach_the_host_in_order() {
    let src = r#"
        input void Go;
        output int A, B;
        loop do
           await Go;
           emit A = 1;
           emit B = 2;
           emit A = 3;
        end
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, RecordingHost::new());
    sim.start().unwrap();
    sim.event("Go", None).unwrap();
    assert_eq!(
        sim.host().outputs,
        vec![
            ("A".to_string(), Some(Value::Int(1))),
            ("B".to_string(), Some(Value::Int(2))),
            ("A".to_string(), Some(Value::Int(3))),
        ]
    );
}

#[test]
fn machine_buffers_outputs_for_linking() {
    let src = "output int Tick;\nloop do\n emit Tick = 7;\n await 100ms;\nend";
    let p = Compiler::new().compile(src).unwrap();
    let mut m = Machine::new(p);
    let mut h = NullHost;
    m.go_init(&mut h).unwrap();
    m.go_time(250_000, &mut h).unwrap();
    let outs = m.take_outputs();
    assert_eq!(outs.len(), 3); // boot + 100ms + 200ms
    assert!(outs.iter().all(|(_, v)| *v == Some(Value::Int(7))));
    // drained
    assert!(m.take_outputs().is_empty());
}

#[test]
fn void_outputs_carry_no_value() {
    let src = "output void Blip;\nemit Blip;\nawait 1s;";
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, RecordingHost::new());
    sim.start().unwrap();
    assert_eq!(sim.host().outputs, vec![("Blip".to_string(), None)]);
}

#[test]
fn awaiting_an_output_is_rejected() {
    let err = Compiler::new().compile("output int A;\nawait A;").unwrap_err();
    assert!(matches!(err, Error::Resolve(_)));
    assert!(err.to_string().contains("cannot be awaited"), "{err}");
}

#[test]
fn output_value_rules_match_event_type() {
    // valued output without a value
    assert!(Compiler::new().compile("output int A;\nemit A;\nawait 1s;").is_err());
    // void output with a value
    assert!(Compiler::new().compile("output void A;\nemit A = 1;\nawait 1s;").is_err());
}

#[test]
fn concurrent_output_emissions_are_nondeterministic() {
    // the environment observes the order of outputs, so two concurrent
    // emissions of the same output event are refused, like internal events
    let src = r#"
        input void E;
        output int A;
        par do
           loop do
              await E;
              emit A = 1;
           end
        with
           loop do
              await E;
              emit A = 2;
           end
        end
    "#;
    let err = Compiler::new().compile(src).unwrap_err();
    assert!(matches!(err, Error::Nondeterministic(_)), "{err}");
    // …while different output events are fine
    let ok = src.replace("output int A;", "output int A, B;").replace("emit A = 2", "emit B = 2");
    Compiler::new().compile(&ok).unwrap();
}

#[test]
fn emitting_output_from_async_is_allowed() {
    // asyncs talk to the environment freely (globally asynchronous side)
    let src = r#"
        output int Done;
        int r;
        r = async do
           return 5;
        end;
        emit Done = r;
        await 1s;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, RecordingHost::new());
    sim.start().unwrap();
    assert_eq!(sim.host().outputs, vec![("Done".to_string(), Some(Value::Int(5)))]);
}

#[test]
fn c_backend_emits_output_calls() {
    let src = "output int A;\nemit A = 1;\nawait 1s;";
    let p = Compiler::new().compile(src).unwrap();
    let c = ceu::codegen::cbackend::emit_c(&p);
    assert!(c.contains("ceu_out(0, 1);"), "{c}");
}

#[test]
fn two_linked_processes_round_trip() {
    // echo process: doubles every input — linked to a driver process
    let echo = Compiler::new()
        .compile(
            "input int In;\noutput int Out;\nloop do\n int v = await In;\n emit Out = v * 2;\nend",
        )
        .unwrap();
    let driver = Compiler::new()
        .compile(
            "input int Back;\noutput int Fwd;\nint total;\npar/and do\n emit Fwd = 1;\n await 1us;\n emit Fwd = 3;\nwith\n int a = await Back;\n int b = await Back;\n total = a + b;\nend\nreturn total;",
        )
        .unwrap();
    let mut pe = Machine::new(echo);
    let mut pd = Machine::new(driver);
    let mut h = NullHost;
    pe.go_init(&mut h).unwrap();
    pd.go_init(&mut h).unwrap();
    let in_e = pe.event_id("In").unwrap();
    let back = pd.event_id("Back").unwrap();
    // pump the link until both sides are quiet
    for t in 1..10u64 {
        pd.go_time(t, &mut h).unwrap();
        for (_, v) in pd.take_outputs() {
            pe.go_event(in_e, v, &mut h).unwrap();
        }
        for (_, v) in pe.take_outputs() {
            pd.go_event(back, v, &mut h).unwrap();
        }
        if pd.status().is_terminated() {
            break;
        }
    }
    assert_eq!(pd.status(), ceu::Status::Terminated(Some(8))); // 1*2 + 3*2
}

#[test]
fn outputs_print_and_parse_round_trip() {
    let src = "output int A, B;\nemit A = 1;\nawait 1s;";
    let ast = ceu::parser::parse(src).unwrap();
    let printed = ceu::ast::pretty(&ast);
    assert!(printed.contains("output int A, B;"), "{printed}");
    let again = ceu::parser::parse(&printed).unwrap();
    assert_eq!(printed, ceu::ast::pretty(&again));
}

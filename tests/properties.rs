//! Property-based tests (proptest) over the core invariants:
//!
//! * time literals round-trip through print/parse;
//! * pretty-printing is a fixpoint of parsing;
//! * compiled programs are structurally well-formed (valid block/gate/slot
//!   references, well-nested regions) for arbitrary generated programs;
//! * the machine is deterministic: the same program and input sequence
//!   produce identical states and host-call logs — the language's central
//!   promise;
//! * the overlay allocator never exceeds the sum layout and never loses a
//!   variable.

use ceu::runtime::{RecordingHost, Value};
use ceu::{Compiler, Simulator};
use proptest::prelude::*;

// ---- generators ---------------------------------------------------------------

/// Small arithmetic expression over v0..v3 and constants.
fn arb_expr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| format!("v{i}")),
        (-20i64..100).prop_map(|n| if n < 0 { format!("(0 - {})", -n) } else { n.to_string() }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (inner.clone(), prop::sample::select(vec!["+", "-", "*"]), inner)
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

/// A zero-time statement.
fn arb_instant() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u8..4, arb_expr()).prop_map(|(i, e)| format!("v{i} = {e};")),
        arb_expr().prop_map(|e| format!("_f({e});")),
        Just("emit tick;".to_string()),
        Just("nothing;".to_string()),
    ]
}

/// A statement that consumes time.
fn arb_await() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("await A;".to_string()),
        Just("await B;".to_string()),
        (1u64..50).prop_map(|ms| format!("await {ms}ms;")),
        Just("v0 = await X;".to_string()),
    ]
}

/// A statement block, recursively composed; every loop body awaits, so
/// generated programs always pass the bounded-execution check.
fn arb_block(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return prop::collection::vec(
            prop_oneof![arb_instant().boxed(), arb_await().boxed()],
            1..4,
        )
        .prop_map(|v| v.join("\n"))
        .boxed();
    }
    let inner = arb_block(depth - 1);
    prop_oneof![
        prop::collection::vec(prop_oneof![arb_instant().boxed(), arb_await().boxed()], 1..4)
            .prop_map(|v| v.join("\n")),
        (inner.clone(), arb_await()).prop_map(|(b, a)| format!("loop do\n{b}\n{a}\nbreak;\nend")),
        (inner.clone(), inner.clone())
            .prop_map(|(a, b)| format!("par/or do\n{a}\nawait A;\nwith\n{b}\nawait B;\nend")),
        (inner.clone(), inner.clone())
            .prop_map(|(a, b)| format!("par/and do\n{a}\nawait A;\nwith\n{b}\nawait B;\nend")),
        (arb_expr(), inner.clone(), inner)
            .prop_map(|(c, a, b)| format!("if {c} then\n{a}\nelse\n{b}\nend")),
    ]
    .boxed()
}

/// A full program: declarations + generated body (one trail) in parallel
/// with a `tick` listener, so generated `emit tick;` statements exercise
/// the internal-event stack policy.
fn arb_program() -> impl Strategy<Value = String> {
    arb_block(2).prop_map(|body| {
        format!(
            "input void A, B;\ninput int X;\ninternal void tick;\n\
             int v0, v1, v2, v3;\npar do\n{body}\nawait forever;\nwith\n\
             loop do\n   await tick;\n   v3 = v3 + 1;\nend\nend"
        )
    })
}

/// An input script: events and time advancement.
#[derive(Clone, Debug)]
enum Input {
    A,
    B,
    X(i64),
    Time(u64),
}

fn arb_script() -> impl Strategy<Value = Vec<Input>> {
    prop::collection::vec(
        prop_oneof![
            Just(Input::A),
            Just(Input::B),
            (-50i64..50).prop_map(Input::X),
            (1u64..80).prop_map(|ms| Input::Time(ms * 1_000)),
        ],
        0..12,
    )
}

fn run_script(program: ceu::CompiledProgram, script: &[Input]) -> (Vec<Value>, Vec<String>) {
    let mut sim = Simulator::new(program, RecordingHost::new());
    sim.start().expect("boot");
    for inp in script {
        if sim.status().is_terminated() {
            break;
        }
        match inp {
            Input::A => sim.event("A", None).map(|_| ()).expect("A"),
            Input::B => sim.event("B", None).map(|_| ()).expect("B"),
            Input::X(v) => sim.event("X", Some(Value::Int(*v))).map(|_| ()).expect("X"),
            Input::Time(us) => sim.advance_by(*us).map(|_| ()).expect("time"),
        }
    }
    let data = sim.machine().data().to_vec();
    let calls = sim.host().calls.iter().map(|(n, a)| format!("{n}{a:?}")).collect();
    (data, calls)
}

// ---- properties ----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn time_literals_roundtrip(us in 0u64..1_000_000_000_000) {
        let t = ceu::ast::TimeSpec::from_us(us);
        let printed = t.to_string();
        prop_assert_eq!(ceu::ast::TimeSpec::parse(&printed), Some(t));
    }

    #[test]
    fn pretty_print_is_a_parse_fixpoint(src in arb_program()) {
        let p1 = ceu::parser::parse(&src).expect("generated programs parse");
        let printed = ceu::ast::pretty(&p1);
        let p2 = ceu::parser::parse(&printed).expect("printed programs parse");
        prop_assert_eq!(&printed, &ceu::ast::pretty(&p2));
    }

    #[test]
    fn compiled_programs_are_well_formed(src in arb_program()) {
        // unchecked: generated programs may be (detectably) nondeterministic,
        // but they must still compile into a structurally sound artifact
        let p = Compiler::unchecked().compile(&src).expect("generated programs compile");
        let nblocks = p.blocks.len() as u32;
        for g in &p.gates {
            prop_assert!(g.cont < nblocks);
        }
        for r in &p.regions {
            prop_assert!(r.lo <= r.hi && r.hi as usize <= p.gates.len());
        }
        // regions are well nested or disjoint (gate ranges never partially
        // overlap) — the precondition of the memset-style kill
        for (i, a) in p.regions.iter().enumerate() {
            for b in p.regions.iter().skip(i + 1) {
                let disjoint = a.hi <= b.lo || b.hi <= a.lo;
                let nested = (a.lo <= b.lo && b.hi <= a.hi) || (b.lo <= a.lo && a.hi <= b.hi);
                prop_assert!(disjoint || nested, "regions {a:?} vs {b:?}");
            }
        }
        use ceu::codegen::{Op, Term};
        for b in &p.blocks {
            for i in &b.instrs {
                match &i.op {
                    Op::Spawn(t) => prop_assert!(*t < nblocks),
                    Op::ActivateEvt { gate }
                    | Op::ActivateTime { gate, .. }
                    | Op::ActivateNever { gate }
                    | Op::ActivateAsync { gate, .. } => {
                        prop_assert!((*gate as usize) < p.gates.len())
                    }
                    Op::ClearRegion(r) => prop_assert!((*r as usize) < p.regions.len()),
                    _ => {}
                }
            }
            match &b.term {
                Term::Goto(t) => prop_assert!(*t < nblocks),
                Term::If { then_b, else_b, .. } => {
                    prop_assert!(*then_b < nblocks && *else_b < nblocks)
                }
                Term::JoinAnd { lo, hi, cont } => {
                    prop_assert!(*cont < nblocks && lo <= hi && *hi <= p.data_len)
                }
                _ => {}
            }
        }
    }

    #[test]
    fn execution_is_deterministic(src in arb_program(), script in arb_script()) {
        // the language's core promise, checked end-to-end: identical runs
        let p1 = Compiler::unchecked().compile(&src).expect("compiles");
        let (d1, c1) = run_script(p1.clone(), &script);
        let (d2, c2) = run_script(p1, &script);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(c1, c2);
    }

    #[test]
    fn accepted_programs_never_trap_on_structure(src in arb_program(), script in arb_script()) {
        // programs that pass the full analyses must run the script without
        // runtime errors (no panics, no structural traps)
        if let Ok(p) = Compiler::new().compile(&src) {
            let _ = run_script(p, &script);
        }
    }

    #[test]
    fn overlay_never_exceeds_linear_allocation(n in 1u32..6, m in 1u32..6) {
        // two sequential scopes overlay: data = max, not sum
        let decls_a: String = (0..n).map(|i| format!("int a{i};\n")).collect();
        let decls_b: String = (0..m).map(|i| format!("int b{i};\n")).collect();
        let src = format!(
            "do\n{decls_a}nothing;\nend\ndo\n{decls_b}nothing;\nend\nawait 1ms;"
        );
        let p = Compiler::new().compile(&src).expect("compiles");
        prop_assert_eq!(p.data_len, n.max(m));
        // …while parallel scopes must sum
        let src = format!(
            "input void A, B;\npar/and do\n{decls_a}await A;\nwith\n{decls_b}await B;\nend"
        );
        let p = Compiler::new().compile(&src).expect("compiles");
        prop_assert_eq!(p.data_len, n + m + 2); // + two par/and flags
    }

    #[test]
    fn rejections_are_stable(src in arb_program()) {
        // the checked compiler either accepts or rejects, and does so
        // consistently across runs (the analysis itself is deterministic)
        let r1 = Compiler::new().compile(&src).is_ok();
        let r2 = Compiler::new().compile(&src).is_ok();
        prop_assert_eq!(r1, r2);
    }
}

//! Tests for the `suspend` extension (Esterel's suspend, which the paper
//! "is considering to incorporate"; implemented in the level-sensitive
//! style of Céu v2's `pause/if`): while the guard event's last value is
//! truthy, the body's trails see no events and their timers stop aging.

use ceu::runtime::{NullHost, RecordingHost, Status, Value};
use ceu::{Compiler, Simulator};

const COUNTER: &str = r#"
    input int Pause;
    input void Tick;
    int n;
    suspend Pause do
       loop do
          await Tick;
          n = n + 1;
       end
    end
"#;

#[test]
fn suspended_trails_miss_events() {
    let p = Compiler::new().compile(COUNTER).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Tick", None).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(2)));

    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.event("Tick", None).unwrap();
    sim.event("Tick", None).unwrap();
    // events during the pause are *not* buffered (they pass by, §2)
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(2)));

    sim.event("Pause", Some(Value::Int(0))).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(3)));
}

#[test]
fn suspended_timers_freeze_and_resume_shifted() {
    let src = r#"
        input int Pause;
        int done;
        suspend Pause do
           await 100ms;
           done = 1;
        end
        await forever;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    // run 40ms, pause for 200ms, resume: the timer still owes 60ms
    sim.advance_to(40_000).unwrap();
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.advance_to(240_000).unwrap();
    assert_eq!(sim.read_var("done#0"), Some(&Value::Int(0)), "frozen timer must not fire");
    sim.event("Pause", Some(Value::Int(0))).unwrap();
    sim.advance_to(290_000).unwrap();
    assert_eq!(sim.read_var("done#0"), Some(&Value::Int(0)), "still 10ms to go");
    sim.advance_to(300_000).unwrap();
    assert_eq!(sim.read_var("done#0"), Some(&Value::Int(1)), "fires at 40+200+60 = 300ms");
}

#[test]
fn trails_outside_the_suspend_keep_running() {
    let src = r#"
        input int Pause;
        input void Tick;
        int inside, outside;
        par do
           suspend Pause do
              loop do
                 await Tick;
                 inside = inside + 1;
              end
           end
           await forever;
        with
           loop do
              await Tick;
              outside = outside + 1;
           end
        end
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.event("Tick", None).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("inside#0"), Some(&Value::Int(0)));
    assert_eq!(sim.read_var("outside#1"), Some(&Value::Int(2)));
}

#[test]
fn nested_suspends_pause_independently() {
    let src = r#"
        input int P1, P2;
        input void Tick;
        int n;
        suspend P1 do
           suspend P2 do
              loop do
                 await Tick;
                 n = n + 1;
              end
           end
           await forever;
        end
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("P2", Some(Value::Int(1))).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(0)), "inner pause blocks");
    sim.event("P2", Some(Value::Int(0))).unwrap();
    sim.event("P1", Some(Value::Int(1))).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(0)), "outer pause blocks too");
    sim.event("P1", Some(Value::Int(0))).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(1)));
}

#[test]
fn internal_events_can_guard_suspends() {
    let src = r#"
        input void Tick, Toggle;
        internal int gate;
        int n, on;
        par do
           suspend gate do
              loop do
                 await Tick;
                 n = n + 1;
              end
           end
           await forever;
        with
           loop do
              await Toggle;
              on = 1 - on;
              emit gate = on;
           end
        end
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Tick", None).unwrap();
    sim.event("Toggle", None).unwrap(); // gate = 1 → paused
    sim.event("Tick", None).unwrap();
    sim.event("Toggle", None).unwrap(); // gate = 0 → resumed
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(2)));
}

#[test]
fn suspend_body_can_terminate_normally() {
    let src = r#"
        input int Pause;
        input void Go;
        int v;
        suspend Pause do
           await Go;
           v = 42;
        end
        return v;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Go", None).unwrap();
    assert_eq!(sim.status(), Status::Terminated(Some(42)));
}

#[test]
fn resolve_rejects_bad_guards() {
    // void guard (no level to read)
    let err = Compiler::new()
        .compile("input void P, T;\nint n;\nsuspend P do\n await T;\n n = 1;\nend")
        .unwrap_err();
    assert!(err.to_string().contains("must carry a value"), "{err}");
    // output guard
    let err = Compiler::new()
        .compile("output int P;\ninput void T;\nsuspend P do\n await T;\nend")
        .unwrap_err();
    assert!(err.to_string().contains("cannot guard"), "{err}");
    // undeclared guard
    assert!(Compiler::new().compile("input void T;\nsuspend Nope do\n await T;\nend").is_err());
}

#[test]
fn suspend_round_trips_through_the_printer() {
    let ast = ceu::parser::parse(COUNTER).unwrap();
    let printed = ceu::ast::pretty(&ast);
    assert!(printed.contains("suspend Pause do"), "{printed}");
    let again = ceu::parser::parse(&printed).unwrap();
    assert_eq!(printed, ceu::ast::pretty(&again));
}

#[test]
fn pausing_while_paused_is_idempotent() {
    let p = Compiler::new().compile(COUNTER).unwrap();
    let mut sim = Simulator::new(p, RecordingHost::new());
    sim.start().unwrap();
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.event("Pause", Some(Value::Int(5))).unwrap(); // still paused
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(0)));
    sim.event("Pause", Some(Value::Int(0))).unwrap();
    sim.event("Pause", Some(Value::Int(0))).unwrap(); // still resumed
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_var("n#0"), Some(&Value::Int(1)));
}

#[test]
fn par_or_kills_a_paused_suspend_body() {
    // the watchdog fires while the body is frozen: the kill must work
    // regardless of the pause (region clears are unconditional)
    let src = r#"
        input int Pause;
        input void Go, Tick;
        int n, killed;
        par/or do
           suspend Pause do
              loop do
                 await Tick;
                 n = n + 1;
              end
           end
           await forever;
        with
           await Go;
           killed = 1;
        end
        await Tick;
        n = 100;
        await forever;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.event("Go", None).unwrap(); // kills the frozen body
    assert_eq!(sim.read_source_var("killed"), Some(&Value::Int(1)));
    // the post-kill trail reacts even though the (dead) body was paused
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_source_var("n"), Some(&Value::Int(100)));
}

#[test]
fn loop_reenters_suspend_with_level_semantics() {
    // the pause state is a *level*: re-entering the body while the guard
    // is high starts frozen (documented level-sensitive semantics)
    let src = r#"
        input int Pause;
        input void Next, Tick;
        int n;
        loop do
           par/or do
              suspend Pause do
                 loop do
                    await Tick;
                    n = n + 1;
                 end
              end
              await forever;
           with
              await Next;
           end
        end
    "#;
    let p = Compiler::new().compile(src).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_source_var("n"), Some(&Value::Int(1)));
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.event("Next", None).unwrap(); // restart the composition
    sim.event("Tick", None).unwrap(); // still paused: the level holds
    assert_eq!(sim.read_source_var("n"), Some(&Value::Int(1)));
    sim.event("Pause", Some(Value::Int(0))).unwrap();
    sim.event("Tick", None).unwrap();
    assert_eq!(sim.read_source_var("n"), Some(&Value::Int(2)));
}

#[test]
fn residual_delta_composes_with_pause_shift() {
    // chained awaits keep their logical base *and* the pause shift:
    // 30ms + (paused 100ms) + 70ms-remainder, then an immediate 10ms that
    // accumulates from the shifted logical deadline
    let src = r#"
        input int Pause;
        int a, b;
        await 100ms;
        a = 1;
        await 10ms;
        b = 1;
        await forever;
    "#;
    let p = Compiler::new().compile(src).unwrap();
    // wrap the timers in a suspend via a second compilation below; here
    // first establish the unpaused baseline
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.advance_to(110_000).unwrap();
    assert_eq!(sim.read_source_var("b"), Some(&Value::Int(1)));

    let src_paused = format!("suspend Pause do\n{}\nend", &src[src.find("int a").unwrap()..]);
    let src_paused = format!("input int Pause;\n{src_paused}");
    let p = Compiler::new().compile(&src_paused).unwrap();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().unwrap();
    sim.advance_to(30_000).unwrap();
    sim.event("Pause", Some(Value::Int(1))).unwrap();
    sim.advance_to(130_000).unwrap(); // frozen through the pause
    sim.event("Pause", Some(Value::Int(0))).unwrap();
    // first timer now owes 70ms: fires at 200ms; the chained 10ms await
    // runs from the logical deadline → b at 210ms
    sim.advance_to(205_000).unwrap();
    assert_eq!(sim.read_source_var("a"), Some(&Value::Int(1)));
    assert_eq!(sim.read_source_var("b"), Some(&Value::Int(0)));
    sim.advance_to(210_000).unwrap();
    assert_eq!(sim.read_source_var("b"), Some(&Value::Int(1)));
}

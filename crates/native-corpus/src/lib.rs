//! Native (AOT Rust) builds of the whole corpus, generated at build time
//! by `build.rs` via `ceu_codegen::rsbackend::emit_rust` — the
//! generated-crate harness the ISSUE's "compile-and-run emitted code
//! in-process" path uses. Each program exists twice: `*_raw` from the
//! unoptimized artifact and `*_opt` from the optimized one (the two have
//! different fingerprints — the optimizer rewrites flat code and blocks).
//!
//! Consumers attach a program with
//! `Machine::set_native(lookup(name, optimized).unwrap())`; the
//! fingerprint check at attach time guarantees the generated code matches
//! the artifact the machine is running.

use ceu_runtime::NativeProgram;
use std::sync::Arc;

// Each generated file is wrapped in its own module with warnings and
// clippy silenced via inner attributes — generated code is not held to
// the workspace's `-D warnings` style bar.
macro_rules! native_mod {
    ($m:ident, $f:literal) => {
        pub mod $m {
            #![allow(
                dead_code,
                unused_variables,
                unused_mut,
                unused_assignments,
                unused_imports,
                unused_labels,
                unused_parens,
                unreachable_code,
                unreachable_patterns,
                clippy::all
            )]
            include!(concat!(env!("OUT_DIR"), concat!("/", $f)));
        }
    };
}

native_mod!(blink_raw, "blink_raw.rs");
native_mod!(blink_opt, "blink_opt.rs");
native_mod!(sense_raw, "sense_raw.rs");
native_mod!(sense_opt, "sense_opt.rs");
native_mod!(client_raw, "client_raw.rs");
native_mod!(client_opt, "client_opt.rs");
native_mod!(server_raw, "server_raw.rs");
native_mod!(server_opt, "server_opt.rs");
native_mod!(guiding_raw, "guiding_raw.rs");
native_mod!(guiding_opt, "guiding_opt.rs");
native_mod!(fig1_raw, "fig1_raw.rs");
native_mod!(fig1_opt, "fig1_opt.rs");
native_mod!(dataflow_raw, "dataflow_raw.rs");
native_mod!(dataflow_opt, "dataflow_opt.rs");
native_mod!(blink_sync_raw, "blink_sync_raw.rs");
native_mod!(blink_sync_opt, "blink_sync_opt.rs");
native_mod!(receiver0_raw, "receiver0_raw.rs");
native_mod!(receiver0_opt, "receiver0_opt.rs");
native_mod!(receiver5_raw, "receiver5_raw.rs");
native_mod!(receiver5_opt, "receiver5_opt.rs");
native_mod!(expr_heavy_raw, "expr_heavy_raw.rs");
native_mod!(expr_heavy_opt, "expr_heavy_opt.rs");

/// Stable names of every program in this crate (the `ceu-corpus` names).
pub const NAMES: &[&str] = &[
    "blink",
    "sense",
    "client",
    "server",
    "guiding",
    "fig1",
    "dataflow",
    "blink_sync",
    "receiver0",
    "receiver5",
    "expr_heavy",
];

/// The native build of a corpus program: `optimized` selects the
/// artifact the code was emitted from (`Compiler::new()` vs
/// `Compiler::unoptimized()`). `None` for unknown names.
pub fn lookup(name: &str, optimized: bool) -> Option<Arc<dyn NativeProgram>> {
    Some(match (name, optimized) {
        ("blink", false) => Arc::new(blink_raw::program()),
        ("blink", true) => Arc::new(blink_opt::program()),
        ("sense", false) => Arc::new(sense_raw::program()),
        ("sense", true) => Arc::new(sense_opt::program()),
        ("client", false) => Arc::new(client_raw::program()),
        ("client", true) => Arc::new(client_opt::program()),
        ("server", false) => Arc::new(server_raw::program()),
        ("server", true) => Arc::new(server_opt::program()),
        ("guiding", false) => Arc::new(guiding_raw::program()),
        ("guiding", true) => Arc::new(guiding_opt::program()),
        ("fig1", false) => Arc::new(fig1_raw::program()),
        ("fig1", true) => Arc::new(fig1_opt::program()),
        ("dataflow", false) => Arc::new(dataflow_raw::program()),
        ("dataflow", true) => Arc::new(dataflow_opt::program()),
        ("blink_sync", false) => Arc::new(blink_sync_raw::program()),
        ("blink_sync", true) => Arc::new(blink_sync_opt::program()),
        ("receiver0", false) => Arc::new(receiver0_raw::program()),
        ("receiver0", true) => Arc::new(receiver0_opt::program()),
        ("receiver5", false) => Arc::new(receiver5_raw::program()),
        ("receiver5", true) => Arc::new(receiver5_opt::program()),
        ("expr_heavy", false) => Arc::new(expr_heavy_raw::program()),
        ("expr_heavy", true) => Arc::new(expr_heavy_opt::program()),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_name_resolves_both_variants() {
        for name in NAMES {
            for optimized in [false, true] {
                let p = lookup(name, optimized)
                    .unwrap_or_else(|| panic!("{name} (optimized={optimized}) missing"));
                assert_ne!(p.fingerprint(), 0, "{name} fingerprint must be baked");
            }
        }
        assert!(lookup("nope", true).is_none());
    }

    #[test]
    fn optimized_artifact_gets_its_own_fingerprint() {
        // the fingerprint hashes the flat pool, so a program the
        // optimizer rewrites (expr_heavy is all foldable arithmetic)
        // yields different raw/opt emissions — attaching the stale one
        // to a machine running the other artifact must be refused.
        // Programs the optimizer leaves untouched legitimately share a
        // fingerprint: the artifacts are identical.
        let raw = lookup("expr_heavy", false).unwrap();
        let opt = lookup("expr_heavy", true).unwrap();
        assert_ne!(raw.fingerprint(), opt.fingerprint());
    }
}

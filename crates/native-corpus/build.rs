//! AOT step: compile every corpus program (both unoptimized and
//! optimized artifacts) and emit native Rust for each via
//! `ceu_codegen::rsbackend::emit_rust`. The crate's `lib.rs` `include!`s
//! the generated files, so `cargo build` is the whole toolchain — no
//! dlopen, no external codegen invocation.

use std::env;
use std::fs;
use std::path::Path;

fn main() {
    let out_dir = env::var("OUT_DIR").expect("OUT_DIR set by cargo");
    for (name, src) in ceu_corpus::all_programs() {
        for (suffix, optimized) in [("raw", false), ("opt", true)] {
            let compiler =
                if optimized { ceu::Compiler::new() } else { ceu::Compiler::unoptimized() };
            let prog = compiler
                .compile(&src)
                .unwrap_or_else(|e| panic!("corpus program {name} must compile: {e}"));
            let rs = ceu::codegen::rsbackend::emit_rust(&prog);
            let path = Path::new(&out_dir).join(format!("{name}_{suffix}.rs"));
            fs::write(&path, rs).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        }
    }
}

//! The compilation pipeline.

use ceu_analysis::{Conflict, DfaOptions, TightLoop};
use ceu_codegen::CompiledProgram;
use std::fmt;

/// Any error the pipeline can produce, with a uniform display.
#[derive(Clone, Debug)]
pub enum Error {
    Parse(ceu_parser::ParseError),
    Resolve(ceu_ast::ResolveError),
    /// Loops that may iterate without consuming time (§2.5).
    Unbounded(Vec<TightLoop>),
    Lower(ceu_codegen::CompileError),
    /// Sources of nondeterminism found by the temporal analysis (§2.6).
    Nondeterministic(Vec<Conflict>),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "{e}"),
            Error::Resolve(e) => write!(f, "{e}"),
            Error::Unbounded(ls) => {
                for (i, l) in ls.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{l}")?;
                }
                Ok(())
            }
            Error::Lower(e) => write!(f, "{e}"),
            Error::Nondeterministic(cs) => {
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        writeln!(f)?;
                    }
                    write!(f, "{c}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

/// Pipeline knobs.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Run the bounded-execution check (on by default; §2.5).
    pub check_bounded: bool,
    /// Run the DFA temporal analysis and refuse nondeterministic programs
    /// (on by default; §2.6).
    pub check_determinism: bool,
    /// Run the flat-code optimizer pass (on by default; `ceuc --no-opt`
    /// disables it for ablation benchmarks). Applied after the analyses,
    /// which want the unoptimized shape.
    pub optimize: bool,
    /// Temporal-analysis limits.
    pub dfa: DfaOptions,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            check_bounded: true,
            check_determinism: true,
            optimize: true,
            dfa: DfaOptions::default(),
        }
    }
}

/// The Céu compiler: source text in, executable [`CompiledProgram`] out.
#[derive(Clone, Debug, Default)]
pub struct Compiler {
    options: CompileOptions,
}

impl Compiler {
    pub fn new() -> Self {
        Compiler::default()
    }

    pub fn with_options(options: CompileOptions) -> Self {
        Compiler { options }
    }

    /// Disables the safety analyses (used by benches measuring their cost,
    /// and by programs that deliberately exercise runtime behaviour the
    /// analysis over-approximates).
    pub fn unchecked() -> Self {
        Compiler::with_options(CompileOptions {
            check_bounded: false,
            check_determinism: false,
            ..CompileOptions::default()
        })
    }

    /// Full pipeline minus the optimizer pass — the `--no-opt` ablation
    /// (benchmark baselines, differential tests against the opt output).
    pub fn unoptimized() -> Self {
        Compiler::with_options(CompileOptions { optimize: false, ..CompileOptions::default() })
    }

    /// Runs the full pipeline.
    pub fn compile(&self, src: &str) -> Result<CompiledProgram, Error> {
        let mut ast = ceu_parser::parse(src).map_err(Error::Parse)?;
        ceu_ast::desugar(&mut ast);
        ceu_ast::number(&mut ast);
        if self.options.check_bounded {
            let tight = ceu_analysis::check_bounded(&ast);
            if !tight.is_empty() {
                return Err(Error::Unbounded(tight));
            }
        }
        let resolved = ceu_ast::resolve::resolve(ast).map_err(Error::Resolve)?;
        let mut prog = ceu_codegen::compile(&resolved).map_err(Error::Lower)?;
        if self.options.check_determinism {
            let dfa = ceu_analysis::analyze(&prog, &self.options.dfa);
            if !dfa.conflicts.is_empty() {
                return Err(Error::Nondeterministic(dfa.conflicts));
            }
        }
        if self.options.optimize {
            ceu_codegen::optimize(&mut prog);
        }
        Ok(prog)
    }

    /// Runs the pipeline up to the temporal analysis and returns the DFA
    /// (even for nondeterministic programs — used for diagnostics and the
    /// Figure-2 reproduction).
    pub fn analyze(&self, src: &str) -> Result<(CompiledProgram, ceu_analysis::Dfa), Error> {
        let mut ast = ceu_parser::parse(src).map_err(Error::Parse)?;
        ceu_ast::desugar(&mut ast);
        ceu_ast::number(&mut ast);
        if self.options.check_bounded {
            let tight = ceu_analysis::check_bounded(&ast);
            if !tight.is_empty() {
                return Err(Error::Unbounded(tight));
            }
        }
        let resolved = ceu_ast::resolve::resolve(ast).map_err(Error::Resolve)?;
        let prog = ceu_codegen::compile(&resolved).map_err(Error::Lower)?;
        let dfa = ceu_analysis::analyze(&prog, &self.options.dfa);
        Ok((prog, dfa))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_pipeline_accepts_deterministic_program() {
        let p = Compiler::new().compile("input void A;\nloop do\n await A;\nend").unwrap();
        assert_eq!(p.gates.len(), 1);
    }

    #[test]
    fn pipeline_rejects_tight_loop() {
        let err = Compiler::new().compile("int v;\nloop do\n v = v + 1;\nend").unwrap_err();
        assert!(matches!(err, Error::Unbounded(_)), "{err}");
        assert!(err.to_string().contains("tight loop"));
    }

    #[test]
    fn pipeline_rejects_nondeterminism() {
        let err = Compiler::new()
            .compile("int v;\npar/and do\n v = 1;\nwith\n v = 2;\nend\nreturn v;")
            .unwrap_err();
        assert!(matches!(err, Error::Nondeterministic(_)), "{err}");
        assert!(err.to_string().contains("concurrent access"));
    }

    #[test]
    fn unchecked_compiler_skips_analyses() {
        let p = Compiler::unchecked()
            .compile("int v;\npar/and do\n v = 1;\nwith\n v = 2;\nend\nreturn v;")
            .unwrap();
        assert!(p.data_len >= 1);
    }

    #[test]
    fn optimizer_runs_by_default_and_can_be_disabled() {
        let src = "input int E;\nint v;\nloop do\n v = await E;\n v = v + (2 * 3);\nend";
        let opt = Compiler::new().compile(src).unwrap();
        let raw = Compiler::unoptimized().compile(src).unwrap();
        assert!(opt.flat.code.len() < raw.flat.code.len());
        // the tree side stays source-faithful in both
        assert_eq!(opt.exprs, raw.exprs);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(Compiler::new().compile("loop od"), Err(Error::Parse(_))));
    }

    #[test]
    fn resolve_errors_surface() {
        assert!(matches!(Compiler::new().compile("await Nope;"), Err(Error::Resolve(_))));
    }
}

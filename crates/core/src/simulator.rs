//! A driver that owns a [`Machine`] and a [`Host`] and applies the paper's
//! driving discipline (§2, §4.5): reactions run to completion, asyncs only
//! execute while the input side is quiet, and time advances explicitly.

use ceu_codegen::CompiledProgram;
use ceu_runtime::{Host, Machine, Result, RuntimeError, Status, Tracer, Value};
use std::sync::Arc;

/// A machine plus its host, with convenience driving methods. This is what
/// the examples and the WSN/Arduino substrates embed.
pub struct Simulator<H: Host> {
    machine: Machine,
    host: H,
}

impl<H: Host> Simulator<H> {
    pub fn new(program: CompiledProgram, host: H) -> Self {
        Simulator { machine: Machine::new(program), host }
    }

    /// Instantiates over an already-shared artifact — the cheap path when
    /// many simulators (motes, bench workers) run one program.
    pub fn from_arc(program: Arc<CompiledProgram>, host: H) -> Self {
        Simulator { machine: Machine::from_arc(program), host }
    }

    pub fn host(&self) -> &H {
        &self.host
    }

    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    pub fn set_tracer(&mut self, t: Tracer) {
        self.machine.set_tracer(t);
    }

    /// Switches on the machine's metrics registry (idempotent).
    pub fn enable_metrics(&mut self) {
        self.machine.enable_metrics();
    }

    /// The metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&ceu_runtime::Metrics> {
        self.machine.metrics()
    }

    /// Snapshots and resets the metrics registry (`None` when disabled).
    pub fn take_metrics(&mut self) -> Option<ceu_runtime::Metrics> {
        self.machine.take_metrics()
    }

    /// Arms the reaction watchdog (see [`Machine::set_reaction_limits`]).
    pub fn set_reaction_limits(&mut self, max_reaction_us: Option<u64>, max_tracks: Option<u32>) {
        self.machine.set_reaction_limits(max_reaction_us, max_tracks);
    }

    /// Drains the machine's output-event buffer (emission order) through
    /// `f` without allocating — see [`Machine::drain_outputs`]. Drivers
    /// composing programs (GALS) call this after each step instead of
    /// [`Machine::take_outputs`], which gives up the buffer.
    pub fn drain_outputs(&mut self, f: impl FnMut(ceu_ast::EventId, Option<Value>)) {
        self.machine.drain_outputs(f);
    }

    pub fn status(&self) -> Status {
        self.machine.status()
    }

    /// Boot reaction, then let any started asyncs run.
    pub fn start(&mut self) -> Result<Status> {
        self.machine.go_init(&mut self.host)?;
        self.settle()?;
        Ok(self.status())
    }

    /// Feeds one external input event (by name) and reacts to it.
    pub fn event(&mut self, name: &str, value: Option<Value>) -> Result<Status> {
        let id = self.machine.event_id(name).ok_or_else(|| {
            RuntimeError::new(Default::default(), format!("unknown event `{name}`"))
        })?;
        self.machine.go_event(id, value, &mut self.host)?;
        self.settle()?;
        Ok(self.status())
    }

    /// Advances the wall clock to the given absolute time (µs).
    pub fn advance_to(&mut self, us: u64) -> Result<Status> {
        self.machine.go_time(us, &mut self.host)?;
        self.settle()?;
        Ok(self.status())
    }

    /// Advances the wall clock by a delta (µs).
    pub fn advance_by(&mut self, us: u64) -> Result<Status> {
        let target = self.machine.now() + us;
        self.advance_to(target)
    }

    /// Runs async blocks until they are all blocked or done (bounded by
    /// `max_slices` to keep truly unbounded asyncs controllable).
    pub fn run_asyncs(&mut self, max_slices: usize) -> Result<usize> {
        let mut n = 0;
        while n < max_slices
            && !self.status().is_terminated()
            && self.machine.go_async(&mut self.host)?
        {
            n += 1;
        }
        Ok(n)
    }

    /// Lets asyncs settle completely (the common case: asyncs that
    /// terminate, e.g. simulation drivers).
    fn settle(&mut self) -> Result<()> {
        // a generous bound: simulation asyncs emit input and finish; a
        // truly infinite async must be driven with run_asyncs instead
        const SETTLE_SLICES: usize = 2_000_000;
        let mut n = 0;
        while !self.status().is_terminated() && self.machine.go_async(&mut self.host)? {
            n += 1;
            if n >= SETTLE_SLICES {
                return Err(RuntimeError::new(
                    Default::default(),
                    "async blocks did not settle (infinite computation?); drive with run_asyncs",
                ));
            }
        }
        Ok(())
    }

    /// Reads a variable by its unique name (`name#k`).
    pub fn read_var(&self, unique: &str) -> Option<&Value> {
        self.machine.read_var(unique)
    }

    /// Reads a variable by its source name (first declaration wins when
    /// scopes shadow; prefer [`Simulator::read_var`] with the unique name
    /// in that case).
    pub fn read_source_var(&self, name: &str) -> Option<&Value> {
        let unique = self
            .machine
            .program()
            .slots
            .iter()
            .find(|s| s.name.split('#').next() == Some(name))?
            .name
            .clone();
        self.machine.read_var(&unique)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use ceu_runtime::NullHost;

    #[test]
    fn simulator_drives_a_simple_program() {
        let p =
            Compiler::new().compile("input int X;\nint v;\nv = await X;\nreturn v * 2;").unwrap();
        let mut sim = Simulator::new(p, NullHost);
        sim.start().unwrap();
        sim.event("X", Some(Value::Int(21))).unwrap();
        assert_eq!(sim.status(), Status::Terminated(Some(42)));
    }

    #[test]
    fn unknown_event_is_an_error() {
        let p = Compiler::new().compile("await 1s;").unwrap();
        let mut sim = Simulator::new(p, NullHost);
        sim.start().unwrap();
        assert!(sim.event("Nope", None).is_err());
    }

    #[test]
    fn advance_by_accumulates() {
        let p = Compiler::new().compile("int n;\nloop do\n await 10ms;\n n = n + 1;\nend").unwrap();
        let mut sim = Simulator::new(p, NullHost);
        sim.start().unwrap();
        sim.advance_by(25_000).unwrap();
        sim.advance_by(25_000).unwrap();
        assert_eq!(sim.read_var("n#0"), Some(&Value::Int(5)));
    }

    #[test]
    fn infinite_async_is_reported_not_hung() {
        let p = Compiler::new()
            .compile(
                "int r;\npar/or do\n r = async do\n  int i = 0;\n  loop do\n   i = i + 1;\n  end\n  return i;\n end;\nwith\n await 1s;\nend",
            )
            .unwrap();
        let mut sim = Simulator::new(p, NullHost);
        let err = sim.start().unwrap_err();
        assert!(err.message.contains("did not settle"));
    }
}

//! `ceuc` — the Céu compiler driver.
//!
//! ```text
//! ceuc check   <file.ceu>             # parse + analyses, report diagnostics
//! ceuc fmt     <file.ceu>             # canonical formatting to stdout
//! ceuc emit-c  <file.ceu>             # generated C (paper §4.4) to stdout
//! ceuc emit-rust <file.ceu>           # native Rust backend (docs/NATIVE.md)
//! ceuc dfa     <file.ceu>             # temporal-analysis DFA as Graphviz dot
//! ceuc flow    <file.ceu>             # flow graph as Graphviz dot
//! ceuc report  <file.ceu>             # ROM/RAM memory report (Table 1 analog)
//! ceuc run     <file.ceu> [script]    # execute with a scripted input sequence
//! ```
//!
//! All subcommands that compile accept `-O` (optimize; the default) and
//! `--no-opt` (skip the flat-code optimizer pass — the ablation baseline
//! the benchmark harness measures against).
//!
//! `run` accepts observability flags (anywhere after the subcommand):
//!
//! ```text
//! --trace[=FMT]        trace execution; FMT is text (default), jsonl,
//!                      or chrome/perfetto (a Chrome trace-event JSON
//!                      array for ui.perfetto.dev)
//! --trace-out PATH     write the trace to PATH instead of stderr
//! --metrics            print the metrics summary after the run
//! --metrics-out PATH   write the metrics snapshot as JSON to PATH
//! --profile            per-block execution profile, rendered as hot
//!                      statements against the original source
//! --max-reaction-us N  watchdog: abort reactions over N µs wall time
//! --max-tracks N       watchdog: abort reactions over N tracks
//! --faults PLAN        inject faults from a plan file (see below)
//! --deadline-ms N      whole-run wall-clock budget: if the run (scripted
//!                      reactions, output rendering, everything) exceeds
//!                      N ms, it stops with exit code 3. Checked
//!                      cooperatively between script directives and
//!                      enforced by a hard watchdog thread, so even a
//!                      reaction that never yields is bounded. N = 0
//!                      expires immediately (useful to test the path).
//! --blackbox PATH      always-on flight recorder: bounded ring of the
//!                      last reactions; if the machine crashes, a
//!                      `ceu-blackbox/v1` JSONL dump lands at PATH
//!                      (render it with `ceu-trace blackbox`)
//! ```
//!
//! Run scripts are plain text, one directive per line:
//!
//! ```text
//! event Restart 42      # emit input event (optional value)
//! time  100ms           # advance wall-clock time
//! async 1000            # run up to N async slices
//! print v               # print a variable (by source name)
//! ```
//!
//! Fault plans use the wsn-sim grammar restricted to the single machine
//! (mote 0):
//!
//! ```text
//! at 5ms   crash 0                 # power off, stay off
//! at 20ms  reboot 0 after 10ms     # power off, revive from fresh state
//! ```
//!
//! Multi-mote actions (`partition`, `heal`, `loss`, `skew`,
//! `drop-in-flight`) are noted and ignored — they need the WSN
//! simulator. Faults degrade gracefully rather than abort: a crashed
//! machine drops subsequent script directives until a scheduled reboot
//! revives it (trace/metrics/profile then reflect the newest boot; the
//! tracer stays attached to the first).  Machine-level runtime errors
//! (including watchdog trips) follow the same path: the machine powers
//! off instead of the process exiting.
//!
//! Exit codes: `0` ok, `1` usage/compile/script error, `2` the program
//! ended powered off (crashed and never rebooted), `3` the run exceeded
//! its `--deadline-ms` wall-clock budget.

use ceu::runtime::telemetry::{json_string, TraceFormat};
use ceu::runtime::{FlightRecorder, NullHost, TraceEvent, TraceMask, Value};
use ceu::{Compiler, Simulator};
use std::process::ExitCode;
use std::sync::{Arc, Mutex};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ceuc: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Observability options for `ceuc run`.
#[derive(Default)]
struct RunOpts {
    trace: Option<TraceFormat>,
    trace_out: Option<String>,
    metrics: bool,
    /// Write the metrics snapshot (JSON) to this path after the run.
    metrics_out: Option<String>,
    /// Per-block profile, rendered as hot statements against the source.
    profile: bool,
    max_reaction_us: Option<u64>,
    max_tracks: Option<u32>,
    /// Evaluate expressions by walking the IR trees instead of the flat
    /// postfix code (ablation / differential debugging).
    tree_eval: bool,
    /// Skip the flat-code optimizer pass (`--no-opt`; `-O` restores the
    /// default). Ablation baseline for the benchmark harness.
    no_opt: bool,
    /// Path to a fault plan (`--faults`); single-machine subset of the
    /// wsn-sim grammar (crash / reboot of mote 0).
    faults: Option<String>,
    /// Flight recorder: if the run ends crashed (or ever crashed), a
    /// `ceu-blackbox/v1` dump of the last reactions lands here.
    blackbox: Option<String>,
    /// Whole-run wall-clock budget (`--deadline-ms`); exceeding it exits
    /// with code 3.
    deadline_ms: Option<u64>,
}

/// Splits `--flag`-style options out of argv (valid anywhere), leaving
/// the positionals (`cmd file [script]`) in order.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, RunOpts), String> {
    let mut pos = Vec::new();
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => opts.trace = Some(opts.trace.unwrap_or(TraceFormat::Text)),
            "--metrics" => opts.metrics = true,
            "--profile" => opts.profile = true,
            "--tree-eval" => opts.tree_eval = true,
            "-O" => opts.no_opt = false,
            "--no-opt" => opts.no_opt = true,
            "--metrics-out" => {
                let path = it.next().ok_or("--metrics-out needs a path")?;
                opts.metrics_out = Some(path.clone());
            }
            "--trace-out" => {
                let path = it.next().ok_or("--trace-out needs a path")?;
                opts.trace_out = Some(path.clone());
                opts.trace = Some(opts.trace.unwrap_or(TraceFormat::Text));
            }
            "--max-reaction-us" => {
                let n = it.next().ok_or("--max-reaction-us needs a number")?;
                opts.max_reaction_us =
                    Some(n.parse().map_err(|_| "--max-reaction-us: bad number")?);
            }
            "--max-tracks" => {
                let n = it.next().ok_or("--max-tracks needs a number")?;
                opts.max_tracks = Some(n.parse().map_err(|_| "--max-tracks: bad number")?);
            }
            "--faults" => {
                let path = it.next().ok_or("--faults needs a path")?;
                opts.faults = Some(path.clone());
            }
            "--blackbox" => {
                let path = it.next().ok_or("--blackbox needs a path")?;
                opts.blackbox = Some(path.clone());
            }
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a number")?;
                opts.deadline_ms = Some(n.parse().map_err(|_| "--deadline-ms: bad number")?);
            }
            other if other.starts_with("--trace=") => {
                let fmt = &other["--trace=".len()..];
                opts.trace = Some(fmt.parse()?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ => pos.push(a.clone()),
        }
    }
    Ok((pos, opts))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let (pos, opts) = parse_flags(args)?;
    let (cmd, file) = match pos.as_slice() {
        [cmd, file, ..] => (cmd.as_str(), file.as_str()),
        _ => {
            return Err("usage: ceuc <check|fmt|emit-c|emit-rust|dfa|flow|report|run> <file.ceu> [script] [-O|--no-opt] [--trace[=fmt]] [--trace-out PATH] [--metrics] [--metrics-out PATH] [--profile] [--tree-eval] [--max-reaction-us N] [--max-tracks N] [--faults PLAN] [--blackbox PATH] [--deadline-ms N]".into())
        }
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let compiler = if opts.no_opt { ceu::Compiler::unoptimized() } else { Compiler::new() };
    match cmd {
        "check" => {
            compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{file}: ok (bounded, deterministic)");
            Ok(ExitCode::SUCCESS)
        }
        "fmt" => {
            let ast = ceu::parser::parse(&src).map_err(|e| e.to_string())?;
            print!("{}", ceu::ast::pretty(&ast));
            Ok(ExitCode::SUCCESS)
        }
        "emit-c" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::codegen::cbackend::emit_c(&p));
            Ok(ExitCode::SUCCESS)
        }
        "emit-rust" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::codegen::rsbackend::emit_rust(&p));
            Ok(ExitCode::SUCCESS)
        }
        "dfa" => {
            let (p, dfa) = compiler.analyze(&src).map_err(|e| e.to_string())?;
            for c in &dfa.conflicts {
                eprintln!("{c}");
            }
            println!("{}", ceu::analysis::dfa::to_dot(&dfa, &p));
            Ok(ExitCode::SUCCESS)
        }
        "flow" => {
            let p = Compiler::unchecked().compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::analysis::flowgraph::to_dot(&p));
            Ok(ExitCode::SUCCESS)
        }
        "report" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let r = ceu::codegen::memory_report(&p);
            println!("ROM (generated C bytes): {}", r.rom_bytes);
            println!("RAM (static state bytes): {}", r.ram_bytes);
            println!(
                "tracks: {}  gates: {}  data slots: {}  instructions: {}",
                r.tracks, r.gates, r.data_slots, r.instrs
            );
            Ok(ExitCode::SUCCESS)
        }
        "run" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let script = match pos.get(2) {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => String::new(),
            };
            exec_script(p, &src, &script, &opts)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// One entry of a single-machine fault plan (`--faults`): the subset of
/// the wsn-sim fault grammar that is meaningful with one mote.
enum FaultCmd {
    /// Power the machine off; it stays off unless a later `reboot` entry
    /// revives it.
    Crash,
    /// Power the machine off now, revive it from fresh state after
    /// `delay_us`.
    Reboot { delay_us: u64 },
}

struct FaultAt {
    at_us: u64,
    cmd: FaultCmd,
}

fn parse_time(tok: &str) -> Option<u64> {
    ceu::ast::TimeSpec::parse(tok).map(|t| t.us).or_else(|| tok.parse::<u64>().ok())
}

/// Parses the single-machine subset of the fault-plan grammar. Actions
/// that need the multi-mote simulator (and crash/reboot of motes other
/// than 0) are noted on stderr and skipped, not rejected, so one plan
/// file can serve both `ceuc run` and the WSN harness.
fn parse_fault_plan(text: &str) -> Result<Vec<FaultAt>, String> {
    let mut plan = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let note = |msg: String| eprintln!("ceuc: fault plan line {}: {msg}", lineno + 1);
        let fail = |msg: &str| format!("fault plan line {}: {msg}", lineno + 1);
        let mut it = line.split_whitespace();
        let head = it.next().unwrap();
        if head == "seed" {
            continue; // randomness only matters in the multi-mote simulator
        }
        if head != "at" {
            return Err(fail("expected `at <time> <action>`"));
        }
        let at_us = it.next().and_then(parse_time).ok_or_else(|| fail("bad time"))?;
        match it.next().ok_or_else(|| fail("missing action"))? {
            verb @ ("crash" | "reboot") => {
                let mote = it.next().ok_or_else(|| fail("missing mote id"))?;
                if mote != "0" {
                    note(format!("mote {mote} does not exist in a single-machine run; ignored"));
                    continue;
                }
                let cmd = match verb {
                    "crash" => FaultCmd::Crash,
                    _ => match (it.next(), it.next().and_then(parse_time)) {
                        (Some("after"), Some(delay_us)) => FaultCmd::Reboot { delay_us },
                        _ => return Err(fail("expected `reboot 0 after <delay>`")),
                    },
                };
                plan.push(FaultAt { at_us, cmd });
            }
            verb @ ("partition" | "heal" | "loss" | "skew" | "drop-in-flight") => {
                note(format!("`{verb}` needs the multi-mote simulator; ignored"));
            }
            other => return Err(fail(&format!("unknown action `{other}`"))),
        }
    }
    plan.sort_by_key(|f| f.at_us);
    Ok(plan)
}

/// Records a crash without aborting the run: graceful degradation means
/// the machine powers off and the script keeps going (directives to a
/// downed machine are dropped with a note).
fn note_crash(crashed: &mut Option<(u64, String)>, at: u64, cause: String) {
    eprintln!("ceuc: machine crashed at {at}us: {cause} (continuing powered off)");
    *crashed = Some((at, cause));
}

/// Ring capacity of the `--blackbox` machine flight recorder. Sized like
/// the per-shard default in the simulator: a few hundred reactions of
/// context around a crash without measurable steady-state cost.
const BLACKBOX_CAPACITY: usize = 4096;

/// Machine-level flight-recorder state behind the tee tracer: the ring
/// plus the running virtual clock and sequence number the wire format
/// needs (a bare machine has no world to stamp records for it).
struct BlackBox {
    rec: FlightRecorder,
    now_us: u64,
    seq: u64,
}

impl BlackBox {
    fn new(capacity: usize) -> Self {
        BlackBox { rec: FlightRecorder::new(capacity), now_us: 0, seq: 0 }
    }

    /// Stamps and records one trace event. The clock rides along on
    /// reaction boundaries; everything between two boundaries shares the
    /// enclosing reaction's time, exactly like the world trace.
    fn record(&mut self, e: &TraceEvent) {
        if let TraceEvent::ReactionStart { now_us, .. } | TraceEvent::ReactionEnd { now_us, .. } = e
        {
            self.now_us = *now_us;
        }
        self.seq += 1;
        self.rec.record(self.now_us, 0, self.seq, e);
    }
}

/// Writes a `ceu-blackbox/v1` dump for a single-machine run: the same
/// self-describing shape the simulator emits (header, stat lines, then
/// ring records in world-trace wire format), with `shards: 0` marking
/// the machine flavor.
fn write_blackbox_dump(
    path: &str,
    bb: &BlackBox,
    at: u64,
    cause: &str,
    boots: u32,
) -> Result<(), String> {
    use std::fmt::Write as _;
    let rec = &bb.rec;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"ceu-blackbox/v1\",\"reason\":\"machine-crashed\",\"t_us\":{at},\
         \"mote\":0,\"crash_us\":{at},\"cause\":{},\"motes\":1,\"shards\":0,\
         \"ring_capacity\":{},\"ring_records\":{},\"ring_dropped\":{}}}",
        json_string(cause),
        rec.capacity(),
        rec.len(),
        rec.dropped()
    );
    let _ = writeln!(
        out,
        "{{\"blackbox\":\"machine\",\"boots\":{boots},\"ring_len\":{},\"ring_dropped\":{},\
         \"ring_recorded\":{}}}",
        rec.len(),
        rec.dropped(),
        rec.recorded()
    );
    for r in rec.iter() {
        out.push_str(&r.to_json());
        out.push('\n');
    }
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
        }
    }
    std::fs::write(path, out).map_err(|e| format!("cannot write {path}: {e}"))
}

fn exec_script(
    p: ceu::CompiledProgram,
    src: &str,
    script: &str,
    opts: &RunOpts,
) -> Result<ExitCode, String> {
    let faults = match &opts.faults {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            parse_fault_plan(&text)?
        }
        None => Vec::new(),
    };
    // map original names to unique slots for `print`
    let names: Vec<String> = p.slots.iter().map(|s| s.name.clone()).collect();
    // shared artifact so a reboot can remint a fresh machine cheaply
    let arc = std::sync::Arc::new(p);
    let configure = |sim: &mut Simulator<NullHost>| {
        sim.machine_mut().use_tree_eval = opts.tree_eval;
        if opts.profile {
            sim.machine_mut().enable_profiling();
        }
        if opts.metrics || opts.metrics_out.is_some() {
            sim.enable_metrics();
        }
        if opts.max_reaction_us.is_some() || opts.max_tracks.is_some() {
            sim.set_reaction_limits(opts.max_reaction_us, opts.max_tracks);
        }
    };
    let mut sim = Simulator::from_arc(arc.clone(), NullHost);
    configure(&mut sim);

    let (sink, fmt_tracer) = match opts.trace {
        Some(fmt) => {
            let out: Box<dyn std::io::Write + Send> = match &opts.trace_out {
                Some(path) => Box::new(std::io::BufWriter::new(
                    std::fs::File::create(path)
                        .map_err(|e| format!("cannot create {path}: {e}"))?,
                )),
                None => Box::new(std::io::stderr()),
            };
            let (sink, tracer) = fmt.build(out);
            (Some(sink), Some(tracer))
        }
        None => (None, None),
    };
    // The machine has one tracer slot; `--blackbox` installs a tee that
    // feeds the flight recorder and forwards to the format sink (if any).
    let blackbox: Option<Arc<Mutex<BlackBox>>> =
        opts.blackbox.as_ref().map(|_| Arc::new(Mutex::new(BlackBox::new(BLACKBOX_CAPACITY))));
    match (&blackbox, fmt_tracer) {
        (Some(bb), mut inner) => {
            let recorder_only = inner.is_none();
            let bb = Arc::clone(bb);
            sim.set_tracer(Box::new(move |e| {
                bb.lock().unwrap().record(e);
                if let Some(t) = inner.as_mut() {
                    t(e);
                }
            }));
            // with no --trace sink, run at recorder granularity: the
            // per-track firehose and host-clock samples are pure overhead
            if recorder_only {
                sim.machine_mut().set_trace_mask(TraceMask::Coarse);
            }
        }
        (None, Some(t)) => sim.set_tracer(t),
        (None, None) => {}
    }

    // --deadline-ms: wall-clock budget for the whole run. Checked
    // cooperatively between directives; a detached watchdog thread is the
    // hard backstop for a reaction that never comes back (it can only
    // fire while the run is still in flight — the guard's Drop disarms it
    // on every exit path from this function).
    let run_started = std::time::Instant::now();
    let deadline = opts.deadline_ms.map(std::time::Duration::from_millis);
    struct DisarmOnDrop(Arc<std::sync::atomic::AtomicBool>);
    impl Drop for DisarmOnDrop {
        fn drop(&mut self) {
            self.0.store(true, std::sync::atomic::Ordering::SeqCst);
        }
    }
    let _disarm = deadline.map(|d| {
        let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = Arc::clone(&done);
        std::thread::spawn(move || {
            // Grace beyond the cooperative deadline: the soft path gets
            // first shot at a clean exit (epilogue, dumps) before the
            // hard kill.
            std::thread::sleep(d + std::time::Duration::from_millis(500));
            if !flag.load(std::sync::atomic::Ordering::SeqCst) {
                eprintln!("ceuc: --deadline-ms {} exceeded (hard watchdog)", d.as_millis());
                std::process::exit(3);
            }
        });
        DisarmOnDrop(done)
    });
    let over_deadline = || deadline.is_some_and(|d| run_started.elapsed() >= d);
    let mut deadline_hit = false;

    // Degradation state. `clock` is the script's virtual time — it keeps
    // advancing while the machine is down so a scheduled reboot lands at
    // the right moment.
    let mut clock = 0u64;
    let mut crashed: Option<(u64, String)> = None;
    // the first crash of the run, kept even if a reboot clears `crashed`:
    // the black box documents it either way
    let mut first_crash: Option<(u64, String)> = None;
    let mut revive_at: Option<u64> = None;
    let mut boots = 1u32;
    let mut fault_idx = 0usize;

    if let Err(e) = sim.start() {
        note_crash(&mut crashed, sim.machine().now(), e.to_string());
    }
    for (lineno, line) in script.lines().enumerate() {
        if over_deadline() {
            eprintln!(
                "ceuc: --deadline-ms {} exceeded at script line {}; stopping",
                opts.deadline_ms.unwrap_or(0),
                lineno + 1
            );
            deadline_hit = true;
            break;
        }
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let down_note = |what: &str| {
            eprintln!("ceuc: script line {}: machine is down; {what} dropped", lineno + 1);
        };
        let mut it = line.split_whitespace();
        let word = it.next().unwrap();
        match word {
            "event" => {
                let name = it.next().ok_or_else(|| err(lineno, "event needs a name"))?;
                let value = it
                    .next()
                    .map(|v| v.parse::<i64>().map(Value::Int))
                    .transpose()
                    .map_err(|_| err(lineno, "event value must be an integer"))?;
                if crashed.is_some() {
                    down_note(&format!("`event {name}`"));
                } else if let Err(e) = sim.event(name, value) {
                    note_crash(&mut crashed, sim.machine().now(), e.to_string());
                }
            }
            "time" => {
                let t = it.next().ok_or_else(|| err(lineno, "time needs a duration"))?;
                let us = parse_time(t).ok_or_else(|| err(lineno, "bad duration"))?;
                let target = clock + us;
                // apply scheduled faults and reboots at their exact times
                // on the way to `target`
                loop {
                    let fault_at = faults.get(fault_idx).map(|f| f.at_us.max(clock));
                    let pick_revive = match (revive_at, fault_at) {
                        (Some(r), Some(f)) => r <= f,
                        (Some(_), None) => true,
                        _ => false,
                    };
                    let at = match if pick_revive { revive_at } else { fault_at } {
                        Some(at) if at <= target => at,
                        _ => break,
                    };
                    if crashed.is_none() {
                        if let Err(e) = sim.advance_to(at) {
                            note_crash(&mut crashed, sim.machine().now(), e.to_string());
                        }
                    }
                    clock = at;
                    if pick_revive {
                        revive_at = None;
                        if crashed.is_some() {
                            let mut fresh = Simulator::from_arc(arc.clone(), NullHost);
                            configure(&mut fresh);
                            // carry the clock forward before boot so the
                            // previous life's timers do not replay
                            if let Err(e) = fresh.machine_mut().go_time(at, &mut NullHost) {
                                return Err(e.to_string());
                            }
                            sim = fresh;
                            if let Some(c) = crashed.take() {
                                first_crash.get_or_insert(c);
                            }
                            boots += 1;
                            eprintln!("ceuc: machine rebooted at {at}us (boot #{boots})");
                            if let Err(e) = sim.start() {
                                note_crash(&mut crashed, at, e.to_string());
                            }
                        }
                    } else {
                        match faults[fault_idx].cmd {
                            FaultCmd::Crash => {
                                if crashed.is_none() {
                                    note_crash(&mut crashed, at, "fault-injected crash".into());
                                }
                            }
                            FaultCmd::Reboot { delay_us } => {
                                if crashed.is_none() {
                                    note_crash(&mut crashed, at, "fault-injected reboot".into());
                                }
                                revive_at = Some(at + delay_us.max(1));
                            }
                        }
                        fault_idx += 1;
                    }
                }
                if crashed.is_none() {
                    if let Err(e) = sim.advance_to(target) {
                        note_crash(&mut crashed, sim.machine().now(), e.to_string());
                    }
                }
                clock = target;
            }
            "async" => {
                let n: usize = it
                    .next()
                    .unwrap_or("1000")
                    .parse()
                    .map_err(|_| err(lineno, "bad slice count"))?;
                if crashed.is_some() {
                    down_note("`async`");
                } else if let Err(e) = sim.run_asyncs(n) {
                    note_crash(&mut crashed, sim.machine().now(), e.to_string());
                }
            }
            "print" => {
                let name = it.next().ok_or_else(|| err(lineno, "print needs a variable"))?;
                if crashed.is_some() {
                    down_note(&format!("`print {name}`"));
                    continue;
                }
                let unique = names
                    .iter()
                    .find(|n| n.split('#').next() == Some(name))
                    .ok_or_else(|| err(lineno, &format!("no variable `{name}`")))?;
                match sim.read_var(unique) {
                    Some(v) => println!("{name} = {v}"),
                    None => return Err(err(lineno, "variable not readable")),
                }
            }
            other => return Err(err(lineno, &format!("unknown directive `{other}`"))),
        }
        if crashed.is_none() && sim.status().is_terminated() {
            break;
        }
    }
    if let Some(sink) = sink {
        sink.lock().unwrap().finish();
    }
    if opts.metrics {
        match sim.metrics() {
            Some(m) => {
                println!("--- metrics ---");
                print!("{}", m.summary());
            }
            None => eprintln!("ceuc: metrics unavailable (machine never booted cleanly)"),
        }
    }
    if let Some(path) = &opts.metrics_out {
        match sim.metrics() {
            Some(m) => std::fs::write(path, m.to_json() + "\n")
                .map_err(|e| format!("cannot write {path}: {e}"))?,
            None => eprintln!("ceuc: metrics unavailable; {path} not written"),
        }
    }
    if opts.profile {
        let machine = sim.machine();
        match machine.profile() {
            Some(profile) => {
                println!("--- profile (hot statements) ---");
                print!(
                    "{}",
                    ceu::runtime::render_hot_statements(src, &machine.program().debug, profile, 10)
                );
            }
            None => eprintln!("ceuc: profile unavailable (machine never booted cleanly)"),
        }
    }
    if let (Some(path), Some(bb)) = (&opts.blackbox, &blackbox) {
        if let Some((at, cause)) = crashed.as_ref().or(first_crash.as_ref()) {
            write_blackbox_dump(path, &bb.lock().unwrap(), *at, cause, boots)?;
            eprintln!("ceuc: black-box dump written to {path}");
        }
    }
    // The deadline outranks the other outcomes: scripts bounding hostile
    // programs need one unambiguous code for "it ran too long".
    if deadline_hit {
        return Ok(ExitCode::from(3));
    }
    if let Some((at, cause)) = &crashed {
        println!("crashed at {at}us: {cause}");
        return Ok(ExitCode::from(2));
    }
    match sim.status() {
        ceu::Status::Terminated(Some(v)) => println!("terminated: {v}"),
        ceu::Status::Terminated(None) => println!("terminated"),
        ceu::Status::Running => println!("still reactive"),
    }
    Ok(ExitCode::SUCCESS)
}

fn err(lineno: usize, msg: &str) -> String {
    format!("script line {}: {msg}", lineno + 1)
}

//! `ceuc` — the Céu compiler driver.
//!
//! ```text
//! ceuc check   <file.ceu>             # parse + analyses, report diagnostics
//! ceuc fmt     <file.ceu>             # canonical formatting to stdout
//! ceuc emit-c  <file.ceu>             # generated C (paper §4.4) to stdout
//! ceuc dfa     <file.ceu>             # temporal-analysis DFA as Graphviz dot
//! ceuc flow    <file.ceu>             # flow graph as Graphviz dot
//! ceuc report  <file.ceu>             # ROM/RAM memory report (Table 1 analog)
//! ceuc run     <file.ceu> [script]    # execute with a scripted input sequence
//! ```
//!
//! Run scripts are plain text, one directive per line:
//!
//! ```text
//! event Restart 42      # emit input event (optional value)
//! time  100ms           # advance wall-clock time
//! async 1000            # run up to N async slices
//! print v               # print a variable (by source name)
//! ```

use ceu::runtime::{NullHost, Value};
use ceu::{Compiler, Simulator};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ceuc: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let (cmd, file) = match args {
        [cmd, file, ..] => (cmd.as_str(), file.as_str()),
        _ => {
            return Err("usage: ceuc <check|fmt|emit-c|dfa|flow|report|run> <file.ceu> [script]".into())
        }
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let compiler = Compiler::new();
    match cmd {
        "check" => {
            compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{file}: ok (bounded, deterministic)");
            Ok(())
        }
        "fmt" => {
            let ast = ceu::parser::parse(&src).map_err(|e| e.to_string())?;
            print!("{}", ceu::ast::pretty(&ast));
            Ok(())
        }
        "emit-c" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::codegen::cbackend::emit_c(&p));
            Ok(())
        }
        "dfa" => {
            let (p, dfa) = compiler.analyze(&src).map_err(|e| e.to_string())?;
            for c in &dfa.conflicts {
                eprintln!("{c}");
            }
            println!("{}", ceu::analysis::dfa::to_dot(&dfa, &p));
            Ok(())
        }
        "flow" => {
            let p = Compiler::unchecked().compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::analysis::flowgraph::to_dot(&p));
            Ok(())
        }
        "report" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let r = ceu::codegen::memory_report(&p);
            println!("ROM (generated C bytes): {}", r.rom_bytes);
            println!("RAM (static state bytes): {}", r.ram_bytes);
            println!("tracks: {}  gates: {}  data slots: {}  instructions: {}", r.tracks, r.gates, r.data_slots, r.instrs);
            Ok(())
        }
        "run" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let script = match args.get(2) {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => String::new(),
            };
            exec_script(p, &script)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn exec_script(p: ceu::CompiledProgram, script: &str) -> Result<(), String> {
    // map original names to unique slots for `print`
    let names: Vec<String> = p.slots.iter().map(|s| s.name.clone()).collect();
    let mut sim = Simulator::new(p, NullHost);
    sim.start().map_err(|e| e.to_string())?;
    for (lineno, line) in script.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let word = it.next().unwrap();
        let res = match word {
            "event" => {
                let name = it.next().ok_or_else(|| err(lineno, "event needs a name"))?;
                let value = it
                    .next()
                    .map(|v| v.parse::<i64>().map(Value::Int))
                    .transpose()
                    .map_err(|_| err(lineno, "event value must be an integer"))?;
                sim.event(name, value).map(|_| ()).map_err(|e| e.to_string())
            }
            "time" => {
                let t = it.next().ok_or_else(|| err(lineno, "time needs a duration"))?;
                let us = ceu::ast::TimeSpec::parse(t)
                    .map(|t| t.us)
                    .or_else(|| t.parse::<u64>().ok())
                    .ok_or_else(|| err(lineno, "bad duration"))?;
                sim.advance_by(us).map(|_| ()).map_err(|e| e.to_string())
            }
            "async" => {
                let n: usize = it
                    .next()
                    .unwrap_or("1000")
                    .parse()
                    .map_err(|_| err(lineno, "bad slice count"))?;
                sim.run_asyncs(n).map(|_| ()).map_err(|e| e.to_string())
            }
            "print" => {
                let name = it.next().ok_or_else(|| err(lineno, "print needs a variable"))?;
                let unique = names
                    .iter()
                    .find(|n| n.split('#').next() == Some(name))
                    .ok_or_else(|| err(lineno, &format!("no variable `{name}`")))?;
                match sim.read_var(unique) {
                    Some(v) => {
                        println!("{name} = {v}");
                        Ok(())
                    }
                    None => Err(err(lineno, "variable not readable")),
                }
            }
            other => Err(err(lineno, &format!("unknown directive `{other}`"))),
        };
        res?;
        if sim.status().is_terminated() {
            break;
        }
    }
    match sim.status() {
        ceu::Status::Terminated(Some(v)) => println!("terminated: {v}"),
        ceu::Status::Terminated(None) => println!("terminated"),
        ceu::Status::Running => println!("still reactive"),
    }
    Ok(())
}

fn err(lineno: usize, msg: &str) -> String {
    format!("script line {}: {msg}", lineno + 1)
}

//! `ceuc` — the Céu compiler driver.
//!
//! ```text
//! ceuc check   <file.ceu>             # parse + analyses, report diagnostics
//! ceuc fmt     <file.ceu>             # canonical formatting to stdout
//! ceuc emit-c  <file.ceu>             # generated C (paper §4.4) to stdout
//! ceuc dfa     <file.ceu>             # temporal-analysis DFA as Graphviz dot
//! ceuc flow    <file.ceu>             # flow graph as Graphviz dot
//! ceuc report  <file.ceu>             # ROM/RAM memory report (Table 1 analog)
//! ceuc run     <file.ceu> [script]    # execute with a scripted input sequence
//! ```
//!
//! All subcommands that compile accept `-O` (optimize; the default) and
//! `--no-opt` (skip the flat-code optimizer pass — the ablation baseline
//! the benchmark harness measures against).
//!
//! `run` accepts observability flags (anywhere after the subcommand):
//!
//! ```text
//! --trace[=FMT]        trace execution; FMT is text (default), jsonl,
//!                      or chrome/perfetto (a Chrome trace-event JSON
//!                      array for ui.perfetto.dev)
//! --trace-out PATH     write the trace to PATH instead of stderr
//! --metrics            print the metrics summary after the run
//! --metrics-out PATH   write the metrics snapshot as JSON to PATH
//! --profile            per-block execution profile, rendered as hot
//!                      statements against the original source
//! --max-reaction-us N  watchdog: abort reactions over N µs wall time
//! --max-tracks N       watchdog: abort reactions over N tracks
//! ```
//!
//! Run scripts are plain text, one directive per line:
//!
//! ```text
//! event Restart 42      # emit input event (optional value)
//! time  100ms           # advance wall-clock time
//! async 1000            # run up to N async slices
//! print v               # print a variable (by source name)
//! ```

use ceu::runtime::telemetry::TraceFormat;
use ceu::runtime::{NullHost, Value};
use ceu::{Compiler, Simulator};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("ceuc: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Observability options for `ceuc run`.
#[derive(Default)]
struct RunOpts {
    trace: Option<TraceFormat>,
    trace_out: Option<String>,
    metrics: bool,
    /// Write the metrics snapshot (JSON) to this path after the run.
    metrics_out: Option<String>,
    /// Per-block profile, rendered as hot statements against the source.
    profile: bool,
    max_reaction_us: Option<u64>,
    max_tracks: Option<u32>,
    /// Evaluate expressions by walking the IR trees instead of the flat
    /// postfix code (ablation / differential debugging).
    tree_eval: bool,
    /// Skip the flat-code optimizer pass (`--no-opt`; `-O` restores the
    /// default). Ablation baseline for the benchmark harness.
    no_opt: bool,
}

/// Splits `--flag`-style options out of argv (valid anywhere), leaving
/// the positionals (`cmd file [script]`) in order.
fn parse_flags(args: &[String]) -> Result<(Vec<String>, RunOpts), String> {
    let mut pos = Vec::new();
    let mut opts = RunOpts::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => opts.trace = Some(opts.trace.unwrap_or(TraceFormat::Text)),
            "--metrics" => opts.metrics = true,
            "--profile" => opts.profile = true,
            "--tree-eval" => opts.tree_eval = true,
            "-O" => opts.no_opt = false,
            "--no-opt" => opts.no_opt = true,
            "--metrics-out" => {
                let path = it.next().ok_or("--metrics-out needs a path")?;
                opts.metrics_out = Some(path.clone());
            }
            "--trace-out" => {
                let path = it.next().ok_or("--trace-out needs a path")?;
                opts.trace_out = Some(path.clone());
                opts.trace = Some(opts.trace.unwrap_or(TraceFormat::Text));
            }
            "--max-reaction-us" => {
                let n = it.next().ok_or("--max-reaction-us needs a number")?;
                opts.max_reaction_us =
                    Some(n.parse().map_err(|_| "--max-reaction-us: bad number")?);
            }
            "--max-tracks" => {
                let n = it.next().ok_or("--max-tracks needs a number")?;
                opts.max_tracks = Some(n.parse().map_err(|_| "--max-tracks: bad number")?);
            }
            other if other.starts_with("--trace=") => {
                let fmt = &other["--trace=".len()..];
                opts.trace = Some(fmt.parse()?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag `{other}`"));
            }
            _ => pos.push(a.clone()),
        }
    }
    Ok((pos, opts))
}

fn run(args: &[String]) -> Result<(), String> {
    let (pos, opts) = parse_flags(args)?;
    let (cmd, file) = match pos.as_slice() {
        [cmd, file, ..] => (cmd.as_str(), file.as_str()),
        _ => {
            return Err("usage: ceuc <check|fmt|emit-c|dfa|flow|report|run> <file.ceu> [script] [-O|--no-opt] [--trace[=fmt]] [--trace-out PATH] [--metrics] [--metrics-out PATH] [--profile] [--tree-eval] [--max-reaction-us N] [--max-tracks N]".into())
        }
    };
    let src = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let compiler = if opts.no_opt { ceu::Compiler::unoptimized() } else { Compiler::new() };
    match cmd {
        "check" => {
            compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{file}: ok (bounded, deterministic)");
            Ok(())
        }
        "fmt" => {
            let ast = ceu::parser::parse(&src).map_err(|e| e.to_string())?;
            print!("{}", ceu::ast::pretty(&ast));
            Ok(())
        }
        "emit-c" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::codegen::cbackend::emit_c(&p));
            Ok(())
        }
        "dfa" => {
            let (p, dfa) = compiler.analyze(&src).map_err(|e| e.to_string())?;
            for c in &dfa.conflicts {
                eprintln!("{c}");
            }
            println!("{}", ceu::analysis::dfa::to_dot(&dfa, &p));
            Ok(())
        }
        "flow" => {
            let p = Compiler::unchecked().compile(&src).map_err(|e| e.to_string())?;
            println!("{}", ceu::analysis::flowgraph::to_dot(&p));
            Ok(())
        }
        "report" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let r = ceu::codegen::memory_report(&p);
            println!("ROM (generated C bytes): {}", r.rom_bytes);
            println!("RAM (static state bytes): {}", r.ram_bytes);
            println!(
                "tracks: {}  gates: {}  data slots: {}  instructions: {}",
                r.tracks, r.gates, r.data_slots, r.instrs
            );
            Ok(())
        }
        "run" => {
            let p = compiler.compile(&src).map_err(|e| e.to_string())?;
            let script = match pos.get(2) {
                Some(path) => {
                    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
                }
                None => String::new(),
            };
            exec_script(p, &src, &script, &opts)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn exec_script(
    p: ceu::CompiledProgram,
    src: &str,
    script: &str,
    opts: &RunOpts,
) -> Result<(), String> {
    // map original names to unique slots for `print`
    let names: Vec<String> = p.slots.iter().map(|s| s.name.clone()).collect();
    let mut sim = Simulator::new(p, NullHost);
    sim.machine_mut().use_tree_eval = opts.tree_eval;
    if opts.profile {
        sim.machine_mut().enable_profiling();
    }

    let sink = match opts.trace {
        Some(fmt) => {
            let out: Box<dyn std::io::Write + Send> = match &opts.trace_out {
                Some(path) => Box::new(std::io::BufWriter::new(
                    std::fs::File::create(path)
                        .map_err(|e| format!("cannot create {path}: {e}"))?,
                )),
                None => Box::new(std::io::stderr()),
            };
            let (sink, tracer) = fmt.build(out);
            sim.set_tracer(tracer);
            Some(sink)
        }
        None => None,
    };
    if opts.metrics || opts.metrics_out.is_some() {
        sim.enable_metrics();
    }
    if opts.max_reaction_us.is_some() || opts.max_tracks.is_some() {
        sim.set_reaction_limits(opts.max_reaction_us, opts.max_tracks);
    }

    sim.start().map_err(|e| e.to_string())?;
    for (lineno, line) in script.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let word = it.next().unwrap();
        let res = match word {
            "event" => {
                let name = it.next().ok_or_else(|| err(lineno, "event needs a name"))?;
                let value = it
                    .next()
                    .map(|v| v.parse::<i64>().map(Value::Int))
                    .transpose()
                    .map_err(|_| err(lineno, "event value must be an integer"))?;
                sim.event(name, value).map(|_| ()).map_err(|e| e.to_string())
            }
            "time" => {
                let t = it.next().ok_or_else(|| err(lineno, "time needs a duration"))?;
                let us = ceu::ast::TimeSpec::parse(t)
                    .map(|t| t.us)
                    .or_else(|| t.parse::<u64>().ok())
                    .ok_or_else(|| err(lineno, "bad duration"))?;
                sim.advance_by(us).map(|_| ()).map_err(|e| e.to_string())
            }
            "async" => {
                let n: usize = it
                    .next()
                    .unwrap_or("1000")
                    .parse()
                    .map_err(|_| err(lineno, "bad slice count"))?;
                sim.run_asyncs(n).map(|_| ()).map_err(|e| e.to_string())
            }
            "print" => {
                let name = it.next().ok_or_else(|| err(lineno, "print needs a variable"))?;
                let unique = names
                    .iter()
                    .find(|n| n.split('#').next() == Some(name))
                    .ok_or_else(|| err(lineno, &format!("no variable `{name}`")))?;
                match sim.read_var(unique) {
                    Some(v) => {
                        println!("{name} = {v}");
                        Ok(())
                    }
                    None => Err(err(lineno, "variable not readable")),
                }
            }
            other => Err(err(lineno, &format!("unknown directive `{other}`"))),
        };
        res?;
        if sim.status().is_terminated() {
            break;
        }
    }
    if let Some(sink) = sink {
        sink.lock().unwrap().finish();
    }
    if opts.metrics {
        let m = sim.metrics().expect("metrics enabled").clone();
        println!("--- metrics ---");
        print!("{}", m.summary());
    }
    if let Some(path) = &opts.metrics_out {
        let m = sim.metrics().expect("metrics enabled");
        std::fs::write(path, m.to_json() + "\n")
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if opts.profile {
        let machine = sim.machine();
        let profile = machine.profile().expect("profiling enabled");
        println!("--- profile (hot statements) ---");
        print!(
            "{}",
            ceu::runtime::render_hot_statements(src, &machine.program().debug, profile, 10)
        );
    }
    match sim.status() {
        ceu::Status::Terminated(Some(v)) => println!("terminated: {v}"),
        ceu::Status::Terminated(None) => println!("terminated"),
        ceu::Status::Running => println!("still reactive"),
    }
    Ok(())
}

fn err(lineno: usize, msg: &str) -> String {
    format!("script line {}: {msg}", lineno + 1)
}

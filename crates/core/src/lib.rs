//! # ceu — *Céu: Embedded, Safe, and Reactive Programming*, in Rust
//!
//! This crate is the facade of a full reproduction of the Céu language
//! (Sant'Anna, Rodriguez, Ierusalimschy): a synchronous reactive language
//! for embedded systems with parallel trail compositions, first-class
//! wall-clock time, internal events with stack policy, compile-time
//! bounded-execution and determinism analyses, and asynchronous blocks
//! that enable simulating programs in the language itself.
//!
//! ## Quick start
//!
//! ```
//! use ceu::{Compiler, Simulator};
//! use ceu::runtime::{NullHost, Value, Status};
//!
//! let program = Compiler::new()
//!     .compile(
//!         "input int Tick;
//!          int total = 0;
//!          loop do
//!             int t = await Tick;
//!             total = total + t;
//!             if total >= 10 then
//!                break;
//!             end
//!          end
//!          return total;",
//!     )
//!     .unwrap();
//!
//! let mut sim = Simulator::new(program, NullHost);
//! sim.start().unwrap();
//! for _ in 0..4 {
//!     sim.event("Tick", Some(Value::Int(3))).unwrap();
//! }
//! assert_eq!(sim.status(), Status::Terminated(Some(12)));
//! ```
//!
//! The pipeline is: parse (`ceu-parser`) → desugar/resolve (`ceu-ast`) →
//! bounded-execution check and DFA temporal analysis (`ceu-analysis`) →
//! track/gate code generation (`ceu-codegen`) → execution on the
//! synchronous VM (`ceu-runtime`).

pub mod compiler;
pub mod simulator;

pub use compiler::{CompileOptions, Compiler, Error};
pub use simulator::Simulator;

/// Re-exports of the component crates, for direct access.
pub use ceu_analysis as analysis;
pub use ceu_ast as ast;
pub use ceu_codegen as codegen;
pub use ceu_parser as parser;
pub use ceu_runtime as runtime;

pub use ceu_codegen::CompiledProgram;
pub use ceu_runtime::{Host, Machine, NullHost, RecordingHost, Status, Value};

//! CLI-level tests for `ceuc run --deadline-ms`: exceeding the budget is
//! exit code 3 (distinct from 1 = usage/compile and 2 = crashed), and a
//! comfortable budget leaves a normal run untouched.

use std::io::Write;
use std::process::Command;

const PROG: &str = "input int Tick;
    int n = 0;
    loop do
        await Tick;
        n = n + 1;
        if n >= 3 then break; end
    end
    return n;";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("ceuc-deadline-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

#[test]
fn deadline_exceeded_exits_3() {
    let prog = write_tmp("prog.ceu", PROG);
    let script = write_tmp("script.txt", "event Tick 1\nevent Tick 1\nevent Tick 1\n");
    // A zero budget expires before the first directive: deterministic 3.
    let out = Command::new(env!("CARGO_BIN_EXE_ceuc"))
        .args(["run", prog.to_str().unwrap(), script.to_str().unwrap(), "--deadline-ms", "0"])
        .output()
        .expect("run ceuc");
    assert_eq!(out.status.code(), Some(3), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--deadline-ms"),
        "deadline exit must say why"
    );
}

#[test]
fn generous_deadline_does_not_disturb_the_run() {
    let prog = write_tmp("prog-ok.ceu", PROG);
    let script = write_tmp("script-ok.txt", "event Tick 1\nevent Tick 1\nevent Tick 1\n");
    let out = Command::new(env!("CARGO_BIN_EXE_ceuc"))
        .args(["run", prog.to_str().unwrap(), script.to_str().unwrap(), "--deadline-ms", "60000"])
        .output()
        .expect("run ceuc");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("terminated: 3"));
}

#[test]
fn deadline_flag_wants_a_number() {
    let prog = write_tmp("prog-bad.ceu", PROG);
    let out = Command::new(env!("CARGO_BIN_EXE_ceuc"))
        .args(["run", prog.to_str().unwrap(), "--deadline-ms", "soon"])
        .output()
        .expect("run ceuc");
    assert_eq!(out.status.code(), Some(1));
}

//! Expressions, with C's operator set and precedence.

use crate::span::Span;
use crate::types::Type;
use std::fmt;

/// Unary operators (`UNOP` in the grammar).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// `!e`
    Not,
    /// `&e` — address of a Céu variable.
    Addr,
    /// `-e`
    Neg,
    /// `+e`
    Plus,
    /// `~e`
    BitNot,
    /// `*e` — pointer dereference.
    Deref,
}

impl UnOp {
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Not => "!",
            UnOp::Addr => "&",
            UnOp::Neg => "-",
            UnOp::Plus => "+",
            UnOp::BitNot => "~",
            UnOp::Deref => "*",
        }
    }
}

/// Binary operators (`BINOP` in the grammar), excluding `.`/`->` which are
/// represented structurally as [`ExprKind::Field`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    Or,
    And,
    BitOr,
    BitXor,
    BitAnd,
    Ne,
    Eq,
    Le,
    Ge,
    Lt,
    Gt,
    Shl,
    Shr,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Or => "||",
            BinOp::And => "&&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::BitAnd => "&",
            BinOp::Ne => "!=",
            BinOp::Eq => "==",
            BinOp::Le => "<=",
            BinOp::Ge => ">=",
            BinOp::Lt => "<",
            BinOp::Gt => ">",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
        }
    }

    /// C precedence level; higher binds tighter.
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::BitOr => 3,
            BinOp::BitXor => 4,
            BinOp::BitAnd => 5,
            BinOp::Eq | BinOp::Ne => 6,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge => 7,
            BinOp::Shl | BinOp::Shr => 8,
            BinOp::Add | BinOp::Sub => 9,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 10,
        }
    }
}

/// An expression with its source position.
#[derive(Clone, PartialEq, Debug)]
pub struct Expr {
    pub span: Span,
    pub kind: ExprKind,
}

#[derive(Clone, PartialEq, Debug)]
pub enum ExprKind {
    /// Integer literal.
    Num(i64),
    /// String literal (passed through to the host / C backend).
    Str(String),
    /// Character literal, e.g. `'#'`.
    Chr(char),
    /// The `null` keyword.
    Null,
    /// A Céu variable (lowercase identifier).
    Var(String),
    /// A C symbol: written `_name`, stored *without* the underscore (the
    /// paper: "repassed as is to the C compiler (removing the underscore)").
    CSym(String),
    Unop(UnOp, Box<Expr>),
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `callee(args…)`
    Call(Box<Expr>, Vec<Expr>),
    /// `<type> e`
    Cast(Type, Box<Expr>),
    /// `sizeof <type>`
    SizeOf(Type),
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`).
    Field(Box<Expr>, String, bool),
}

impl Expr {
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { span, kind }
    }

    pub fn num(n: i64, span: Span) -> Self {
        Expr::new(ExprKind::Num(n), span)
    }

    pub fn var(name: impl Into<String>, span: Span) -> Self {
        Expr::new(ExprKind::Var(name.into()), span)
    }

    pub fn csym(name: impl Into<String>, span: Span) -> Self {
        Expr::new(ExprKind::CSym(name.into()), span)
    }

    /// `true` if this expression is a plain variable reference.
    pub fn as_var(&self) -> Option<&str> {
        match &self.kind {
            ExprKind::Var(v) => Some(v),
            _ => None,
        }
    }

    /// Walks the expression tree bottom-up.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        match &self.kind {
            ExprKind::Unop(_, e) | ExprKind::Cast(_, e) => e.walk(f),
            ExprKind::Binop(_, a, b) | ExprKind::Index(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            ExprKind::Call(c, args) => {
                c.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            ExprKind::Field(b, _, _) => b.walk(f),
            _ => {}
        }
        f(self);
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        crate::printer::write_expr(f, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_matches_c() {
        assert!(BinOp::Mul.precedence() > BinOp::Add.precedence());
        assert!(BinOp::Add.precedence() > BinOp::Shl.precedence());
        assert!(BinOp::Lt.precedence() > BinOp::Eq.precedence());
        assert!(BinOp::BitAnd.precedence() > BinOp::BitXor.precedence());
        assert!(BinOp::And.precedence() > BinOp::Or.precedence());
    }

    #[test]
    fn walk_visits_all_subexpressions() {
        let s = Span::new(1, 1);
        let e = Expr::new(
            ExprKind::Binop(
                BinOp::Add,
                Box::new(Expr::num(1, s)),
                Box::new(Expr::new(
                    ExprKind::Call(Box::new(Expr::csym("f", s)), vec![Expr::var("x", s)]),
                    s,
                )),
            ),
            s,
        );
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 5);
    }
}

//! Generic statement walker used by the analysis and codegen phases.

use crate::stmt::{AssignRhs, Block, Stmt, StmtKind};

/// Calls `f` on every statement of `block`, pre-order, descending into all
/// nested blocks (including blocks in assignment right-hand sides).
pub fn walk_stmts<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        f(stmt);
        each_child_block(stmt, &mut |b| walk_stmts(b, f));
    }
}

/// Invokes `f` on every directly nested block of `stmt`.
pub fn each_child_block<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Block)) {
    match &stmt.kind {
        StmtKind::If { then_blk, else_blk, .. } => {
            f(then_blk);
            if let Some(e) = else_blk {
                f(e);
            }
        }
        StmtKind::Loop { body }
        | StmtKind::DoBlock { body }
        | StmtKind::Async { body }
        | StmtKind::Suspend { body, .. } => f(body),
        StmtKind::Par { arms, .. } => {
            for a in arms {
                f(a);
            }
        }
        StmtKind::Assign { rhs, .. } => match rhs {
            AssignRhs::Par(_, arms) => {
                for a in arms {
                    f(a);
                }
            }
            AssignRhs::Do(b) | AssignRhs::Async(b) => f(b),
            _ => {}
        },
        StmtKind::VarDecl { vars, .. } => {
            for v in vars {
                match &v.init {
                    Some(AssignRhs::Par(_, arms)) => {
                        for a in arms {
                            f(a);
                        }
                    }
                    Some(AssignRhs::Do(b)) | Some(AssignRhs::Async(b)) => f(b),
                    _ => {}
                }
            }
        }
        _ => {}
    }
}

/// Mutable variant of [`each_child_block`].
pub fn each_child_block_mut(stmt: &mut Stmt, f: &mut impl FnMut(&mut Block)) {
    match &mut stmt.kind {
        StmtKind::If { then_blk, else_blk, .. } => {
            f(then_blk);
            if let Some(e) = else_blk {
                f(e);
            }
        }
        StmtKind::Loop { body }
        | StmtKind::DoBlock { body }
        | StmtKind::Async { body }
        | StmtKind::Suspend { body, .. } => f(body),
        StmtKind::Par { arms, .. } => {
            for a in arms {
                f(a);
            }
        }
        StmtKind::Assign { rhs, .. } => match rhs {
            AssignRhs::Par(_, arms) => {
                for a in arms {
                    f(a);
                }
            }
            AssignRhs::Do(b) | AssignRhs::Async(b) => f(b),
            _ => {}
        },
        StmtKind::VarDecl { vars, .. } => {
            for v in vars {
                match &mut v.init {
                    Some(AssignRhs::Par(_, arms)) => {
                        for a in arms {
                            f(a);
                        }
                    }
                    Some(AssignRhs::Do(b)) | Some(AssignRhs::Async(b)) => f(b),
                    _ => {}
                }
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::stmt::ParKind;

    fn s(kind: StmtKind) -> Stmt {
        Stmt::new(kind, Span::new(1, 1))
    }

    #[test]
    fn walks_nested_par_arms() {
        let block = Block::new(vec![s(StmtKind::Par {
            kind: ParKind::Or,
            arms: vec![
                Block::new(vec![s(StmtKind::Break)]),
                Block::new(vec![s(StmtKind::Loop {
                    body: Block::new(vec![s(StmtKind::Nothing)]),
                })]),
            ],
        })]);
        let mut n = 0;
        walk_stmts(&block, &mut |_| n += 1);
        assert_eq!(n, 4);
    }
}

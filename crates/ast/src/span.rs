//! Source locations and node identity.

use std::fmt;

/// A position in the source text (1-based line and column).
///
/// Céu programs are small (embedded targets), so a start position is enough
/// for good diagnostics; we do not track byte ranges.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub const fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Stable identity of a statement, assigned in pre-order by [`crate::number`].
///
/// Flow-graph nodes, gates, and memory slots are all keyed by `NodeId`, so
/// diagnostics from any phase can be mapped back to a source span.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Id carried by freshly parsed statements, before [`crate::number`].
    pub const UNNUMBERED: NodeId = NodeId(u32::MAX);

    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(NodeId(12).to_string(), "n12");
    }

    #[test]
    fn unnumbered_is_distinct() {
        assert_ne!(NodeId::UNNUMBERED, NodeId(0));
    }
}

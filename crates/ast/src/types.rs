//! Céu types.
//!
//! Céu's type grammar is `ID_type`, i.e. any identifier, optionally with
//! pointer stars (used in the paper as `_message_t* msg`). The language
//! itself only interprets `int` and `void`; everything else is an opaque
//! "C type" handed to the host.

use std::fmt;

/// A (possibly pointered) type name.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Type {
    /// Type name as written, without pointer stars (e.g. `int`, `_message_t`).
    pub name: String,
    /// Number of `*` suffixes.
    pub ptr: u8,
}

impl Type {
    pub fn new(name: impl Into<String>, ptr: u8) -> Self {
        Type { name: name.into(), ptr }
    }

    pub fn int() -> Self {
        Type::new("int", 0)
    }

    pub fn void() -> Self {
        Type::new("void", 0)
    }

    /// `true` for plain `void` (valueless events).
    pub fn is_void(&self) -> bool {
        self.ptr == 0 && self.name == "void"
    }

    /// `true` if values of this type occupy a data slot (anything but `void`).
    pub fn has_value(&self) -> bool {
        !self.is_void()
    }

    /// `true` for types the Céu compiler interprets natively.
    pub fn is_native(&self) -> bool {
        self.ptr > 0 || matches!(self.name.as_str(), "int" | "void" | "u8" | "u16" | "u32")
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)?;
        for _ in 0..self.ptr {
            write!(f, "*")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_stars() {
        assert_eq!(Type::new("_message_t", 1).to_string(), "_message_t*");
        assert_eq!(Type::int().to_string(), "int");
    }

    #[test]
    fn void_classification() {
        assert!(Type::void().is_void());
        assert!(!Type::new("void", 1).is_void());
        assert!(Type::new("void", 1).has_value());
        assert!(!Type::void().has_value());
    }

    #[test]
    fn native_types() {
        assert!(Type::int().is_native());
        assert!(Type::new("int", 2).is_native());
        assert!(!Type::new("_message_t", 0).is_native());
    }
}

//! Abstract syntax tree for the Céu language.
//!
//! This crate defines the data structures shared by the parser
//! (`ceu-parser`), the temporal analysis (`ceu-analysis`) and the
//! compiler back end (`ceu-codegen`). It intentionally has no
//! dependencies: the AST is the lingua franca of the whole workspace.
//!
//! The grammar implemented is the one of Appendix A of the paper
//! *Céu: Embedded, Safe, and Reactive Programming*. Statements carry a
//! [`Span`] for diagnostics and a [`NodeId`] assigned by [`number`], which
//! downstream phases use as a stable key for flow-graph nodes, gates and
//! memory slots.

pub mod desugar;
pub mod expr;
pub mod printer;
pub mod resolve;
pub mod span;
pub mod stmt;
pub mod time;
pub mod types;
pub mod visit;

pub use desugar::desugar;
pub use expr::{BinOp, Expr, ExprKind, UnOp};
pub use printer::pretty;
pub use resolve::{
    CAnnotations, EventId, EventInfo, EventKind, EventTable, ResolveError, Resolved, VarInfo,
};
pub use span::{NodeId, Span};
pub use stmt::{AssignRhs, Block, ParKind, Program, Stmt, StmtKind, VarDef};
pub use time::TimeSpec;
pub use types::Type;

/// Assigns a unique [`NodeId`] (pre-order) to every statement of a program.
///
/// Parsing produces statements with `NodeId::UNNUMBERED`; every compiler
/// phase after parsing requires numbered nodes (see [`desugar::desugar`]
/// for the companion pass). Returns the total number of
/// nodes, i.e. ids are `0..returned`.
pub fn number(program: &mut Program) -> u32 {
    let mut next = 0u32;
    number_block(&mut program.block, &mut next);
    next
}

fn number_block(block: &mut Block, next: &mut u32) {
    for stmt in &mut block.stmts {
        number_stmt(stmt, next);
    }
}

fn number_stmt(stmt: &mut Stmt, next: &mut u32) {
    stmt.id = NodeId(*next);
    *next += 1;
    match &mut stmt.kind {
        StmtKind::If { then_blk, else_blk, .. } => {
            number_block(then_blk, next);
            if let Some(e) = else_blk {
                number_block(e, next);
            }
        }
        StmtKind::Loop { body }
        | StmtKind::DoBlock { body }
        | StmtKind::Async { body }
        | StmtKind::Suspend { body, .. } => number_block(body, next),
        StmtKind::Par { arms, .. } => {
            for arm in arms {
                number_block(arm, next);
            }
        }
        StmtKind::Assign { rhs, .. } => match rhs {
            AssignRhs::Par(_, arms) => {
                for arm in arms {
                    number_block(arm, next);
                }
            }
            AssignRhs::Do(b) | AssignRhs::Async(b) => number_block(b, next),
            _ => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn stmt(kind: StmtKind) -> Stmt {
        Stmt { id: NodeId::UNNUMBERED, span: Span::new(1, 1), kind }
    }

    #[test]
    fn numbering_is_preorder_and_dense() {
        let mut p = Program {
            block: Block {
                stmts: vec![
                    stmt(StmtKind::Nothing),
                    stmt(StmtKind::Loop { body: Block { stmts: vec![stmt(StmtKind::Break)] } }),
                    stmt(StmtKind::Nothing),
                ],
            },
        };
        let n = number(&mut p);
        assert_eq!(n, 4);
        assert_eq!(p.block.stmts[0].id, NodeId(0));
        assert_eq!(p.block.stmts[1].id, NodeId(1));
        match &p.block.stmts[1].kind {
            StmtKind::Loop { body } => assert_eq!(body.stmts[0].id, NodeId(2)),
            _ => unreachable!(),
        }
        assert_eq!(p.block.stmts[2].id, NodeId(3));
    }

    #[test]
    fn numbering_descends_into_assign_rhs() {
        let mut p = Program {
            block: Block {
                stmts: vec![stmt(StmtKind::Assign {
                    lhs: Expr::var("v", Span::new(1, 1)),
                    rhs: AssignRhs::Par(
                        ParKind::Par,
                        vec![
                            Block { stmts: vec![stmt(StmtKind::Break)] },
                            Block { stmts: vec![stmt(StmtKind::Nothing)] },
                        ],
                    ),
                })],
            },
        };
        assert_eq!(number(&mut p), 3);
    }
}

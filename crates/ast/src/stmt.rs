//! Statements and program structure.

use crate::expr::Expr;
use crate::span::{NodeId, Span};
use crate::time::TimeSpec;
use crate::types::Type;

/// A whole Céu program: one top-level block.
#[derive(Clone, PartialEq, Debug)]
pub struct Program {
    pub block: Block,
}

/// A sequence of statements (`Block ::= (Stmt ';')+`).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

/// The three parallel composition statements (§2.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ParKind {
    /// `par` — never rejoins.
    Par,
    /// `par/and` — rejoins when *all* arms terminate.
    And,
    /// `par/or` — rejoins when *any* arm terminates, killing the siblings.
    Or,
}

impl ParKind {
    pub fn keyword(self) -> &'static str {
        match self {
            ParKind::Par => "par",
            ParKind::And => "par/and",
            ParKind::Or => "par/or",
        }
    }
}

/// One variable in a declaration: `int[10] keys` or `int v = <rhs>`.
#[derive(Clone, PartialEq, Debug)]
pub struct VarDef {
    pub name: String,
    /// Array length if declared `ID_type [NUM] name`.
    pub array: Option<u32>,
    /// Optional initialiser (a full `SetExp`: expression, await or block).
    pub init: Option<AssignRhs>,
}

/// Right-hand side of an assignment (`SetExp` in the grammar).
///
/// Céu allows awaiting and whole blocks in value position:
/// `v = await Restart`, `win = par do … return 1 … end`,
/// `ret = async do … end`.
#[derive(Clone, PartialEq, Debug)]
pub enum AssignRhs {
    Expr(Expr),
    /// `= await Event`
    AwaitEvt(String),
    /// `= await 10ms`
    AwaitTime(TimeSpec),
    /// `= await (Exp)` — expression timeout in microseconds.
    AwaitExpr(Expr),
    /// `= par… do … end` returning via `return`.
    Par(ParKind, Vec<Block>),
    /// `= do … end` returning via `return`.
    Do(Block),
    /// `= async do … end` returning via `return`.
    Async(Block),
}

/// A statement: a source span, a stable [`NodeId`], and the actual kind.
#[derive(Clone, PartialEq, Debug)]
pub struct Stmt {
    pub id: NodeId,
    pub span: Span,
    pub kind: StmtKind,
}

impl Stmt {
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { id: NodeId::UNNUMBERED, span, kind }
    }
}

#[derive(Clone, PartialEq, Debug)]
pub enum StmtKind {
    /// `nothing`
    Nothing,
    /// `input int A, B;` — external input event declaration.
    InputDecl { ty: Type, names: Vec<String> },
    /// `internal void changed;` — internal event declaration.
    InternalDecl { ty: Type, names: Vec<String> },
    /// `output int A;` — output event declaration (the paper's
    /// future-work extension for multi-process GALS composition).
    OutputDecl { ty: Type, names: Vec<String> },
    /// `int v = 0, w;` / `int[10] keys;`
    VarDecl { ty: Type, vars: Vec<VarDef> },
    /// `C do … end` — raw C passed to the C backend.
    CBlock { code: String },
    /// `pure _f, _g;`
    Pure { names: Vec<String> },
    /// `deterministic _f, _g;` — one compatibility set per statement.
    Deterministic { names: Vec<String> },
    /// `await Event;` (external or internal, resolved by the analysis).
    AwaitEvt { name: String },
    /// `await 1s;`
    AwaitTime { time: TimeSpec },
    /// `await (Exp);` — µs timeout computed at runtime.
    AwaitExpr { us: Expr },
    /// `await forever;`
    AwaitForever,
    /// `emit evt;` / `emit evt = Exp;` (internal, or external from async).
    EmitEvt { name: String, value: Option<Expr> },
    /// `emit 10ms;` — only legal inside `async` (simulation, §2.8).
    EmitTime { time: TimeSpec },
    /// `if … then … (else …)? end`
    If { cond: Expr, then_blk: Block, else_blk: Option<Block> },
    /// `loop do … end`
    Loop { body: Block },
    /// `break`
    Break,
    /// `par… do … with … end`
    Par { kind: ParKind, arms: Vec<Block> },
    /// A call in statement position: `_f(x);` or `call Exp;`.
    Call { expr: Expr },
    /// `lhs = rhs;`
    Assign { lhs: Expr, rhs: AssignRhs },
    /// `return Exp;` — escapes the enclosing value block / terminates the
    /// program at top level.
    Return { value: Option<Expr> },
    /// `do … end`
    DoBlock { body: Block },
    /// `suspend e do … end` — extension (Esterel's suspend, which the
    /// paper says it is "considering to incorporate"): while the guard
    /// event's last value is truthy, the body is frozen — its trails see
    /// no events and its timers stop counting.
    Suspend { event: String, body: Block },
    /// `async do … end`
    Async { body: Block },
}

impl StmtKind {
    /// `true` for declaration-only statements that generate no control flow.
    pub fn is_decl(&self) -> bool {
        matches!(
            self,
            StmtKind::InputDecl { .. }
                | StmtKind::InternalDecl { .. }
                | StmtKind::OutputDecl { .. }
                | StmtKind::CBlock { .. }
                | StmtKind::Pure { .. }
                | StmtKind::Deterministic { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_keywords() {
        assert_eq!(ParKind::Par.keyword(), "par");
        assert_eq!(ParKind::And.keyword(), "par/and");
        assert_eq!(ParKind::Or.keyword(), "par/or");
    }

    #[test]
    fn decl_classification() {
        assert!(StmtKind::Pure { names: vec![] }.is_decl());
        assert!(!StmtKind::Break.is_decl());
        // VarDecl is *not* a pure declaration: initialisers execute.
        assert!(!StmtKind::VarDecl { ty: Type::int(), vars: vec![] }.is_decl());
    }
}

//! Name resolution and semantic validation.
//!
//! * **Events** are collected into a flat [`EventTable`]; awaits/emits are
//!   checked against it.
//! * **Variables** are alpha-renamed to unique names (`name#k`) according to
//!   Céu's block scoping (each `do`, loop body, par arm and `if` branch is a
//!   scope; shadowing is allowed; declaration precedes use). After this
//!   pass, a variable name identifies its storage globally, which is what
//!   the memory-layout and temporal-analysis phases key on.
//! * **Async restrictions** (§2.7): inside `async` blocks there are no
//!   parallel compositions, no awaits, no internal events, and no
//!   assignments to variables declared outside the async.
//! * **C annotations** (`pure` / `deterministic`) are collected for the
//!   temporal analysis.
//!
//! Run [`crate::desugar::desugar`] first; initialisers still present on declarations
//! are rejected here.

use crate::expr::{Expr, ExprKind};
use crate::span::Span;
use crate::stmt::{AssignRhs, Block, Program, Stmt, StmtKind};
use crate::types::Type;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A semantic error with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolveError {
    pub span: Span,
    pub message: String,
}

impl ResolveError {
    fn new(span: Span, message: impl Into<String>) -> Self {
        ResolveError { span, message: message.into() }
    }
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ResolveError {}

type Result<T> = std::result::Result<T, ResolveError>;

/// Identifies an event in the [`EventTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct EventId(pub u16);

impl EventId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Event direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// `input` — arrives from the environment.
    Input,
    /// `internal` — trail-to-trail, stack policy.
    Internal,
    /// `output` — leaves towards the environment (future-work extension:
    /// multi-process GALS composition).
    Output,
}

/// One declared event.
#[derive(Clone, Debug)]
pub struct EventInfo {
    pub name: String,
    pub kind: EventKind,
    pub ty: Type,
    pub span: Span,
}

impl EventInfo {
    /// `true` for input events (historical name from the paper's text).
    pub fn external(&self) -> bool {
        self.kind == EventKind::Input
    }
}

/// All declared events, external and internal.
#[derive(Clone, Debug, Default)]
pub struct EventTable {
    pub events: Vec<EventInfo>,
    by_name: HashMap<String, EventId>,
}

impl EventTable {
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.by_name.get(name).copied()
    }

    pub fn get(&self, id: EventId) -> &EventInfo {
        &self.events[id.index()]
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterator over `(id, info)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, &EventInfo)> {
        self.events.iter().enumerate().map(|(i, e)| (EventId(i as u16), e))
    }

    fn insert(&mut self, info: EventInfo) -> Result<EventId> {
        if self.by_name.contains_key(&info.name) {
            return Err(ResolveError::new(
                info.span,
                format!("event `{}` declared twice", info.name),
            ));
        }
        let id = EventId(self.events.len() as u16);
        self.by_name.insert(info.name.clone(), id);
        self.events.push(info);
        Ok(id)
    }
}

/// One declared variable (after alpha-renaming).
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Unique name (`original#k`) — this is what `Var` nodes now carry.
    pub unique: String,
    /// Name as written in the source.
    pub original: String,
    pub ty: Type,
    /// Array length, if an array.
    pub array: Option<u32>,
    pub span: Span,
    /// Which async block (by numbering order) declared it, if any.
    pub async_id: Option<u32>,
}

/// `pure` / `deterministic` annotations (names without the underscore).
#[derive(Clone, Debug, Default)]
pub struct CAnnotations {
    pub pure: HashSet<String>,
    /// Each `deterministic` statement declares one compatibility clique.
    pub cliques: Vec<HashSet<String>>,
}

impl CAnnotations {
    /// May C functions `f` and `g` run concurrently?
    pub fn compatible(&self, f: &str, g: &str) -> bool {
        self.pure.contains(f)
            || self.pure.contains(g)
            || self.cliques.iter().any(|c| c.contains(f) && c.contains(g))
    }
}

/// Output of [`resolve`].
#[derive(Clone, Debug)]
pub struct Resolved {
    /// Alpha-renamed program (still structurally identical).
    pub program: Program,
    pub events: EventTable,
    pub vars: Vec<VarInfo>,
    pub annotations: CAnnotations,
    /// Number of `async` blocks found, in numbering order.
    pub async_count: u32,
}

impl Resolved {
    pub fn var(&self, unique: &str) -> Option<&VarInfo> {
        self.vars.iter().find(|v| v.unique == unique)
    }
}

struct Ctx {
    events: EventTable,
    vars: Vec<VarInfo>,
    annotations: CAnnotations,
    scopes: Vec<HashMap<String, usize>>,
    /// `Some(async id)` while inside an `async` body.
    in_async: Option<u32>,
    async_count: u32,
    loop_depth: u32,
}

/// Resolves a desugared program. Consumes and returns the program with
/// variables alpha-renamed.
pub fn resolve(mut program: Program) -> Result<Resolved> {
    let mut ctx = Ctx {
        events: EventTable::default(),
        vars: Vec::new(),
        annotations: CAnnotations::default(),
        scopes: vec![HashMap::new()],
        in_async: None,
        async_count: 0,
        loop_depth: 0,
    };
    // Events and annotations are global: collect them up front so forward
    // references parse (the paper always declares first, but e.g. the
    // simulation template awaits events declared inside the wrapped code).
    collect_globals(&program.block, &mut ctx)?;
    resolve_block(&mut program.block, &mut ctx)?;
    Ok(Resolved {
        program,
        events: ctx.events,
        vars: ctx.vars,
        annotations: ctx.annotations,
        async_count: ctx.async_count,
    })
}

fn collect_globals(block: &Block, ctx: &mut Ctx) -> Result<()> {
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::InputDecl { ty, names } => {
                for n in names {
                    ctx.events.insert(EventInfo {
                        name: n.clone(),
                        kind: EventKind::Input,
                        ty: ty.clone(),
                        span: stmt.span,
                    })?;
                }
            }
            StmtKind::InternalDecl { ty, names } => {
                for n in names {
                    ctx.events.insert(EventInfo {
                        name: n.clone(),
                        kind: EventKind::Internal,
                        ty: ty.clone(),
                        span: stmt.span,
                    })?;
                }
            }
            StmtKind::OutputDecl { ty, names } => {
                for n in names {
                    ctx.events.insert(EventInfo {
                        name: n.clone(),
                        kind: EventKind::Output,
                        ty: ty.clone(),
                        span: stmt.span,
                    })?;
                }
            }
            StmtKind::Pure { names } => {
                ctx.annotations.pure.extend(names.iter().cloned());
            }
            StmtKind::Deterministic { names } => {
                ctx.annotations.cliques.push(names.iter().cloned().collect());
            }
            _ => {}
        }
        let mut children: Vec<&Block> = Vec::new();
        crate::visit::each_child_block(stmt, &mut |b| children.push(b));
        for b in children {
            collect_globals(b, ctx)?;
        }
    }
    Ok(())
}

fn resolve_block(block: &mut Block, ctx: &mut Ctx) -> Result<()> {
    ctx.scopes.push(HashMap::new());
    let r = resolve_stmts(block, ctx);
    ctx.scopes.pop();
    r
}

fn resolve_stmts(block: &mut Block, ctx: &mut Ctx) -> Result<()> {
    for stmt in &mut block.stmts {
        resolve_stmt(stmt, ctx)?;
    }
    Ok(())
}

fn resolve_stmt(stmt: &mut Stmt, ctx: &mut Ctx) -> Result<()> {
    let span = stmt.span;
    match &mut stmt.kind {
        StmtKind::Nothing
        | StmtKind::Break
        | StmtKind::CBlock { .. }
        | StmtKind::Pure { .. }
        | StmtKind::Deterministic { .. }
        | StmtKind::InputDecl { .. }
        | StmtKind::InternalDecl { .. }
        | StmtKind::OutputDecl { .. }
        | StmtKind::AwaitForever => {
            if matches!(stmt.kind, StmtKind::Break) && ctx.loop_depth == 0 {
                return Err(ResolveError::new(span, "`break` outside of a loop"));
            }
            if matches!(stmt.kind, StmtKind::AwaitForever) && ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
        }
        StmtKind::VarDecl { ty, vars } => {
            for v in vars.iter_mut() {
                if v.init.is_some() {
                    return Err(ResolveError::new(
                        span,
                        "internal error: declaration initialisers must be desugared first",
                    ));
                }
                let idx = ctx.vars.len();
                let unique = format!("{}#{}", v.name, idx);
                ctx.vars.push(VarInfo {
                    unique: unique.clone(),
                    original: v.name.clone(),
                    ty: ty.clone(),
                    array: v.array,
                    span,
                    async_id: ctx.in_async,
                });
                ctx.scopes.last_mut().unwrap().insert(v.name.clone(), idx);
                v.name = unique;
            }
        }
        StmtKind::AwaitEvt { name } => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
            match ctx.events.lookup(name) {
                None => return Err(ResolveError::new(span, format!("undeclared event `{name}`"))),
                Some(eid) if ctx.events.get(eid).kind == EventKind::Output => {
                    return Err(ResolveError::new(
                        span,
                        format!("output event `{name}` cannot be awaited"),
                    ))
                }
                _ => {}
            }
        }
        StmtKind::AwaitTime { .. } => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
        }
        StmtKind::AwaitExpr { us } => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
            resolve_expr(us, ctx)?;
        }
        StmtKind::EmitEvt { name, value } => {
            let Some(eid) = ctx.events.lookup(name) else {
                return Err(ResolveError::new(span, format!("undeclared event `{name}`")));
            };
            let info = ctx.events.get(eid);
            match (info.kind, ctx.in_async.is_some()) {
                (EventKind::Input, false) => {
                    return Err(ResolveError::new(
                        span,
                        format!(
                            "input event `{name}` can only be emitted from inside `async` \
                             (declare an `output` event to talk to the environment)"
                        ),
                    ))
                }
                (EventKind::Internal, true) => {
                    return Err(ResolveError::new(
                        span,
                        "internal events cannot be manipulated inside `async`",
                    ))
                }
                _ => {}
            }
            if info.ty.has_value() && value.is_none() {
                return Err(ResolveError::new(
                    span,
                    format!("event `{name}` carries a value; use `emit {name} = …`"),
                ));
            }
            if info.ty.is_void() && value.is_some() {
                return Err(ResolveError::new(
                    span,
                    format!("event `{name}` is void and carries no value"),
                ));
            }
            if let Some(v) = value {
                resolve_expr(v, ctx)?;
            }
        }
        StmtKind::EmitTime { .. } => {
            if ctx.in_async.is_none() {
                return Err(ResolveError::new(
                    span,
                    "time can only be emitted from inside `async` (simulation)",
                ));
            }
        }
        StmtKind::If { cond, then_blk, else_blk } => {
            resolve_expr(cond, ctx)?;
            resolve_block(then_blk, ctx)?;
            if let Some(e) = else_blk {
                resolve_block(e, ctx)?;
            }
        }
        StmtKind::Loop { body } => {
            ctx.loop_depth += 1;
            let r = resolve_block(body, ctx);
            ctx.loop_depth -= 1;
            r?;
        }
        StmtKind::Par { arms, .. } => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(
                    span,
                    "parallel compositions are not allowed inside `async`",
                ));
            }
            for arm in arms {
                resolve_block(arm, ctx)?;
            }
        }
        StmtKind::Call { expr } => resolve_expr(expr, ctx)?,
        StmtKind::Assign { lhs, rhs } => {
            resolve_expr(lhs, ctx)?;
            check_async_assignment(lhs, span, ctx)?;
            resolve_rhs(rhs, span, ctx)?;
        }
        StmtKind::Return { value } => {
            if let Some(v) = value {
                resolve_expr(v, ctx)?;
            }
        }
        StmtKind::DoBlock { body } => resolve_block(body, ctx)?,
        StmtKind::Suspend { event, body } => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`suspend` is not allowed inside `async`"));
            }
            let Some(eid) = ctx.events.lookup(event) else {
                return Err(ResolveError::new(span, format!("undeclared event `{event}`")));
            };
            let info = ctx.events.get(eid);
            if info.kind == EventKind::Output {
                return Err(ResolveError::new(
                    span,
                    format!("output event `{event}` cannot guard a suspend"),
                ));
            }
            if !info.ty.has_value() {
                return Err(ResolveError::new(
                    span,
                    format!(
                        "suspend guard `{event}` must carry a value (0 resumes, nonzero pauses)"
                    ),
                ));
            }
            resolve_block(body, ctx)?;
        }
        StmtKind::Async { body } => {
            enter_async(body, span, ctx)?;
        }
    }
    Ok(())
}

fn resolve_rhs(rhs: &mut AssignRhs, span: Span, ctx: &mut Ctx) -> Result<()> {
    match rhs {
        AssignRhs::Expr(e) => resolve_expr(e, ctx),
        AssignRhs::AwaitEvt(name) => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
            let Some(eid) = ctx.events.lookup(name) else {
                return Err(ResolveError::new(span, format!("undeclared event `{name}`")));
            };
            if ctx.events.get(eid).kind == EventKind::Output {
                return Err(ResolveError::new(
                    span,
                    format!("output event `{name}` cannot be awaited"),
                ));
            }
            if ctx.events.get(eid).ty.is_void() {
                return Err(ResolveError::new(
                    span,
                    format!("event `{name}` is void and yields no value"),
                ));
            }
            Ok(())
        }
        AssignRhs::AwaitTime(_) => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
            Ok(())
        }
        AssignRhs::AwaitExpr(e) => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(span, "`await` is not allowed inside `async`"));
            }
            resolve_expr(e, ctx)
        }
        AssignRhs::Par(_, arms) => {
            if ctx.in_async.is_some() {
                return Err(ResolveError::new(
                    span,
                    "parallel compositions are not allowed inside `async`",
                ));
            }
            for arm in arms {
                resolve_block(arm, ctx)?;
            }
            Ok(())
        }
        AssignRhs::Do(b) => resolve_block(b, ctx),
        AssignRhs::Async(b) => enter_async(b, span, ctx),
    }
}

fn enter_async(body: &mut Block, span: Span, ctx: &mut Ctx) -> Result<()> {
    if ctx.in_async.is_some() {
        return Err(ResolveError::new(span, "`async` blocks cannot nest"));
    }
    let id = ctx.async_count;
    ctx.async_count += 1;
    ctx.in_async = Some(id);
    let saved_loops = std::mem::take(&mut ctx.loop_depth);
    let r = resolve_block(body, ctx);
    ctx.loop_depth = saved_loops;
    ctx.in_async = None;
    r
}

/// §2.7: asyncs "cannot assign to variables defined in outer blocks".
fn check_async_assignment(lhs: &Expr, span: Span, ctx: &Ctx) -> Result<()> {
    let Some(async_id) = ctx.in_async else { return Ok(()) };
    // find the root variable of the place expression
    let mut e = lhs;
    loop {
        match &e.kind {
            ExprKind::Index(b, _) | ExprKind::Field(b, _, _) => e = b,
            ExprKind::Var(unique) => {
                let var = ctx
                    .vars
                    .iter()
                    .find(|v| v.unique == *unique)
                    .expect("lhs resolved before check");
                if var.async_id != Some(async_id) {
                    return Err(ResolveError::new(
                        span,
                        format!(
                            "`async` cannot assign to `{}`, declared outside the async block",
                            var.original
                        ),
                    ));
                }
                return Ok(());
            }
            // writes through pointers / C globals are the programmer's "C hat"
            _ => return Ok(()),
        }
    }
}

fn resolve_expr(e: &mut Expr, ctx: &mut Ctx) -> Result<()> {
    let span = e.span;
    match &mut e.kind {
        ExprKind::Var(name) => {
            for scope in ctx.scopes.iter().rev() {
                if let Some(&idx) = scope.get(name.as_str()) {
                    *name = ctx.vars[idx].unique.clone();
                    return Ok(());
                }
            }
            Err(ResolveError::new(span, format!("undeclared variable `{name}`")))
        }
        ExprKind::Unop(_, a) | ExprKind::Cast(_, a) | ExprKind::Field(a, _, _) => {
            resolve_expr(a, ctx)
        }
        ExprKind::Binop(_, a, b) | ExprKind::Index(a, b) => {
            resolve_expr(a, ctx)?;
            resolve_expr(b, ctx)
        }
        ExprKind::Call(c, args) => {
            resolve_expr(c, ctx)?;
            for a in args {
                resolve_expr(a, ctx)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

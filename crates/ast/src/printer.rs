//! Pretty-printer: renders an AST back to Céu source.
//!
//! Used for diagnostics and for parser round-trip tests
//! (`parse(pretty(parse(s))) == parse(s)`).

use crate::expr::{Expr, ExprKind};
use crate::stmt::{AssignRhs, Block, Program, Stmt, StmtKind};
use std::fmt::{self, Write as _};

/// Renders a whole program.
pub fn pretty(program: &Program) -> String {
    let mut out = String::new();
    write_block(&mut out, &program.block, 0);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("   ");
    }
}

fn write_block(out: &mut String, block: &Block, level: usize) {
    for stmt in &block.stmts {
        write_stmt(out, stmt, level);
    }
}

fn write_stmt(out: &mut String, stmt: &Stmt, level: usize) {
    indent(out, level);
    match &stmt.kind {
        StmtKind::Nothing => out.push_str("nothing;\n"),
        StmtKind::InputDecl { ty, names } => {
            let _ = writeln!(out, "input {ty} {};", names.join(", "));
        }
        StmtKind::InternalDecl { ty, names } => {
            let _ = writeln!(out, "internal {ty} {};", names.join(", "));
        }
        StmtKind::OutputDecl { ty, names } => {
            let _ = writeln!(out, "output {ty} {};", names.join(", "));
        }
        StmtKind::VarDecl { ty, vars } => {
            let _ = write!(out, "{ty}");
            if let Some(n) = vars.first().and_then(|v| v.array) {
                let _ = write!(out, "[{n}]");
            }
            let mut first = true;
            for v in vars {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, " {}", v.name);
                if let Some(init) = &v.init {
                    out.push_str(" = ");
                    write_rhs(out, init, level);
                }
            }
            out.push_str(";\n");
        }
        StmtKind::CBlock { code } => {
            let _ = writeln!(out, "C do{code}end;");
        }
        StmtKind::Pure { names } => {
            let _ = writeln!(out, "pure {};", csyms(names));
        }
        StmtKind::Deterministic { names } => {
            let _ = writeln!(out, "deterministic {};", csyms(names));
        }
        StmtKind::AwaitEvt { name } => {
            let _ = writeln!(out, "await {name};");
        }
        StmtKind::AwaitTime { time } => {
            let _ = writeln!(out, "await {time};");
        }
        StmtKind::AwaitExpr { us } => {
            let _ = writeln!(out, "await ({us});");
        }
        StmtKind::AwaitForever => out.push_str("await forever;\n"),
        StmtKind::EmitEvt { name, value } => match value {
            Some(v) => {
                let _ = writeln!(out, "emit {name} = {v};");
            }
            None => {
                let _ = writeln!(out, "emit {name};");
            }
        },
        StmtKind::EmitTime { time } => {
            let _ = writeln!(out, "emit {time};");
        }
        StmtKind::If { cond, then_blk, else_blk } => {
            let _ = writeln!(out, "if {cond} then");
            write_block(out, then_blk, level + 1);
            if let Some(e) = else_blk {
                indent(out, level);
                out.push_str("else\n");
                write_block(out, e, level + 1);
            }
            indent(out, level);
            out.push_str("end;\n");
        }
        StmtKind::Loop { body } => {
            out.push_str("loop do\n");
            write_block(out, body, level + 1);
            indent(out, level);
            out.push_str("end;\n");
        }
        StmtKind::Break => out.push_str("break;\n"),
        StmtKind::Par { kind, arms } => {
            let _ = writeln!(out, "{} do", kind.keyword());
            write_arms(out, arms, level);
            indent(out, level);
            out.push_str("end;\n");
        }
        StmtKind::Call { expr } => {
            let _ = writeln!(out, "call {expr};");
        }
        StmtKind::Assign { lhs, rhs } => {
            let _ = write!(out, "{lhs} = ");
            write_rhs(out, rhs, level);
            out.push_str(";\n");
        }
        StmtKind::Return { value } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {v};");
            }
            None => out.push_str("return;\n"),
        },
        StmtKind::DoBlock { body } => {
            out.push_str("do\n");
            write_block(out, body, level + 1);
            indent(out, level);
            out.push_str("end;\n");
        }
        StmtKind::Suspend { event, body } => {
            let _ = writeln!(out, "suspend {event} do");
            write_block(out, body, level + 1);
            indent(out, level);
            out.push_str("end;\n");
        }
        StmtKind::Async { body } => {
            out.push_str("async do\n");
            write_block(out, body, level + 1);
            indent(out, level);
            out.push_str("end;\n");
        }
    }
}

fn write_arms(out: &mut String, arms: &[Block], level: usize) {
    let mut first = true;
    for arm in arms {
        if !first {
            indent(out, level);
            out.push_str("with\n");
        }
        first = false;
        write_block(out, arm, level + 1);
    }
}

fn write_rhs(out: &mut String, rhs: &AssignRhs, level: usize) {
    match rhs {
        AssignRhs::Expr(e) => {
            let _ = write!(out, "{e}");
        }
        AssignRhs::AwaitEvt(name) => {
            let _ = write!(out, "await {name}");
        }
        AssignRhs::AwaitTime(t) => {
            let _ = write!(out, "await {t}");
        }
        AssignRhs::AwaitExpr(e) => {
            let _ = write!(out, "await ({e})");
        }
        AssignRhs::Par(kind, arms) => {
            let _ = writeln!(out, "{} do", kind.keyword());
            write_arms(out, arms, level + 1);
            indent(out, level + 1);
            out.push_str("end");
        }
        AssignRhs::Do(b) => {
            out.push_str("do\n");
            write_block(out, b, level + 1);
            indent(out, level + 1);
            out.push_str("end");
        }
        AssignRhs::Async(b) => {
            out.push_str("async do\n");
            write_block(out, b, level + 1);
            indent(out, level + 1);
            out.push_str("end");
        }
    }
}

fn csyms(names: &[String]) -> String {
    names.iter().map(|n| format!("_{n}")).collect::<Vec<_>>().join(", ")
}

/// Writes one expression, fully parenthesising nested binops (safe and
/// round-trip stable; we do not try to minimise parentheses).
pub fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr) -> fmt::Result {
    match &e.kind {
        ExprKind::Num(n) => write!(f, "{n}"),
        ExprKind::Str(s) => write!(f, "{:?}", s),
        ExprKind::Chr(c) => write!(f, "'{c}'"),
        ExprKind::Null => write!(f, "null"),
        ExprKind::Var(v) => write!(f, "{v}"),
        ExprKind::CSym(c) => write!(f, "_{c}"),
        ExprKind::Unop(op, a) => write!(f, "{}({a})", op.symbol()),
        ExprKind::Binop(op, a, b) => write!(f, "({a} {} {b})", op.symbol()),
        ExprKind::Index(b, i) => write!(f, "{b}[{i}]"),
        ExprKind::Call(c, args) => {
            write!(f, "{c}(")?;
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")
        }
        ExprKind::Cast(t, a) => write!(f, "<{t}> ({a})"),
        ExprKind::SizeOf(t) => write!(f, "sizeof<{t}>"),
        ExprKind::Field(b, name, arrow) => {
            write!(f, "{b}{}{name}", if *arrow { "->" } else { "." })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::types::Type;

    #[test]
    fn prints_simple_program() {
        let s = Span::new(1, 1);
        let p = Program {
            block: Block::new(vec![
                Stmt::new(StmtKind::InputDecl { ty: Type::int(), names: vec!["A".into()] }, s),
                Stmt::new(
                    StmtKind::Loop {
                        body: Block::new(vec![Stmt::new(
                            StmtKind::AwaitEvt { name: "A".into() },
                            s,
                        )]),
                    },
                    s,
                ),
            ]),
        };
        let text = pretty(&p);
        assert!(text.contains("input int A;"));
        assert!(text.contains("loop do"));
        assert!(text.contains("await A;"));
        assert!(text.contains("end;"));
    }

    #[test]
    fn csym_prefixed_on_print() {
        let s = Span::new(1, 1);
        let e = Expr::csym("printf", s);
        assert_eq!(e.to_string(), "_printf");
    }
}

//! Wall-clock time literals.
//!
//! The paper's grammar:
//!
//! ```text
//! TIME ::= (NUM h)? (NUM min)? (NUM s)? (NUM ms)? (NUM us)?   (at least one)
//! ```
//!
//! Time is canonicalised to microseconds, the finest unit the language
//! exposes. All runtime timer arithmetic is done in µs.

use std::fmt;

/// Microseconds per unit, largest first (the grammar's fixed unit order).
pub const UNITS: [(&str, u64); 5] =
    [("h", 3_600_000_000), ("min", 60_000_000), ("s", 1_000_000), ("ms", 1_000), ("us", 1)];

/// A wall-clock duration, canonicalised to microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimeSpec {
    pub us: u64,
}

impl TimeSpec {
    pub const fn from_us(us: u64) -> Self {
        TimeSpec { us }
    }

    pub const fn from_ms(ms: u64) -> Self {
        TimeSpec { us: ms * 1_000 }
    }

    pub const fn from_secs(s: u64) -> Self {
        TimeSpec { us: s * 1_000_000 }
    }

    /// Parses a compound literal body such as `1h35min` or `500ms`.
    ///
    /// Units must appear in decreasing order, each at most once. Returns
    /// `None` on malformed input (the lexer produces a diagnostic).
    pub fn parse(text: &str) -> Option<Self> {
        let bytes = text.as_bytes();
        let mut i = 0usize;
        let mut next_unit = 0usize; // index into UNITS: forces decreasing order
        let mut total: u64 = 0;
        let mut any = false;
        while i < bytes.len() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
            if i == start {
                return None; // expected a number
            }
            let num: u64 = text[start..i].parse().ok()?;
            // `min`/`ms` share a prefix with nothing else; match greedily on
            // the remaining allowed units (largest first).
            let mut matched = None;
            for (k, &(unit, scale)) in UNITS.iter().enumerate().skip(next_unit) {
                if text[i..].starts_with(unit) {
                    // `m` alone is not a unit; `min` vs `ms` are disambiguated
                    // by full-prefix match plus the next char not extending a
                    // longer unit name ("ms" won't match where "min" is written
                    // because 'i' != 's').
                    matched = Some((k, unit.len(), scale));
                    break;
                }
            }
            let (k, len, scale) = matched?;
            total = total.checked_add(num.checked_mul(scale)?)?;
            next_unit = k + 1;
            i += len;
            any = true;
        }
        if any {
            Some(TimeSpec { us: total })
        } else {
            None
        }
    }
}

impl fmt::Display for TimeSpec {
    /// Renders back to the most compact compound literal, e.g. `1h35min`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.us == 0 {
            return write!(f, "0us");
        }
        let mut rest = self.us;
        let mut wrote = false;
        for &(unit, scale) in &UNITS {
            let n = rest / scale;
            if n > 0 {
                write!(f, "{n}{unit}")?;
                rest -= n * scale;
                wrote = true;
            }
        }
        debug_assert!(wrote);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_literals() {
        assert_eq!(TimeSpec::parse("1s"), Some(TimeSpec::from_secs(1)));
        assert_eq!(TimeSpec::parse("100ms"), Some(TimeSpec::from_ms(100)));
        assert_eq!(TimeSpec::parse("1us"), Some(TimeSpec::from_us(1)));
        assert_eq!(TimeSpec::parse("10min"), Some(TimeSpec::from_us(600_000_000)));
        assert_eq!(
            TimeSpec::parse("1h35min"),
            Some(TimeSpec::from_us(3_600_000_000 + 35 * 60_000_000))
        );
        assert_eq!(TimeSpec::parse("50ms"), Some(TimeSpec::from_ms(50)));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(TimeSpec::parse(""), None);
        assert_eq!(TimeSpec::parse("ms"), None);
        assert_eq!(TimeSpec::parse("5"), None);
        assert_eq!(TimeSpec::parse("5x"), None);
        // wrong unit order
        assert_eq!(TimeSpec::parse("5ms1s"), None);
        // repeated unit
        assert_eq!(TimeSpec::parse("1s1s"), None);
    }

    #[test]
    fn display_roundtrips() {
        for text in ["1s", "100ms", "1h35min", "10min", "1us", "2h3min4s5ms6us"] {
            let t = TimeSpec::parse(text).unwrap();
            assert_eq!(t.to_string(), text);
            assert_eq!(TimeSpec::parse(&t.to_string()), Some(t));
        }
    }

    #[test]
    fn display_zero() {
        assert_eq!(TimeSpec::from_us(0).to_string(), "0us");
    }
}

//! AST desugaring.
//!
//! One transform: variable-declaration initialisers are split into a bare
//! declaration followed by an assignment, so that every *await point* in the
//! program is a statement (`StmtKind::Await*` or `StmtKind::Assign` with an
//! awaiting right-hand side). Downstream phases (codegen, temporal
//! analysis) then never have to look inside `VarDef::init`.
//!
//! ```text
//! int a = await A;     ⇒     int a;  a = await A;
//! int x = 1, y = f();  ⇒     int x, y;  x = 1;  y = f();
//! ```
//!
//! The program must be re-[`number`](crate::number)ed afterwards; the `ceu`
//! facade does this.

use crate::expr::Expr;
use crate::stmt::{AssignRhs, Block, Stmt, StmtKind};
use crate::visit::each_child_block_mut;

/// Splits every initialised declaration in the program into decl + assign.
pub fn desugar(program: &mut crate::stmt::Program) {
    desugar_block(&mut program.block);
}

fn desugar_block(block: &mut Block) {
    let mut out = Vec::with_capacity(block.stmts.len());
    for mut stmt in std::mem::take(&mut block.stmts) {
        // recurse first so nested blocks (including rhs blocks) are handled
        each_child_block_mut(&mut stmt, &mut |b| desugar_block(b));
        let span = stmt.span;
        if let StmtKind::VarDecl { vars, .. } = &mut stmt.kind {
            let inits: Vec<(String, AssignRhs)> = vars
                .iter_mut()
                .filter_map(|v| v.init.take().map(|init| (v.name.clone(), init)))
                .collect();
            out.push(stmt);
            for (name, rhs) in inits {
                out.push(Stmt::new(StmtKind::Assign { lhs: Expr::var(name, span), rhs }, span));
            }
        } else {
            out.push(stmt);
        }
    }
    block.stmts = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;
    use crate::types::Type;
    use crate::{Program, VarDef};

    #[test]
    fn splits_initialisers_in_order() {
        let s = Span::new(1, 1);
        let mut p = Program {
            block: Block::new(vec![Stmt::new(
                StmtKind::VarDecl {
                    ty: Type::int(),
                    vars: vec![
                        VarDef {
                            name: "x".into(),
                            array: None,
                            init: Some(AssignRhs::Expr(Expr::num(1, s))),
                        },
                        VarDef { name: "y".into(), array: None, init: None },
                        VarDef {
                            name: "z".into(),
                            array: None,
                            init: Some(AssignRhs::AwaitEvt("A".into())),
                        },
                    ],
                },
                s,
            )]),
        };
        desugar(&mut p);
        assert_eq!(p.block.stmts.len(), 3);
        match &p.block.stmts[0].kind {
            StmtKind::VarDecl { vars, .. } => {
                assert!(vars.iter().all(|v| v.init.is_none()));
            }
            other => panic!("{other:?}"),
        }
        match &p.block.stmts[1].kind {
            StmtKind::Assign { lhs, rhs: AssignRhs::Expr(_) } => {
                assert_eq!(lhs.as_var(), Some("x"));
            }
            other => panic!("{other:?}"),
        }
        match &p.block.stmts[2].kind {
            StmtKind::Assign { lhs, rhs: AssignRhs::AwaitEvt(e) } => {
                assert_eq!(lhs.as_var(), Some("z"));
                assert_eq!(e, "A");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn recurses_into_nested_blocks() {
        let s = Span::new(1, 1);
        let mut p = Program {
            block: Block::new(vec![Stmt::new(
                StmtKind::Loop {
                    body: Block::new(vec![Stmt::new(
                        StmtKind::VarDecl {
                            ty: Type::int(),
                            vars: vec![VarDef {
                                name: "k".into(),
                                array: None,
                                init: Some(AssignRhs::AwaitEvt("Key".into())),
                            }],
                        },
                        s,
                    )]),
                },
                s,
            )]),
        };
        desugar(&mut p);
        match &p.block.stmts[0].kind {
            StmtKind::Loop { body } => assert_eq!(body.stmts.len(), 2),
            other => panic!("{other:?}"),
        }
    }
}

//! Deeper temporal-analysis scenarios: DFA state structure, cross-reaction
//! par/and flags, async gates, unknown-duration timers, and the extension
//! statements.

use ceu_analysis::{analyze, check_determinism, ConflictKind, DfaOptions, Label};
use ceu_codegen::compile_source;

fn conflicts(src: &str) -> Vec<ceu_analysis::Conflict> {
    check_determinism(&compile_source(src).unwrap_or_else(|e| panic!("{e}")))
}

fn dfa(src: &str) -> ceu_analysis::Dfa {
    analyze(&compile_source(src).unwrap_or_else(|e| panic!("{e}")), &DfaOptions::default())
}

#[test]
fn par_and_flags_are_dfa_state() {
    // arm completions happen in different reactions; the join must be
    // tracked through the flag bits in the state
    let src = r#"
        input void A, B;
        int done;
        par/and do
           await A;
        with
           await B;
        end
        done = 1;
        await forever;
    "#;
    let d = dfa(src);
    assert!(d.deterministic());
    // some states differ only in their flags
    let with_flags = d.states.iter().filter(|s| !s.flags.is_empty()).count();
    assert!(with_flags >= 2, "flag-carrying states: {with_flags}");
}

#[test]
fn async_gates_get_their_own_transitions() {
    let src = r#"
        int r;
        par/or do
           r = async do
              return 1;
           end;
        with
           await 1s;
        end
        return r;
    "#;
    let d = dfa(src);
    assert!(d.deterministic());
    assert!(
        d.transitions.iter().any(|t| matches!(t.label, Label::AsyncDone(_))),
        "async completion must be a DFA transition"
    );
}

#[test]
fn two_unknown_timers_may_coincide() {
    // both loops await computed durations; their C calls may coincide
    let src = r#"
        int a = 5, b = 7;
        par do
           loop do
              await (a * 1000);
              _f();
           end
        with
           loop do
              await (b * 1000);
              _g();
           end
        end
    "#;
    let cs = conflicts(src);
    assert!(cs.iter().any(|c| c.kind == ConflictKind::CCall), "{cs:?}");
    // the pairwise-unknown transition exists
    let d = dfa(src);
    assert!(d.transitions.iter().any(|t| matches!(&t.label, Label::Unknown(gs) if gs.len() == 2)));
}

#[test]
fn annotations_silence_unknown_timer_coincidence() {
    let src = r#"
        deterministic _f, _g;
        int a = 5, b = 7;
        par do
           loop do
              await (a * 1000);
              _f();
           end
        with
           loop do
              await (b * 1000);
              _g();
           end
        end
    "#;
    assert!(conflicts(src).is_empty());
}

#[test]
fn same_function_concurrently_conflicts_unless_pure() {
    let racy = "par/and do\n _log(1);\nwith\n _log(2);\nend";
    let cs = conflicts(racy);
    assert_eq!(cs.len(), 1);
    assert_eq!(cs[0].kind, ConflictKind::CCall);
    assert!(conflicts(&format!("pure _log;\n{racy}")).is_empty());
}

#[test]
fn conflict_metadata_is_usable() {
    let src = "input void A;\nint v;\npar/and do\n await A;\n v = 1;\nwith\n await A;\n v = 2;\nend\nreturn v;";
    let d = dfa(src);
    assert_eq!(d.conflicts.len(), 1);
    let c = &d.conflicts[0];
    assert!(c.state < d.states.len());
    assert!(matches!(c.label, Label::Event(_)));
    assert_eq!(d.conflict_depth(c), Some(1), "first A triggers it");
    // spans point at the two assignments (lines 5 and 8 of the source)
    assert_eq!(c.spans.0.line, 5);
    assert_eq!(c.spans.1.line, 8);
}

#[test]
fn suspend_bodies_are_analyzed_conservatively() {
    // the pause could serialise these, but the analysis ignores pausing
    // (may-analysis): still flagged
    let src = r#"
        input int P;
        input void E;
        int v;
        par do
           suspend P do
              loop do
                 await E;
                 v = 1;
              end
           end
           await forever;
        with
           loop do
              await E;
              v = 2;
           end
        end
    "#;
    let cs = conflicts(src);
    assert_eq!(cs.len(), 1, "{cs:?}");
}

#[test]
fn deterministic_suspend_program_passes() {
    let src = r#"
        input int P;
        input void E;
        int v;
        suspend P do
           loop do
              await E;
              v = v + 1;
           end
        end
    "#;
    assert!(conflicts(src).is_empty());
}

#[test]
fn watchdog_loop_has_small_dfa() {
    let src = r#"
        input void Done;
        loop do
           par/or do
              await Done;
           with
              await 100ms;
           end
        end
    "#;
    let d = dfa(src);
    assert!(d.deterministic());
    assert!(!d.truncated);
    // the configuration recurs: {Done, 100ms} → small machine
    assert!(d.states.len() <= 6, "{} states", d.states.len());
}

#[test]
fn three_phase_timer_cycle_converges() {
    let src = r#"
        int v;
        loop do
           await 10ms;
           v = 1;
           await 20ms;
           v = 2;
           await 30ms;
           v = 3;
        end
    "#;
    let d = dfa(src);
    assert!(d.deterministic());
    assert!(d.states.len() <= 8);
    // relative deadlines appear in the states
    use ceu_analysis::GateSt;
    assert!(d.states.iter().any(|s| s.gates.values().any(|g| matches!(g, GateSt::Time(_)))));
}

#[test]
fn emit_to_self_loop_terminates_analysis() {
    // the guard: a trail that emits an event it later awaits — the
    // abstract execution must not ping-pong forever
    let src = r#"
        input void A;
        internal void e;
        loop do
           await A;
           emit e;
           await e;
        end
    "#;
    let d = dfa(src);
    assert!(!d.truncated, "analysis must converge");
}

#[test]
fn bounded_check_runs_before_dfa_in_pipeline() {
    // a tight loop would hang the abstract execution; the bounded check
    // (run first by the facade) protects it — but even called directly the
    // DFA must bail out via its own limits rather than hang
    let p = compile_source("int v;\nloop do\n v = v + 1;\nend").unwrap();
    let d = analyze(&p, &DfaOptions { max_states: 50, ..Default::default() });
    assert!(d.truncated, "tight loop must trip the step limit, not hang");
}

#[test]
fn discarded_events_self_loop_in_dfa() {
    // an event with no listeners leaves the configuration unchanged:
    // either no transition or a self-loop, never a new state
    let src = "input void A, B;\nloop do\n await A;\nend";
    let d = dfa(src);
    // B never appears as a transition (no gates for it)
    let p = compile_source(src).unwrap();
    let b = p.events.lookup("B").unwrap();
    assert!(d.transitions.iter().all(|t| t.label != Label::Event(b)));
}

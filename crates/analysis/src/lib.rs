//! Céu temporal analysis (§2.5–2.6, §4.1): bounded-execution checking,
//! DFA-based nondeterminism detection (variables, internal events, C calls
//! with `pure`/`deterministic` annotations, wall-clock time), and Graphviz
//! renderings of the flow graph and the DFA.

pub mod bounded;
pub mod dfa;
pub mod flowgraph;

pub use bounded::{check_bounded, TightLoop};
pub use dfa::{
    analyze, check_determinism, Conflict, ConflictKind, Dfa, DfaOptions, GateSt, Label, State,
    Trans,
};

#[cfg(test)]
mod tests {
    use super::*;
    use ceu_codegen::compile_source;

    fn conflicts(src: &str) -> Vec<Conflict> {
        let p = compile_source(src).unwrap_or_else(|e| panic!("compile: {e}"));
        check_determinism(&p)
    }

    fn dfa_of(src: &str) -> (Dfa, ceu_codegen::CompiledProgram) {
        let p = compile_source(src).unwrap_or_else(|e| panic!("compile: {e}"));
        let d = analyze(&p, &DfaOptions::default());
        (d, p)
    }

    #[test]
    fn immediate_concurrent_writes_conflict() {
        // §2.1: "it is easy to write nondeterministic programs"
        let cs = conflicts("int v;\npar/and do\n v = 1;\nwith\n v = 2;\nend\nreturn v;");
        assert_eq!(cs.len(), 1, "{cs:?}");
        assert_eq!(cs[0].kind, ConflictKind::Variable);
        assert!(cs[0].what.contains('v'));
    }

    #[test]
    fn same_value_writes_still_conflict() {
        // the paper's admitted false positive: values are not tracked
        let cs = conflicts("int v;\npar/and do\n v = 1;\nwith\n v = 1;\nend\nreturn v;");
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn different_events_do_not_conflict() {
        // §2.6: A and B can never happen at the same time
        let cs = conflicts(
            "input void A, B;\nint v;\npar/and do\n await A;\n v = 1;\nwith\n await B;\n v = 2;\nend\nreturn v;",
        );
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn paper_dfa_example_conflicts_on_sixth_a() {
        // §2.6 / Figure 2: periods 2 and 3 collide at the 6th occurrence
        let src = r#"
            input void A;
            int v;
            par do
               loop do
                  await A;
                  await A;
                  v = 1;
               end
            with
               loop do
                  await A;
                  await A;
                  await A;
                  v = 2;
               end
            end
        "#;
        let (d, _p) = dfa_of(src);
        assert!(!d.deterministic());
        let c = &d.conflicts[0];
        assert_eq!(c.kind, ConflictKind::Variable);
        assert_eq!(d.conflict_depth(c), Some(6), "conflict must hit on the 6th A");
        // the DFA is finite: lcm(2,3)=6 awaits → a bounded state machine
        assert!(d.states.len() <= 16, "{} states", d.states.len());
        assert!(!d.truncated);
    }

    #[test]
    fn read_write_conflicts_too() {
        let cs = conflicts(
            "input void A;\nint v, w;\npar/and do\n await A;\n v = 1;\nwith\n await A;\n w = v;\nend\nreturn w;",
        );
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].kind, ConflictKind::Variable);
    }

    #[test]
    fn sequenced_timer_chains_are_deterministic() {
        // §2.6: 50+49 < 100 ⇒ deterministic
        let src = r#"
            int v;
            par/or do
                await 50ms;
                await 49ms;
                v = 1;
            with
                await 100ms;
                v = 2;
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn looping_timer_collides_with_longer_timer() {
        // §2.6: 10ms×10 == 100ms ⇒ nondeterministic
        let src = r#"
            int v;
            par/or do
                loop do
                    await 10ms;
                    v = 1;
                end
            with
                await 100ms;
                v = 2;
            end
        "#;
        let (d, _) = dfa_of(src);
        assert!(!d.deterministic());
        assert_eq!(d.conflicts[0].kind, ConflictKind::Variable);
        // ten reactions of the 10ms loop → collision on the 10th
        assert_eq!(d.conflict_depth(&d.conflicts[0]), Some(10));
    }

    #[test]
    fn concurrent_c_calls_conflict_without_annotations() {
        let src = "par/and do\n _led1On();\nwith\n _led2On();\nend";
        let cs = conflicts(src);
        assert_eq!(cs.len(), 1, "{cs:?}");
        assert_eq!(cs[0].kind, ConflictKind::CCall);
    }

    #[test]
    fn deterministic_annotation_allows_concurrent_calls() {
        let src =
            "deterministic _led1On, _led2On;\npar/and do\n _led1On();\nwith\n _led2On();\nend";
        assert!(conflicts(src).is_empty());
    }

    #[test]
    fn pure_annotation_allows_concurrency_with_anything() {
        let src =
            "pure _abs;\nint a, b;\npar/and do\n a = _abs(1);\nwith\n b = _f(2);\nend\nreturn a+b;";
        assert!(conflicts(src).is_empty());
    }

    #[test]
    fn unannotated_against_annotated_still_conflicts() {
        let src = "deterministic _led1On, _led2On;\npar/and do\n _led1On();\nwith\n _other();\nend";
        let cs = conflicts(src);
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn concurrent_emit_emit_conflicts() {
        let src = r#"
            input void A;
            internal void e;
            par do
               loop do
                  await A;
                  emit e;
               end
            with
               loop do
                  await A;
                  emit e;
               end
            with
               loop do
                  await e;
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.iter().any(|c| c.kind == ConflictKind::InternalEvent), "{cs:?}");
    }

    #[test]
    fn emit_vs_concurrent_await_arming_conflicts() {
        // one trail arrives at `await e` while another emits e, in the same
        // reaction: catching the emit depends on scheduling order
        let src = r#"
            input void A;
            internal void e;
            int v;
            par do
               loop do
                  await A;
                  emit e;
               end
            with
               loop do
                  await A;
                  await e;
                  v = 1;
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.iter().any(|c| c.kind == ConflictKind::InternalEvent), "{cs:?}");
    }

    #[test]
    fn emit_chain_is_sequenced_not_concurrent() {
        // the §2.2 dataflow chain must pass the analysis: the awakened
        // trails are sequenced with the emitter
        let src = r#"
            input void Go;
            int v1, v2, v3;
            internal void v1_evt, v2_evt;
            par do
               loop do
                  await v1_evt;
                  v2 = v1 + 1;
                  emit v2_evt;
               end
            with
               loop do
                  await v2_evt;
                  v3 = v2 * 2;
               end
            with
               loop do
                  await Go;
                  v1 = 10;
                  emit v1_evt;
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn temperature_mutual_dependency_is_deterministic() {
        let src = r#"
            input int SetC;
            int tc, tf;
            internal void tc_evt, tf_evt;
            par do
               loop do
                  await tc_evt;
                  tf = 9 * tc / 5 + 32;
                  emit tf_evt;
               end
            with
               loop do
                  await tf_evt;
                  tc = 5 * (tf-32) / 9;
                  emit tc_evt;
               end
            with
               loop do
                  tc = await SetC;
                  emit tc_evt;
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn unknown_duration_timer_may_coincide_with_known() {
        // the ship-game situation: an expression timeout against a 50ms
        // sampler — concurrent C calls must be flagged…
        let src = r#"
            int dt = 500;
            par do
               loop do
                  await (dt * 1000);
                  _redraw(1);
               end
            with
               loop do
                  await 50ms;
                  _analogRead(0);
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.iter().any(|c| c.kind == ConflictKind::CCall), "{cs:?}");
        // …and the annotations from the paper make it pass
        let annotated = format!("deterministic _analogRead, _redraw;\n{src}");
        assert!(conflicts(&annotated).is_empty());
    }

    #[test]
    fn ship_game_key_and_timer_trails_do_not_race_on_ship() {
        // §3.2: "no possible race conditions on variable ship because the
        // two loops react to different events"
        let src = r#"
            input int Key;
            int dt = 500, ship;
            par do
               loop do
                  await (dt*1000);
                  _redraw(ship);
               end
            with
               loop do
                  int key = await Key;
                  if key == 1 then
                     ship = 0;
                  end
                  if key == 2 then
                     ship = 1;
                  end
               end
            end
        "#;
        let cs = conflicts(src);
        assert!(
            !cs.iter().any(|c| c.kind == ConflictKind::Variable && c.what.contains("ship")),
            "{cs:?}"
        );
    }

    #[test]
    fn glitch_free_continuation_is_not_concurrent_with_arms() {
        // the par/or continuation is sequenced after normal trails by the
        // priority scheme — no conflict with the arm that terminated
        let src = r#"
            input void E;
            int v;
            loop do
               par/or do
                  await E;
                  v = 1;
               with
                  await forever;
               end
               v = 2;
            end
        "#;
        let cs = conflicts(src);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn boot_time_parallel_writes_conflict() {
        let cs = conflicts(
            "int v;\npar do\n v = 1;\n await forever;\nwith\n v = 2;\n await forever;\nend",
        );
        assert_eq!(cs.len(), 1);
    }

    #[test]
    fn dfa_dot_output_is_renderable() {
        let (d, p) = dfa_of("input void A;\nloop do\n await A;\nend");
        let dot = dfa::to_dot(&d, &p);
        assert!(dot.starts_with("digraph dfa {"));
        assert!(dot.contains("await A"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn flowgraph_dot_shows_priorities() {
        // the §4 guiding example
        let src = r#"
            input int A, B;
            input void C;
            int ret;
            loop do
               par/or do
                  int a = await A;
                  int b = await B;
                  ret = a + b;
                  break;
               with
                  par/and do
                     await C;
                  with
                     await A;
                  end
               end
            end
            _after();
        "#;
        let p = compile_source(src).unwrap();
        let dot = flowgraph::to_dot(&p);
        assert!(dot.contains("prio"), "escape nodes carry priorities:\n{dot}");
        assert!(dot.contains("style=dashed"));
        // and the program is deterministic per the analysis
        let cs = check_determinism(&p);
        assert!(cs.is_empty(), "{cs:?}");
    }

    #[test]
    fn dfa_terminates_on_terminating_programs() {
        let (d, _) = dfa_of("input void A;\nawait A;\nreturn 1;");
        assert!(d.states.len() >= 2);
        assert!(d.deterministic());
        // the Event(A) transition leads to a quiescent (gate-free) state
        let quiescent = d
            .transitions
            .iter()
            .find(|t| matches!(t.label, Label::Event(_)))
            .map(|t| d.states[t.to].gates.is_empty());
        assert_eq!(quiescent, Some(true));
    }
}

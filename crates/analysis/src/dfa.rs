//! Temporal analysis: DFA construction and nondeterminism detection (§2.6).
//!
//! The compiled program is abstractly executed: a DFA state is the set of
//! possibly-active gates (plus par/and flags), with wall-clock gates
//! carrying their *relative* deadlines. From each state, one transition is
//! explored per external event with listeners, per expiring known deadline
//! (simultaneous deadlines fire together — that is how `10ms×10` against
//! `100ms` is caught), per unknown-duration timer (alone, paired with other
//! unknowns, and coinciding with the next known deadline), and per async
//! completion.
//!
//! Expanding a reaction explores **both** branches of every conditional
//! (may-semantics — the source of the paper's admitted false positives)
//! and tracks concurrency with *trail groups*: every `Spawn` forks a new
//! group; trails awakened by an internal `emit` become children of the
//! emitter (sequenced); escape/rejoin blocks run at their rank ("phase"),
//! sequenced after normal trails. Two accesses conflict when they come
//! from unrelated groups of the same phase and touch:
//!
//! * the same variable, at least one writing;
//! * the same internal event, at least one emitting (emit/emit or
//!   emit/await);
//! * C functions not declared `pure`/`deterministic`-compatible.

use ceu_ast::{EventId, Span};
use ceu_codegen::{
    AsyncId, BlockId, CompiledProgram, GateId, GateKind, Op, Place, RegionId, Rv, SlotId, Term,
    TimeAmount,
};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;

/// Analysis limits.
#[derive(Clone, Debug)]
pub struct DfaOptions {
    pub max_states: usize,
    /// Cap on branch combinations explored per reaction.
    pub max_paths_per_reaction: usize,
    /// Whether concurrent C calls are checked (§2.6).
    pub check_ccalls: bool,
}

impl Default for DfaOptions {
    fn default() -> Self {
        DfaOptions { max_states: 20_000, max_paths_per_reaction: 4_096, check_ccalls: true }
    }
}

/// Abstract gate status inside a DFA state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum GateSt {
    /// Awaiting an event (external or internal).
    Event,
    /// Timer with a known relative deadline (µs after state entry).
    Time(u64),
    /// Timer with a computed (unknown) deadline.
    TimeUnknown,
    /// `await forever`.
    Never,
    /// Awaiting an async completion.
    Async,
}

type GateMap = BTreeMap<GateId, GateSt>;
type FlagSet = BTreeSet<SlotId>;

/// One DFA state: the possibly-active gates and the par/and flags.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct State {
    pub gates: GateMap,
    pub flags: FlagSet,
}

/// Transition label.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Label {
    Boot,
    Event(EventId),
    /// Expiry of the earliest known deadline, possibly coinciding with
    /// unknown-duration timers.
    Time {
        rel: u64,
        with_unknown: Vec<GateId>,
    },
    /// Unknown-duration timers firing (alone or together).
    Unknown(Vec<GateId>),
    AsyncDone(AsyncId),
}

/// A transition `from --label--> to`.
#[derive(Clone, Debug)]
pub struct Trans {
    pub from: usize,
    pub label: Label,
    pub to: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConflictKind {
    Variable,
    InternalEvent,
    CCall,
}

/// A detected source of nondeterminism.
#[derive(Clone, Debug)]
pub struct Conflict {
    pub kind: ConflictKind,
    /// Human-readable description of what is accessed concurrently.
    pub what: String,
    pub spans: (Span, Span),
    /// State in which the triggering reaction starts.
    pub state: usize,
    pub label: Label,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ConflictKind::Variable => "concurrent access to variable",
            ConflictKind::InternalEvent => "concurrent access to internal event",
            ConflictKind::CCall => "concurrent C calls",
        };
        write!(f, "nondeterminism: {kind} {} (at {} and {})", self.what, self.spans.0, self.spans.1)
    }
}

/// The analysis result.
#[derive(Clone, Debug)]
pub struct Dfa {
    pub states: Vec<State>,
    pub transitions: Vec<Trans>,
    pub conflicts: Vec<Conflict>,
    /// `true` if a limit was hit and the DFA is incomplete.
    pub truncated: bool,
}

impl Dfa {
    /// Is the program (locally) deterministic?
    pub fn deterministic(&self) -> bool {
        self.conflicts.is_empty()
    }

    /// BFS distance (in input occurrences, boot excluded) from program
    /// start to the reaction that triggers the given conflict; the paper
    /// counts occurrences this way ("on the 6th occurrence of A").
    pub fn conflict_depth(&self, c: &Conflict) -> Option<usize> {
        let mut dist = vec![usize::MAX; self.states.len()];
        let mut q = VecDeque::new();
        dist[0] = 0;
        q.push_back(0usize);
        while let Some(s) = q.pop_front() {
            if s == c.state {
                // dist already includes the boot transition; the conflict
                // fires on the *next* occurrence: +1 - 1 = dist
                return Some(dist[s]);
            }
            for t in self.transitions.iter().filter(|t| t.from == s) {
                if dist[t.to] == usize::MAX {
                    dist[t.to] = dist[s] + 1;
                    q.push_back(t.to);
                }
            }
        }
        None
    }
}

// ---- access bookkeeping -----------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum AccessKind {
    VarRead(String),
    VarWrite(String),
    EmitInt(EventId),
    AwaitInt(EventId),
    /// Output emission: concurrent emissions of the same output event are
    /// observably ordered by the environment → nondeterministic.
    EmitOut(EventId),
    CCall(String),
}

#[derive(Clone, Debug)]
struct Access {
    kind: AccessKind,
    group: u32,
    span: Span,
}

#[derive(Clone, Debug)]
struct Groups {
    /// parents (possibly several, for par/and rejoins) and phase per group.
    info: Vec<(Vec<u32>, u8)>,
}

impl Groups {
    fn new() -> Self {
        Groups { info: vec![] }
    }

    fn fresh(&mut self, parents: Vec<u32>, phase: u8) -> u32 {
        self.info.push((parents, phase));
        (self.info.len() - 1) as u32
    }

    fn phase(&self, g: u32) -> u8 {
        self.info[g as usize].1
    }

    /// `true` when one group is an ancestor of the other (sequenced).
    fn related(&self, a: u32, b: u32) -> bool {
        self.is_ancestor(a, b) || self.is_ancestor(b, a)
    }

    fn is_ancestor(&self, anc: u32, mut_of: u32) -> bool {
        let mut stack = vec![mut_of];
        while let Some(x) = stack.pop() {
            if x == anc {
                return true;
            }
            stack.extend(self.info[x as usize].0.iter().copied());
        }
        false
    }
}

// ---- abstract configurations -------------------------------------------------

#[derive(Clone, Debug)]
struct QTrack {
    rank: u8,
    seq: u64,
    block: BlockId,
    group: u32,
}

#[derive(Clone, Debug)]
struct Config {
    gates: GateMap,
    flags: FlagSet,
    queue: Vec<QTrack>,
    accesses: Vec<Access>,
    /// Dedup: one record per (kind, group) — duplicates add no conflict
    /// pairs and would blow up quadratic checking on looping paths.
    seen: std::collections::HashSet<(AccessKind, u32)>,
    groups: Groups,
    /// Which group set each par/and flag *in this reaction* (sequencing
    /// evidence for the rejoin continuation).
    flag_owner: BTreeMap<SlotId, u32>,
    seq: u64,
    steps: u32,
    terminated: bool,
}

const STEP_LIMIT: u32 = 100_000;

struct Analyzer<'a> {
    prog: &'a CompiledProgram,
    opts: &'a DfaOptions,
    /// slot → variable name (arrays map their whole range).
    slot_name: Vec<Option<String>>,
    internal: Vec<bool>,
}

/// Runs the temporal analysis over a compiled program.
pub fn analyze(prog: &CompiledProgram, opts: &DfaOptions) -> Dfa {
    let mut slot_name = vec![None; prog.data_len as usize];
    for s in &prog.slots {
        for k in 0..s.len {
            let at = (s.slot + k) as usize;
            if at < slot_name.len() {
                slot_name[at] = Some(s.name.clone());
            }
        }
    }
    let internal =
        prog.events.iter().map(|(_, e)| e.kind == ceu_ast::EventKind::Internal).collect();
    let az = Analyzer { prog, opts, slot_name, internal };
    az.build()
}

/// Convenience: analyze with defaults and return only the conflicts.
pub fn check_determinism(prog: &CompiledProgram) -> Vec<Conflict> {
    analyze(prog, &DfaOptions::default()).conflicts
}

impl<'a> Analyzer<'a> {
    fn build(&self) -> Dfa {
        let mut dfa = Dfa {
            states: vec![State { gates: GateMap::new(), flags: FlagSet::new() }],
            transitions: vec![],
            conflicts: vec![],
            truncated: false,
        };
        let mut interned: HashMap<State, usize> = HashMap::new();
        interned.insert(dfa.states[0].clone(), 0);
        let mut work: VecDeque<usize> = VecDeque::new();

        // boot transition
        let st0 = dfa.states[0].clone();
        let boot_outcomes = self.expand(&st0, Label::Boot, vec![], Some(self.prog.boot), &mut dfa);
        for st in boot_outcomes {
            let idx = intern(&mut dfa, &mut interned, &mut work, st);
            dfa.transitions.push(Trans { from: 0, label: Label::Boot, to: idx });
        }

        while let Some(s) = work.pop_front() {
            if dfa.states.len() >= self.opts.max_states {
                dfa.truncated = true;
                break;
            }
            for (label, roots) in self.labels_of(&dfa.states[s]) {
                let outcomes =
                    self.expand(&dfa.states[s].clone(), label.clone(), roots, None, &mut dfa);
                for st in outcomes {
                    let idx = intern(&mut dfa, &mut interned, &mut work, st);
                    dfa.transitions.push(Trans { from: s, label: label.clone(), to: idx });
                }
                // conflicts recorded during expansion get state/label fixed up
                for c in dfa.conflicts.iter_mut().filter(|c| c.state == usize::MAX) {
                    c.state = s;
                    c.label = label.clone();
                }
            }
        }
        // boot-time conflicts
        for c in dfa.conflicts.iter_mut().filter(|c| c.state == usize::MAX) {
            c.state = 0;
            c.label = Label::Boot;
        }
        dedup_conflicts(&mut dfa.conflicts);
        dfa
    }

    /// All transition labels leaving a state, with their root gates.
    fn labels_of(&self, state: &State) -> Vec<(Label, Vec<GateId>)> {
        let mut out = Vec::new();
        // external events with listeners
        let mut by_event: BTreeMap<EventId, Vec<GateId>> = BTreeMap::new();
        for (&g, &st) in &state.gates {
            if st == GateSt::Event {
                if let GateKind::Evt(e) = self.prog.gate(g).kind {
                    if self.prog.events.get(e).external() {
                        by_event.entry(e).or_default().push(g);
                    }
                }
            }
        }
        for (e, roots) in by_event {
            out.push((Label::Event(e), roots));
        }
        // known deadlines: earliest fires; simultaneous ones share a reaction
        let known: Vec<(GateId, u64)> = state
            .gates
            .iter()
            .filter_map(|(&g, &st)| match st {
                GateSt::Time(d) => Some((g, d)),
                _ => None,
            })
            .collect();
        let unknowns: Vec<GateId> = state
            .gates
            .iter()
            .filter_map(|(&g, &st)| (st == GateSt::TimeUnknown).then_some(g))
            .collect();
        if let Some(&m) = known.iter().map(|(_, d)| d).min() {
            let roots: Vec<GateId> =
                known.iter().filter(|(_, d)| *d == m).map(|(g, _)| *g).collect();
            out.push((Label::Time { rel: m, with_unknown: vec![] }, roots.clone()));
            // an unknown-duration timer may coincide with the deadline
            for &u in &unknowns {
                let mut r = roots.clone();
                r.push(u);
                out.push((Label::Time { rel: m, with_unknown: vec![u] }, r));
            }
        }
        // unknown timers alone and pairwise
        for (i, &u) in unknowns.iter().enumerate() {
            out.push((Label::Unknown(vec![u]), vec![u]));
            for &v in &unknowns[i + 1..] {
                out.push((Label::Unknown(vec![u, v]), vec![u, v]));
            }
        }
        // async completions
        for (&g, &st) in &state.gates {
            if st == GateSt::Async {
                if let GateKind::AsyncDone(a) = self.prog.gate(g).kind {
                    out.push((Label::AsyncDone(a), vec![g]));
                }
            }
        }
        out
    }

    /// Expands one reaction: fires `roots` (or the boot block), abstractly
    /// executes all paths, and returns the set of possible next states.
    /// Conflicts found are appended to `dfa.conflicts` with `state` set to
    /// `usize::MAX` (fixed up by the caller).
    fn expand(
        &self,
        state: &State,
        label: Label,
        roots: Vec<GateId>,
        boot: Option<BlockId>,
        dfa: &mut Dfa,
    ) -> Vec<State> {
        let mut cfg = Config {
            gates: state.gates.clone(),
            flags: state.flags.clone(),
            queue: Vec::new(),
            accesses: Vec::new(),
            seen: std::collections::HashSet::new(),
            groups: Groups::new(),
            flag_owner: BTreeMap::new(),
            seq: 0,
            steps: 0,
            terminated: false,
        };
        // age known deadlines when time passes
        if let Label::Time { rel, .. } = label {
            for st in cfg.gates.values_mut() {
                if let GateSt::Time(d) = st {
                    *d -= rel.min(*d);
                }
            }
        }
        if let Some(b) = boot {
            let g = cfg.groups.fresh(vec![], 0);
            push_track(&mut cfg, self.prog, b, g);
        }
        for root in roots {
            cfg.gates.remove(&root);
            let cont = self.prog.gate(root).cont;
            let g = cfg.groups.fresh(vec![], 0);
            push_track(&mut cfg, self.prog, cont, g);
        }
        let mut done = Vec::new();
        let mut paths = 0usize;
        self.run(cfg, &mut done, &mut paths, dfa);
        // collect conflicts per finished path, then map to states
        let mut out: Vec<State> = Vec::new();
        for c in done {
            self.find_conflicts(&c, dfa);
            let st = State { gates: c.gates, flags: c.flags };
            if !out.contains(&st) {
                out.push(st);
            }
        }
        out
    }

    /// Abstractly drains the track queue of a config, splitting on branches.
    fn run(&self, mut cfg: Config, done: &mut Vec<Config>, paths: &mut usize, dfa: &mut Dfa) {
        if *paths >= self.opts.max_paths_per_reaction {
            dfa.truncated = true;
            return;
        }
        loop {
            if cfg.terminated || cfg.queue.is_empty() {
                *paths += 1;
                done.push(cfg);
                return;
            }
            let t = pop_track(&mut cfg);
            let mut cur = t.block;
            let mut group = t.group;
            // run one track to its halt, splitting on conditionals
            loop {
                cfg.steps += 1;
                if cfg.steps > STEP_LIMIT {
                    dfa.truncated = true;
                    *paths += 1;
                    done.push(cfg);
                    return;
                }
                let blk = self.prog.block(cur);
                let mut emitted = false;
                for instr in &blk.instrs {
                    self.exec_abs(&mut cfg, &instr.op, instr.span, group);
                    emitted = matches!(instr.op, Op::EmitInt { .. });
                }
                match &blk.term {
                    Term::Halt => break,
                    Term::Goto(b) => {
                        if emitted {
                            // stack policy: the emitter resumes only after
                            // the awakened trails (queued just above) react
                            push_track_as(&mut cfg, self.prog, *b, group);
                            break;
                        }
                        cur = *b;
                    }
                    Term::If { cond, then_b, else_b } => {
                        self.reads(&mut cfg, self.prog.expr(*cond), group, Span::default());
                        // explore both branches
                        let mut other = cfg.clone();
                        push_front_track(&mut other, self.prog, *else_b, group);
                        self.run(other, done, paths, dfa);
                        cur = *then_b;
                    }
                    Term::JoinAnd { lo, hi, cont } => {
                        // flags are tracked exactly, so the join outcome is
                        // deterministic per path
                        if (*lo..*hi).all(|s| cfg.flags.contains(&s)) {
                            // the continuation is sequenced after *all*
                            // completed arms, not just the last one
                            let mut parents = vec![group];
                            for s in *lo..*hi {
                                if let Some(&g) = cfg.flag_owner.get(&s) {
                                    if !parents.contains(&g) {
                                        parents.push(g);
                                    }
                                }
                            }
                            let phase = cfg.groups.phase(group);
                            group = cfg.groups.fresh(parents, phase);
                            cur = *cont;
                        } else {
                            break;
                        }
                    }
                    Term::TerminateProgram { value } => {
                        if let Some(v) = value {
                            self.reads(&mut cfg, self.prog.expr(*v), group, Span::default());
                        }
                        cfg.gates.clear();
                        cfg.queue.clear();
                        cfg.terminated = true;
                        break;
                    }
                    Term::TerminateAsync { .. } => break,
                }
            }
        }
    }

    fn exec_abs(&self, cfg: &mut Config, op: &Op, span: Span, group: u32) {
        match op {
            Op::Assign { dst, src } => {
                self.reads(cfg, self.prog.expr(*src), group, span);
                self.write_place(cfg, dst, group, span);
            }
            Op::Eval(rv) => self.reads(cfg, self.prog.expr(*rv), group, span),
            Op::ActivateEvt { gate } => {
                cfg.gates.insert(*gate, GateSt::Event);
                if let GateKind::Evt(e) = self.prog.gate(*gate).kind {
                    if self.internal[e.index()] {
                        record(cfg, AccessKind::AwaitInt(e), group, span);
                    }
                }
            }
            Op::ActivateTime { gate, us } => {
                let st = match us {
                    TimeAmount::Const(c) => GateSt::Time(*c),
                    TimeAmount::Dyn(rv) => {
                        self.reads(cfg, self.prog.expr(*rv), group, span);
                        GateSt::TimeUnknown
                    }
                };
                cfg.gates.insert(*gate, st);
            }
            Op::ActivateNever { gate } => {
                cfg.gates.insert(*gate, GateSt::Never);
            }
            Op::ActivateAsync { gate, .. } => {
                cfg.gates.insert(*gate, GateSt::Async);
            }
            Op::ClearRegion(r) => self.clear_region(cfg, *r),
            Op::Spawn(b) => {
                let phase = self.prog.block(*b).rank;
                let child = cfg.groups.fresh(vec![group], phase);
                push_track(cfg, self.prog, *b, child);
            }
            Op::EmitInt { event, value } => {
                if let Some(v) = value {
                    self.reads(cfg, self.prog.expr(*v), group, span);
                }
                record(cfg, AccessKind::EmitInt(*event), group, span);
                // awaken listeners as children of the emitter (sequenced)
                let listeners: Vec<GateId> = cfg
                    .gates
                    .iter()
                    .filter(|(&g, &st)| {
                        st == GateSt::Event && self.prog.gate(g).kind == GateKind::Evt(*event)
                    })
                    .map(|(&g, _)| g)
                    .collect();
                for l in listeners {
                    cfg.gates.remove(&l);
                    let cont = self.prog.gate(l).cont;
                    let child = cfg.groups.fresh(vec![group], cfg.groups.phase(group));
                    push_track(cfg, self.prog, cont, child);
                }
            }
            Op::EmitOut { event, value } => {
                if let Some(v) = value {
                    self.reads(cfg, self.prog.expr(*v), group, span);
                }
                record(cfg, AccessKind::EmitOut(*event), group, span);
            }
            // async-only instructions: bodies are globally asynchronous and
            // excluded from the local-determinism analysis (§2.9)
            Op::EmitExt { .. } | Op::EmitTime(_) => {}
            Op::SetFlag(s) => {
                cfg.flags.insert(*s);
                cfg.flag_owner.insert(*s, group);
            }
            Op::ClearFlags { lo, hi } => {
                for s in *lo..*hi {
                    cfg.flags.remove(&s);
                }
            }
        }
    }

    fn clear_region(&self, cfg: &mut Config, r: RegionId) {
        let region = self.prog.region(r);
        let doomed: Vec<GateId> =
            cfg.gates.keys().copied().filter(|g| (region.lo..region.hi).contains(g)).collect();
        for g in doomed {
            cfg.gates.remove(&g);
        }
    }

    fn write_place(&self, cfg: &mut Config, place: &Place, group: u32, span: Span) {
        match place {
            Place::Slot(s) => self.var_access(cfg, *s, true, group, span),
            Place::Index(s, idx) => {
                self.reads(cfg, self.prog.expr(*idx), group, span);
                self.var_access(cfg, *s, true, group, span);
            }
            Place::Deref(rv) => {
                self.reads(cfg, self.prog.expr(*rv), group, span);
                record(cfg, AccessKind::VarWrite("*<pointer>".into()), group, span);
            }
        }
    }

    fn var_access(&self, cfg: &mut Config, slot: SlotId, write: bool, group: u32, span: Span) {
        let name = self
            .slot_name
            .get(slot as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("slot{slot}"));
        let kind = if write { AccessKind::VarWrite(name) } else { AccessKind::VarRead(name) };
        record(cfg, kind, group, span);
    }

    fn reads(&self, cfg: &mut Config, rv: &Rv, group: u32, span: Span) {
        let mut stack = vec![rv];
        while let Some(r) = stack.pop() {
            match r {
                Rv::Slot(s) | Rv::AddrOf(s) => self.var_access(cfg, *s, false, group, span),
                Rv::Un(_, a) | Rv::Cast(a) | Rv::Field(a, _, _) => stack.push(a),
                Rv::Deref(a) => {
                    record(cfg, AccessKind::VarRead("*<pointer>".into()), group, span);
                    stack.push(a);
                }
                Rv::Bin(_, a, b) | Rv::Index(a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Rv::CCall(name, args) => {
                    record(cfg, AccessKind::CCall(name.clone()), group, span);
                    for a in args {
                        stack.push(a);
                    }
                }
                _ => {}
            }
        }
    }

    /// Pairwise conflict check over the accesses of one finished path.
    fn find_conflicts(&self, cfg: &Config, dfa: &mut Dfa) {
        let acc = &cfg.accesses;
        for i in 0..acc.len() {
            for j in i + 1..acc.len() {
                let (a, b) = (&acc[i], &acc[j]);
                if a.group == b.group
                    || cfg.groups.phase(a.group) != cfg.groups.phase(b.group)
                    || cfg.groups.related(a.group, b.group)
                {
                    continue;
                }
                let conflict = match (&a.kind, &b.kind) {
                    (AccessKind::VarWrite(x), AccessKind::VarWrite(y))
                    | (AccessKind::VarWrite(x), AccessKind::VarRead(y))
                    | (AccessKind::VarRead(x), AccessKind::VarWrite(y))
                        if x == y =>
                    {
                        Some((ConflictKind::Variable, format!("`{}`", strip(x))))
                    }
                    (AccessKind::EmitOut(x), AccessKind::EmitOut(y)) if x == y => Some((
                        ConflictKind::InternalEvent,
                        format!("`{}` (output)", self.prog.events.get(*x).name),
                    )),
                    (AccessKind::EmitInt(x), AccessKind::EmitInt(y))
                    | (AccessKind::EmitInt(x), AccessKind::AwaitInt(y))
                    | (AccessKind::AwaitInt(x), AccessKind::EmitInt(y))
                        if x == y =>
                    {
                        Some((
                            ConflictKind::InternalEvent,
                            format!("`{}`", self.prog.events.get(*x).name),
                        ))
                    }
                    (AccessKind::CCall(f), AccessKind::CCall(g))
                        if self.opts.check_ccalls && !self.prog.annotations.compatible(f, g) =>
                    {
                        Some((ConflictKind::CCall, format!("`_{f}` and `_{g}`")))
                    }
                    _ => None,
                };
                if let Some((kind, what)) = conflict {
                    dfa.conflicts.push(Conflict {
                        kind,
                        what,
                        spans: (a.span, b.span),
                        state: usize::MAX,
                        label: Label::Boot,
                    });
                }
            }
        }
    }
}

/// Records an access once per (kind, group) within a reaction path.
fn record(cfg: &mut Config, kind: AccessKind, group: u32, span: Span) {
    if cfg.seen.insert((kind.clone(), group)) {
        cfg.accesses.push(Access { kind, group, span });
    }
}

/// Strips the alpha-renaming suffix for display (`v#3` → `v`).
fn strip(unique: &str) -> &str {
    unique.split('#').next().unwrap_or(unique)
}

fn push_track(cfg: &mut Config, prog: &CompiledProgram, block: BlockId, group: u32) {
    cfg.seq += 1;
    cfg.queue.push(QTrack { rank: prog.block(block).rank, seq: cfg.seq, block, group });
}

/// Used for emit-awakened trails: they run before previously queued tracks
/// (stack policy approximation).
fn push_front_track(cfg: &mut Config, prog: &CompiledProgram, block: BlockId, group: u32) {
    cfg.queue.insert(0, QTrack { rank: prog.block(block).rank, seq: 0, block, group });
}

/// Enqueues a continuation keeping the given group (emitter resumption).
fn push_track_as(cfg: &mut Config, prog: &CompiledProgram, block: BlockId, group: u32) {
    cfg.seq += 1;
    cfg.queue.push(QTrack { rank: prog.block(block).rank, seq: cfg.seq, block, group });
}

fn pop_track(cfg: &mut Config) -> QTrack {
    let mut best = 0;
    for i in 1..cfg.queue.len() {
        if (cfg.queue[i].rank, cfg.queue[i].seq) < (cfg.queue[best].rank, cfg.queue[best].seq) {
            best = i;
        }
    }
    cfg.queue.remove(best)
}

fn intern(
    dfa: &mut Dfa,
    interned: &mut HashMap<State, usize>,
    work: &mut VecDeque<usize>,
    st: State,
) -> usize {
    if let Some(&i) = interned.get(&st) {
        return i;
    }
    let i = dfa.states.len();
    dfa.states.push(st.clone());
    interned.insert(st, i);
    work.push_back(i);
    i
}

fn dedup_conflicts(conflicts: &mut Vec<Conflict>) {
    let mut seen = BTreeSet::new();
    conflicts.retain(|c| {
        let mut spans = [c.spans.0, c.spans.1];
        spans.sort_by_key(|s| (s.line, s.col));
        let key = (
            c.kind as u8,
            c.what.clone(),
            spans[0].line,
            spans[0].col,
            spans[1].line,
            spans[1].col,
        );
        seen.insert(key)
    });
}

/// Renders the DFA as Graphviz dot (Figure 2 reproduction).
pub fn to_dot(dfa: &Dfa, prog: &CompiledProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph dfa {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    let conflict_states: BTreeSet<usize> = dfa.conflicts.iter().map(|c| c.state).collect();
    for (i, s) in dfa.states.iter().enumerate() {
        let mut label = format!("DFA #{i}\\n");
        for (&g, st) in &s.gates {
            let gi = prog.gate(g);
            let what = match gi.kind {
                GateKind::Evt(e) => format!("await {}", prog.events.get(e).name),
                GateKind::Timer => match st {
                    GateSt::Time(d) => format!("await {d}us"),
                    _ => "await (expr)".into(),
                },
                GateKind::Never => "await forever".into(),
                GateKind::AsyncDone(a) => format!("await async{a}"),
            };
            let _ = write!(label, "g{g}: {what} [{}]\\n", gi.span);
        }
        let style = if conflict_states.contains(&i) { ", color=red, penwidth=2" } else { "" };
        let _ = writeln!(out, "  s{i} [label=\"{label}\"{style}];");
    }
    for t in &dfa.transitions {
        let lab = match &t.label {
            Label::Boot => "boot".to_string(),
            Label::Event(e) => prog.events.get(*e).name.clone(),
            Label::Time { rel, with_unknown } if with_unknown.is_empty() => format!("{rel}us"),
            Label::Time { rel, .. } => format!("{rel}us+?"),
            Label::Unknown(gs) => format!("?x{}", gs.len()),
            Label::AsyncDone(a) => format!("async{a}"),
        };
        let _ = writeln!(out, "  s{} -> s{} [label=\"{lab}\"];", t.from, t.to);
    }
    out.push_str("}\n");
    out
}

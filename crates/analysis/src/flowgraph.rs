//! Flow-graph rendering (the paper's Figure `fig:nfa`).
//!
//! Nodes are tracks (with their scheduling rank — the paper's priorities),
//! solid edges are intra-reaction control flow (goto/branch/spawn), dashed
//! edges go through a gate (an `await`), labelled with what fires it.

use ceu_codegen::{CompiledProgram, GateKind, Op, Term};
use std::fmt::Write as _;

/// Renders the compiled program's flow graph as Graphviz dot.
pub fn to_dot(prog: &CompiledProgram) -> String {
    let mut out =
        String::from("digraph flow {\n  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n");
    for (i, b) in prog.blocks.iter().enumerate() {
        let shape = if b.rank > 0 { ", shape=doubleoctagon" } else { "" };
        let rank = if b.rank > 0 { format!("\\nprio {}", b.rank) } else { String::new() };
        let _ = writeln!(out, "  b{i} [label=\"{}{rank}\"{shape}];", b.label);
    }
    for (i, b) in prog.blocks.iter().enumerate() {
        for instr in &b.instrs {
            match &instr.op {
                Op::Spawn(t) => {
                    let _ = writeln!(out, "  b{i} -> b{t} [label=\"spawn\"];");
                }
                Op::ActivateEvt { gate }
                | Op::ActivateTime { gate, .. }
                | Op::ActivateAsync { gate, .. } => {
                    let info = prog.gate(*gate);
                    let lab = match info.kind {
                        GateKind::Evt(e) => prog.events.get(e).name.clone(),
                        GateKind::Timer => "timer".into(),
                        GateKind::Never => "forever".into(),
                        GateKind::AsyncDone(a) => format!("async{a}"),
                    };
                    let _ =
                        writeln!(out, "  b{i} -> b{} [style=dashed, label=\"{lab}\"];", info.cont);
                }
                _ => {}
            }
        }
        match &b.term {
            Term::Goto(t) => {
                let _ = writeln!(out, "  b{i} -> b{t};");
            }
            Term::If { then_b, else_b, .. } => {
                let _ = writeln!(out, "  b{i} -> b{then_b} [label=\"then\"];");
                let _ = writeln!(out, "  b{i} -> b{else_b} [label=\"else\"];");
            }
            Term::JoinAnd { cont, .. } => {
                let _ = writeln!(out, "  b{i} -> b{cont} [label=\"join\"];");
            }
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

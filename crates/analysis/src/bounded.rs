//! Bounded-execution check (§2.5).
//!
//! A reaction chain must run in bounded time, so every path through a loop
//! body must contain an `await` or escape the loop. We implement a *sound
//! refinement* of the paper's stated rule: a `break` only satisfies the
//! check for the loop it actually exits, so `loop do loop do break end end`
//! — a tight loop that the literal rule would accept — is rejected (see
//! DESIGN.md).
//!
//! Loops inside `async` blocks are exempt: unbounded computation is the
//! whole point of asyncs (§2.7).

use ceu_ast::{AssignRhs, Block, ParKind, Program, Span, Stmt, StmtKind};
use std::fmt;

/// A loop that can iterate without consuming time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TightLoop {
    pub span: Span,
}

impl fmt::Display for TightLoop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tight loop at {}: every path through a loop body must contain an `await` or a `break`",
            self.span
        )
    }
}

impl std::error::Error for TightLoop {}

/// Abstract result of running a statement (may-semantics, zero-await paths):
#[derive(Clone, Copy, Debug, Default)]
struct R {
    /// May complete normally without awaiting.
    fall: bool,
    /// May reach a `break` of the *nearest enclosing loop* without awaiting.
    brk: bool,
    /// May reach a `return` (of the nearest value block) without awaiting.
    ret: bool,
}

/// Checks every loop of the program; returns all violations.
pub fn check_bounded(program: &Program) -> Vec<TightLoop> {
    let mut errs = Vec::new();
    check_block(&program.block, &mut errs);
    errs
}

fn check_block(block: &Block, errs: &mut Vec<TightLoop>) {
    for stmt in &block.stmts {
        check_stmt(stmt, errs);
    }
}

fn check_stmt(stmt: &Stmt, errs: &mut Vec<TightLoop>) {
    match &stmt.kind {
        StmtKind::Loop { body } => {
            let r = seq(body);
            if r.fall {
                errs.push(TightLoop { span: stmt.span });
            }
            check_block(body, errs);
        }
        StmtKind::If { then_blk, else_blk, .. } => {
            check_block(then_blk, errs);
            if let Some(e) = else_blk {
                check_block(e, errs);
            }
        }
        StmtKind::Par { arms, .. } => {
            for a in arms {
                check_block(a, errs);
            }
        }
        StmtKind::DoBlock { body } | StmtKind::Suspend { body, .. } => check_block(body, errs),
        // asyncs are allowed to loop unboundedly
        StmtKind::Async { .. } => {}
        StmtKind::Assign { rhs, .. } => match rhs {
            AssignRhs::Par(_, arms) => {
                for a in arms {
                    check_block(a, errs);
                }
            }
            AssignRhs::Do(b) => check_block(b, errs),
            AssignRhs::Async(_) => {}
            _ => {}
        },
        _ => {}
    }
}

/// Sequence: falls through without await iff every statement does; breaks
/// and returns accumulate from any still-reachable prefix.
fn seq(block: &Block) -> R {
    let mut reachable = true;
    let mut out = R { fall: true, brk: false, ret: false };
    for stmt in &block.stmts {
        if !reachable {
            break;
        }
        let r = eval(stmt);
        out.brk |= r.brk;
        out.ret |= r.ret;
        if !r.fall {
            out.fall = false;
            reachable = false;
        }
    }
    out
}

fn eval(stmt: &Stmt) -> R {
    match &stmt.kind {
        // declarations are zero-time, but initialisers may await (the check
        // also works on pre-desugar ASTs)
        StmtKind::VarDecl { vars, .. } => {
            let mut out = R { fall: true, ..R::default() };
            for v in vars {
                let r = match &v.init {
                    None | Some(AssignRhs::Expr(_)) => R { fall: true, ..R::default() },
                    Some(AssignRhs::AwaitEvt(_))
                    | Some(AssignRhs::AwaitTime(_))
                    | Some(AssignRhs::AwaitExpr(_))
                    | Some(AssignRhs::Async(_)) => R::default(),
                    Some(AssignRhs::Par(kind, arms)) => par_r(*kind, arms, true),
                    Some(AssignRhs::Do(b)) => {
                        let r = seq(b);
                        R { fall: r.fall || r.ret, brk: r.brk, ret: false }
                    }
                };
                out.brk |= out.fall && r.brk;
                out.ret |= out.fall && r.ret;
                out.fall &= r.fall;
            }
            out
        }

        // zero-time statements
        StmtKind::Nothing
        | StmtKind::InputDecl { .. }
        | StmtKind::InternalDecl { .. }
        | StmtKind::OutputDecl { .. }
        | StmtKind::CBlock { .. }
        | StmtKind::Pure { .. }
        | StmtKind::Deterministic { .. }
        | StmtKind::EmitEvt { .. }
        | StmtKind::EmitTime { .. }
        | StmtKind::Call { .. } => R { fall: true, ..R::default() },

        // time consumers
        StmtKind::AwaitEvt { .. }
        | StmtKind::AwaitTime { .. }
        | StmtKind::AwaitExpr { .. }
        | StmtKind::AwaitForever
        | StmtKind::Async { .. } => R::default(),

        StmtKind::Break => R { brk: true, ..R::default() },
        StmtKind::Return { .. } => R { ret: true, ..R::default() },

        StmtKind::If { then_blk, else_blk, .. } => {
            let a = seq(then_blk);
            let b = else_blk.as_ref().map(seq).unwrap_or(R { fall: true, ..R::default() });
            R { fall: a.fall || b.fall, brk: a.brk || b.brk, ret: a.ret || b.ret }
        }

        StmtKind::Loop { body } => {
            let r = seq(body);
            // the loop completes (falls through) only via a no-await break
            // of itself; its own breaks are captured here
            R { fall: r.brk, brk: false, ret: r.ret }
        }

        StmtKind::Par { kind, arms } => par_r(*kind, arms, /*value*/ false),

        StmtKind::DoBlock { body } | StmtKind::Suspend { body, .. } => seq(body),

        StmtKind::Assign { rhs, .. } => match rhs {
            AssignRhs::Expr(_) => R { fall: true, ..R::default() },
            // awaiting right-hand sides consume time
            AssignRhs::AwaitEvt(_)
            | AssignRhs::AwaitTime(_)
            | AssignRhs::AwaitExpr(_)
            | AssignRhs::Async(_) => R::default(),
            AssignRhs::Par(kind, arms) => par_r(*kind, arms, /*value*/ true),
            AssignRhs::Do(b) => {
                let r = seq(b);
                // a `return` inside the value block completes the block
                R { fall: r.fall || r.ret, brk: r.brk, ret: false }
            }
        },
    }
}

fn par_r(kind: ParKind, arms: &[Block], value: bool) -> R {
    let rs: Vec<R> = arms.iter().map(seq).collect();
    let brk = rs.iter().any(|r| r.brk);
    let ret = rs.iter().any(|r| r.ret);
    let fall = match kind {
        // a plain par never rejoins
        ParKind::Par => false,
        // par/or rejoins when any arm completes
        ParKind::Or => rs.iter().any(|r| r.fall),
        // par/and rejoins when all arms complete
        ParKind::And => rs.iter().all(|r| r.fall),
    };
    if value {
        // a `return` in any arm completes the value block instantly
        R { fall: fall || ret, brk, ret: false }
    } else {
        R { fall, brk, ret }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<TightLoop> {
        let p = ceu_parser::parse(src).unwrap();
        check_bounded(&p)
    }

    #[test]
    fn paper_example_1_tight_increment() {
        assert_eq!(check("int v;\nloop do\n v = v + 1;\nend").len(), 1);
    }

    #[test]
    fn paper_example_2_if_without_else_await() {
        let src = "input void A;\nint v;\nloop do\n if v then\n  await A;\n end\nend";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn paper_example_3_par_or_with_instant_arm() {
        let src =
            "input void A;\nint v;\nloop do\n par/or do\n  await A;\n with\n  v = 1;\n end\nend";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn paper_example_4_awaiting_loop_ok() {
        assert!(check("input void A;\nloop do\n await A;\nend").is_empty());
    }

    #[test]
    fn paper_example_5_par_and_ok() {
        let src =
            "input void A;\nint v;\nloop do\n par/and do\n  await A;\n with\n  v = 1;\n end\nend";
        assert!(check(src).is_empty());
    }

    #[test]
    fn break_makes_loop_bounded() {
        assert!(check("int v;\nloop do\n if v then\n  break;\n else\n  await 1s;\n end\nend")
            .is_empty());
        // …even with no await at all (executes at most once)
        assert!(check("loop do\n break;\nend").is_empty());
    }

    #[test]
    fn nested_loop_instant_break_is_tight() {
        // our sound refinement: the literal paper rule would accept this
        assert_eq!(check("loop do\n loop do\n  break;\n end\nend").len(), 1);
    }

    #[test]
    fn nested_loop_with_awaited_break_is_ok() {
        let src = "input void A;\nloop do\n loop do\n  await A;\n  break;\n end\nend";
        assert!(check(src).is_empty());
    }

    #[test]
    fn async_loops_are_exempt() {
        let src =
            "int r;\nr = async do\n int i = 0;\n loop do\n  i = i + 1;\n end\n return i;\nend;";
        assert!(check(src).is_empty());
    }

    #[test]
    fn return_in_value_block_is_instant_completion() {
        // v = do return 1; end  inside a loop: instant → tight
        assert_eq!(check("int v;\nloop do\n v = do\n  return 1;\n end;\nend").len(), 1);
    }

    #[test]
    fn return_through_value_par_is_instant() {
        let src = "int v;\nloop do\n v = par do\n  return 1;\n with\n  await 1s;\n end;\nend";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn all_violations_reported() {
        let src = "int v;\nloop do\n v = 1;\nend\nloop do\n v = 2;\nend";
        assert_eq!(check(src).len(), 2);
    }

    #[test]
    fn emit_is_zero_time() {
        let src = "internal void e;\nloop do\n emit e;\nend";
        assert_eq!(check(src).len(), 1);
    }
}

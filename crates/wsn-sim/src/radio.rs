//! The radio medium: topology, latency, and loss.

use ceu::runtime::ReactionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A radio message. The payload mirrors TinyOS's `message_t` closely
/// enough for the paper's demos: an opaque little buffer the application
//  reads and writes through `_Radio_getPayload`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    pub src: usize,
    pub dst: usize,
    pub payload: Vec<i64>,
    /// Causal parent: the reaction (on the sending mote) whose `_Radio_send`
    /// produced this packet. Carried across the medium so the receive-side
    /// reaction can record its cross-mote cause (Dapper-style flow ids in
    /// the Perfetto export). `None` for packets injected by test harnesses.
    pub origin: Option<ReactionId>,
}

impl Packet {
    pub fn new(src: usize, dst: usize, payload: Vec<i64>) -> Self {
        Packet { src, dst, payload, origin: None }
    }

    /// Single-word payload (the ring demo's counter).
    pub fn with_value(src: usize, dst: usize, value: i64) -> Self {
        Packet::new(src, dst, vec![value])
    }

    /// Stamps the causal origin (builder-style, used by the Céu binding).
    pub fn with_origin(mut self, origin: Option<ReactionId>) -> Self {
        self.origin = origin;
        self
    }

    pub fn value(&self) -> i64 {
        self.payload.first().copied().unwrap_or(0)
    }
}

/// Which links exist.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Every mote hears every other.
    Full,
    /// Mote `i` reaches `(i+1) % n` (the ring demo).
    Ring { n: usize },
    /// Explicit adjacency.
    Links(Vec<(usize, usize)>),
    /// `clusters` groups of `size` motes each (mote `m` belongs to
    /// cluster `m / size`): a full mesh inside each cluster, plus one
    /// directed bridge from the last mote of each cluster to the first
    /// mote of the next (wrapping). Connectivity checks are O(1), so the
    /// variant scales to soak-sized fleets, and the cluster structure is
    /// what the PDES sharder partitions along (see `wsn_sim::shard`).
    Clusters { clusters: usize, size: usize },
}

impl Topology {
    pub fn connected(&self, from: usize, to: usize) -> bool {
        match self {
            Topology::Full => true,
            Topology::Ring { n } => (from + 1) % n == to,
            Topology::Links(ls) => ls.iter().any(|&(a, b)| a == from && b == to),
            Topology::Clusters { clusters, size } => {
                let (cf, ct) = (from / size, to / size);
                if cf >= *clusters || ct >= *clusters {
                    return false;
                }
                (cf == ct && from != to)
                    || (from == cf * size + (size - 1)
                        && ct == (cf + 1) % clusters
                        && to.is_multiple_of(*size))
            }
        }
    }
}

/// Per-link latency model. `Uniform` is the historical behaviour (every
/// hop costs the medium's base `latency_us`); `Clustered` gives each
/// cluster its own intra-mesh latency and a (typically slower) bridge
/// latency between clusters — which is exactly what makes *per-shard*
/// lookahead worth computing: a shard covering a fast cluster may step
/// further per window than the global minimum would allow.
#[derive(Clone, Debug)]
pub enum LinkLatency {
    /// Every link costs the base `latency_us`.
    Uniform,
    /// Motes `m` with equal `m / size` share a cluster: intra-cluster
    /// links cost `intra_us[cluster % intra_us.len()]`, links between
    /// clusters cost `bridge_us`.
    Clustered { size: usize, intra_us: Vec<u64>, bridge_us: u64 },
}

/// Counters kept by the medium itself, one step below the per-mote view:
/// how many transmissions were attempted and why the failed ones failed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RadioStats {
    /// Transmissions offered to the medium.
    pub attempts: u64,
    /// Transmissions that will arrive (barring an in-flight drop).
    pub delivered: u64,
    /// Dropped because no link exists or an endpoint is down.
    pub dropped_link: u64,
    /// Dropped by the probabilistic loss model.
    pub dropped_loss: u64,
    /// Dropped because the endpoints were on opposite sides of an active
    /// partition (fault injection).
    pub dropped_partition: u64,
    /// Dropped by a per-link loss burst (fault injection).
    pub dropped_burst: u64,
    /// Counted `delivered` at transmit time, but the destination went
    /// down before arrival so the packet was discarded in flight.
    pub dropped_in_flight: u64,
}

/// A temporary network split: no traffic crosses between group `a` and
/// group `b` until virtual time `until_us` (exclusive).
#[derive(Clone, Debug)]
struct PartitionSpec {
    a: Vec<bool>,
    b: Vec<bool>,
    until_us: u64,
}

/// A temporary elevated-loss window on one directed link.
#[derive(Clone, Debug)]
struct BurstSpec {
    from: usize,
    to: usize,
    rate: f64,
    until_us: u64,
}

/// The medium: decides whether and when a transmission arrives.
pub struct Radio {
    pub topology: Topology,
    /// Per-hop latency in µs.
    pub latency_us: u64,
    /// Probability a transmission is lost.
    pub loss: f64,
    /// Motes currently powered off (failure injection).
    pub down: Vec<bool>,
    pub stats: RadioStats,
    /// Per-link latency model (see [`LinkLatency`]); `latency_us` is the
    /// base cost under `Uniform` and the minimum under `Clustered`.
    pub link_latency: LinkLatency,
    rng: StdRng,
    /// Active partitions (fault injection); expired entries are ignored
    /// and pruned lazily.
    partitions: Vec<PartitionSpec>,
    /// Active per-link loss bursts (fault injection).
    bursts: Vec<BurstSpec>,
}

impl Radio {
    /// Fully connected, lossless medium with fixed latency.
    pub fn ideal(latency_us: u64) -> Self {
        Radio::new(Topology::Full, latency_us, 0.0, 42)
    }

    pub fn new(topology: Topology, latency_us: u64, loss: f64, seed: u64) -> Self {
        Radio {
            topology,
            latency_us,
            loss,
            down: Vec::new(),
            stats: RadioStats::default(),
            link_latency: LinkLatency::Uniform,
            rng: StdRng::seed_from_u64(seed),
            partitions: Vec::new(),
            bursts: Vec::new(),
        }
    }

    /// A clustered medium: `clusters` full meshes of `size` motes each
    /// with per-cluster intra latencies, chained by slower bridges. The
    /// natural substrate for the sharded PDES stepper — each cluster's
    /// lookahead is its own intra latency, not the global minimum.
    pub fn clustered(
        clusters: usize,
        size: usize,
        intra_us: Vec<u64>,
        bridge_us: u64,
        loss: f64,
        seed: u64,
    ) -> Self {
        assert!(!intra_us.is_empty(), "need at least one intra-cluster latency");
        let base = intra_us.iter().copied().min().unwrap().min(bridge_us);
        let mut r = Radio::new(Topology::Clusters { clusters, size }, base, loss, seed);
        r.link_latency = LinkLatency::Clustered { size, intra_us, bridge_us };
        r
    }

    /// The latency a packet on the directed link `from → to` would pay.
    /// Defined for every pair (whether or not the link exists in the
    /// topology); the sharder only consults it for existing links.
    pub fn latency_of(&self, from: usize, to: usize) -> u64 {
        match &self.link_latency {
            LinkLatency::Uniform => self.latency_us,
            LinkLatency::Clustered { size, intra_us, bridge_us } => {
                if from / size == to / size {
                    intra_us[(from / size) % intra_us.len()]
                } else {
                    *bridge_us
                }
            }
        }
    }

    /// The smallest delay the medium can impose on any transmission —
    /// the *lookahead* of conservative parallel simulation: a packet
    /// emitted at `t` cannot affect any other mote before
    /// `t + min_latency()`, so motes may be stepped independently in
    /// windows of this width (see [`World::run_until_parallel`]). The
    /// sharded stepper refines this per shard from the actual incoming
    /// link latencies (see `wsn_sim::shard::ShardPlan`).
    ///
    /// [`World::run_until_parallel`]: crate::world::World::run_until_parallel
    pub fn min_latency(&self) -> u64 {
        match &self.link_latency {
            LinkLatency::Uniform => self.latency_us,
            LinkLatency::Clustered { intra_us, bridge_us, .. } => {
                intra_us.iter().copied().min().unwrap_or(*bridge_us).min(*bridge_us)
            }
        }
    }

    /// Marks a mote as failed (drops everything to/from it).
    ///
    /// The medium itself accepts any id (it has no mote roster); use
    /// [`World::set_mote_down`](crate::world::World::set_mote_down) for a
    /// validated, roster-aware version.
    pub fn set_down(&mut self, mote: usize, down: bool) {
        if self.down.len() <= mote {
            self.down.resize(mote + 1, false);
        }
        self.down[mote] = down;
    }

    /// Whether a mote is currently powered off.
    pub fn is_down(&self, mote: usize) -> bool {
        self.down.get(mote).copied().unwrap_or(false)
    }

    /// Splits the network: until `until_us`, nothing crosses between the
    /// motes of `a` and the motes of `b` (both directions). Several
    /// partitions may be active at once; [`heal`](Self::heal) clears all.
    pub fn set_partition(&mut self, a: &[usize], b: &[usize], until_us: u64) {
        let mask = |ids: &[usize]| {
            let mut m = vec![false; ids.iter().max().map_or(0, |&x| x + 1)];
            for &i in ids {
                m[i] = true;
            }
            m
        };
        self.partitions.push(PartitionSpec { a: mask(a), b: mask(b), until_us });
    }

    /// Imposes an extra loss probability on one directed link until
    /// `until_us` (a burst of interference on that hop).
    pub fn set_link_loss(&mut self, from: usize, to: usize, rate: f64, until_us: u64) {
        self.bursts.push(BurstSpec { from, to, rate, until_us });
    }

    /// Clears every active partition and loss burst (the network heals).
    pub fn heal(&mut self) {
        self.partitions.clear();
        self.bursts.clear();
    }

    /// Whether an active partition separates `from` and `to` at `now`.
    fn partitioned(&self, now: u64, from: usize, to: usize) -> bool {
        let side = |m: &[bool], i: usize| m.get(i).copied().unwrap_or(false);
        self.partitions.iter().any(|p| {
            now < p.until_us
                && ((side(&p.a, from) && side(&p.b, to)) || (side(&p.b, from) && side(&p.a, to)))
        })
    }

    /// Returns the arrival time of the packet, or `None` if it is lost.
    ///
    /// Deterministic given the call order: the RNG is drawn only for the
    /// probabilistic checks (base loss, then each active matching burst),
    /// never for packets already dropped by a structural check, so the
    /// sequential and parallel steppers consume the identical stream.
    pub fn transmit(&mut self, now: u64, from: usize, to: usize, _p: &Packet) -> Option<u64> {
        self.stats.attempts += 1;
        if self.is_down(from) || self.is_down(to) || !self.topology.connected(from, to) {
            self.stats.dropped_link += 1;
            return None;
        }
        if self.partitioned(now, from, to) {
            self.stats.dropped_partition += 1;
            return None;
        }
        if self.loss > 0.0 && self.rng.gen::<f64>() < self.loss {
            self.stats.dropped_loss += 1;
            return None;
        }
        let mut burst_hit = false;
        for i in 0..self.bursts.len() {
            let b = &self.bursts[i];
            if now < b.until_us && b.from == from && b.to == to {
                // draw even after a hit: the stream must not depend on
                // earlier bursts' outcomes
                burst_hit |= self.rng.gen::<f64>() < self.bursts[i].rate;
            }
        }
        if burst_hit {
            self.stats.dropped_burst += 1;
            return None;
        }
        self.stats.delivered += 1;
        Some(now + self.latency_of(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_topology_is_directional() {
        let mut r = Radio::new(Topology::Ring { n: 3 }, 100, 0.0, 1);
        let p = Packet::with_value(0, 1, 5);
        assert_eq!(r.transmit(0, 0, 1, &p), Some(100));
        assert_eq!(r.transmit(0, 1, 2, &p), Some(100));
        assert_eq!(r.transmit(0, 2, 0, &p), Some(100));
        assert_eq!(r.transmit(0, 0, 2, &p), None, "no shortcut across the ring");
        assert_eq!(r.transmit(0, 1, 0, &p), None, "ring is one-way");
    }

    #[test]
    fn down_motes_drop_traffic() {
        let mut r = Radio::ideal(10);
        let p = Packet::with_value(0, 1, 1);
        assert!(r.transmit(0, 0, 1, &p).is_some());
        r.set_down(1, true);
        assert!(r.transmit(0, 0, 1, &p).is_none());
        r.set_down(1, false);
        assert!(r.transmit(0, 0, 1, &p).is_some());
    }

    #[test]
    fn partitions_expire_and_heal() {
        let mut r = Radio::ideal(10);
        let p = Packet::with_value(0, 3, 1);
        r.set_partition(&[0, 1], &[2, 3], 500);
        assert_eq!(r.transmit(0, 0, 3, &p), None, "a→b blocked");
        assert_eq!(r.transmit(0, 3, 1, &p), None, "b→a blocked");
        assert!(r.transmit(0, 0, 1, &p).is_some(), "same side flows");
        assert!(r.transmit(500, 0, 3, &p).is_some(), "expired at until");
        r.set_partition(&[0], &[3], 1_000);
        assert_eq!(r.transmit(600, 0, 3, &p), None);
        r.heal();
        assert!(r.transmit(600, 0, 3, &p).is_some(), "heal clears partitions");
        assert_eq!(r.stats.dropped_partition, 3);
    }

    #[test]
    fn link_loss_bursts_are_seeded_and_bounded() {
        let p = Packet::with_value(0, 1, 1);
        let run = || {
            let mut r = Radio::new(Topology::Full, 10, 0.0, 11);
            r.set_link_loss(0, 1, 0.5, 1_000);
            (0..200u64).map(|t| r.transmit(t * 10, 0, 1, &p).is_some()).collect::<Vec<_>>()
        };
        let a = run();
        assert_eq!(a, run(), "same seed, same burst losses");
        let (in_burst, after): (Vec<_>, Vec<_>) = a.iter().enumerate().partition(|(i, _)| *i < 100);
        assert!(in_burst.iter().any(|(_, ok)| !**ok), "the burst drops packets");
        assert!(after.iter().all(|(_, ok)| **ok), "expired burst drops nothing");
    }

    #[test]
    fn clustered_topology_connects_meshes_and_bridges() {
        // 3 clusters × 4 motes: 0..4 | 4..8 | 8..12
        let mut r = Radio::clustered(3, 4, vec![500, 900, 700], 5_000, 0.0, 1);
        let p = Packet::with_value(0, 1, 1);
        // intra-cluster full mesh, per-cluster latency
        assert_eq!(r.transmit(0, 0, 3, &p), Some(500));
        assert_eq!(r.transmit(0, 5, 6, &p), Some(900));
        assert_eq!(r.transmit(0, 11, 8, &p), Some(700));
        // no self-links
        assert_eq!(r.transmit(0, 2, 2, &p), None);
        // bridges: last-of-cluster → first-of-next, wrapping, slow
        assert_eq!(r.transmit(0, 3, 4, &p), Some(5_000));
        assert_eq!(r.transmit(0, 7, 8, &p), Some(5_000));
        assert_eq!(r.transmit(0, 11, 0, &p), Some(5_000));
        // nothing else crosses clusters
        assert_eq!(r.transmit(0, 2, 4, &p), None);
        assert_eq!(r.transmit(0, 3, 5, &p), None);
        assert_eq!(r.transmit(0, 0, 8, &p), None);
        // the global lookahead is the fastest link anywhere
        assert_eq!(r.min_latency(), 500);
        assert_eq!(r.latency_of(4, 7), 900);
        assert_eq!(r.latency_of(3, 4), 5_000);
    }

    #[test]
    fn loss_is_probabilistic_but_seeded() {
        let mut r1 = Radio::new(Topology::Full, 0, 0.5, 7);
        let mut r2 = Radio::new(Topology::Full, 0, 0.5, 7);
        let p = Packet::with_value(0, 1, 1);
        let a: Vec<_> = (0..100).map(|_| r1.transmit(0, 0, 1, &p).is_some()).collect();
        let b: Vec<_> = (0..100).map(|_| r2.transmit(0, 0, 1, &p).is_some()).collect();
        assert_eq!(a, b, "same seed, same losses");
        let lost = a.iter().filter(|x| !**x).count();
        assert!(lost > 20 && lost < 80, "≈50% loss, got {lost}");
    }
}

//! The radio medium: topology, latency, and loss.

use ceu::runtime::ReactionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A radio message. The payload mirrors TinyOS's `message_t` closely
/// enough for the paper's demos: an opaque little buffer the application
//  reads and writes through `_Radio_getPayload`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    pub src: usize,
    pub dst: usize,
    pub payload: Vec<i64>,
    /// Causal parent: the reaction (on the sending mote) whose `_Radio_send`
    /// produced this packet. Carried across the medium so the receive-side
    /// reaction can record its cross-mote cause (Dapper-style flow ids in
    /// the Perfetto export). `None` for packets injected by test harnesses.
    pub origin: Option<ReactionId>,
}

impl Packet {
    pub fn new(src: usize, dst: usize, payload: Vec<i64>) -> Self {
        Packet { src, dst, payload, origin: None }
    }

    /// Single-word payload (the ring demo's counter).
    pub fn with_value(src: usize, dst: usize, value: i64) -> Self {
        Packet::new(src, dst, vec![value])
    }

    /// Stamps the causal origin (builder-style, used by the Céu binding).
    pub fn with_origin(mut self, origin: Option<ReactionId>) -> Self {
        self.origin = origin;
        self
    }

    pub fn value(&self) -> i64 {
        self.payload.first().copied().unwrap_or(0)
    }
}

/// Which links exist.
#[derive(Clone, Debug)]
pub enum Topology {
    /// Every mote hears every other.
    Full,
    /// Mote `i` reaches `(i+1) % n` (the ring demo).
    Ring { n: usize },
    /// Explicit adjacency.
    Links(Vec<(usize, usize)>),
}

impl Topology {
    fn connected(&self, from: usize, to: usize) -> bool {
        match self {
            Topology::Full => true,
            Topology::Ring { n } => (from + 1) % n == to,
            Topology::Links(ls) => ls.iter().any(|&(a, b)| a == from && b == to),
        }
    }
}

/// Counters kept by the medium itself, one step below the per-mote view:
/// how many transmissions were attempted and why the failed ones failed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RadioStats {
    /// Transmissions offered to the medium.
    pub attempts: u64,
    /// Transmissions that will arrive.
    pub delivered: u64,
    /// Dropped because no link exists or an endpoint is down.
    pub dropped_link: u64,
    /// Dropped by the probabilistic loss model.
    pub dropped_loss: u64,
}

/// The medium: decides whether and when a transmission arrives.
pub struct Radio {
    pub topology: Topology,
    /// Per-hop latency in µs.
    pub latency_us: u64,
    /// Probability a transmission is lost.
    pub loss: f64,
    /// Motes currently powered off (failure injection).
    pub down: Vec<bool>,
    pub stats: RadioStats,
    rng: StdRng,
}

impl Radio {
    /// Fully connected, lossless medium with fixed latency.
    pub fn ideal(latency_us: u64) -> Self {
        Radio::new(Topology::Full, latency_us, 0.0, 42)
    }

    pub fn new(topology: Topology, latency_us: u64, loss: f64, seed: u64) -> Self {
        Radio {
            topology,
            latency_us,
            loss,
            down: Vec::new(),
            stats: RadioStats::default(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The smallest delay the medium can impose on any transmission —
    /// the *lookahead* of conservative parallel simulation: a packet
    /// emitted at `t` cannot affect any other mote before
    /// `t + min_latency()`, so motes may be stepped independently in
    /// windows of this width (see [`World::run_until_parallel`]).
    ///
    /// [`World::run_until_parallel`]: crate::world::World::run_until_parallel
    pub fn min_latency(&self) -> u64 {
        self.latency_us
    }

    /// Marks a mote as failed (drops everything to/from it).
    pub fn set_down(&mut self, mote: usize, down: bool) {
        if self.down.len() <= mote {
            self.down.resize(mote + 1, false);
        }
        self.down[mote] = down;
    }

    fn is_down(&self, mote: usize) -> bool {
        self.down.get(mote).copied().unwrap_or(false)
    }

    /// Returns the arrival time of the packet, or `None` if it is lost.
    pub fn transmit(&mut self, now: u64, from: usize, to: usize, _p: &Packet) -> Option<u64> {
        self.stats.attempts += 1;
        if self.is_down(from) || self.is_down(to) || !self.topology.connected(from, to) {
            self.stats.dropped_link += 1;
            return None;
        }
        if self.loss > 0.0 && self.rng.gen::<f64>() < self.loss {
            self.stats.dropped_loss += 1;
            return None;
        }
        self.stats.delivered += 1;
        Some(now + self.latency_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_topology_is_directional() {
        let mut r = Radio::new(Topology::Ring { n: 3 }, 100, 0.0, 1);
        let p = Packet::with_value(0, 1, 5);
        assert_eq!(r.transmit(0, 0, 1, &p), Some(100));
        assert_eq!(r.transmit(0, 1, 2, &p), Some(100));
        assert_eq!(r.transmit(0, 2, 0, &p), Some(100));
        assert_eq!(r.transmit(0, 0, 2, &p), None, "no shortcut across the ring");
        assert_eq!(r.transmit(0, 1, 0, &p), None, "ring is one-way");
    }

    #[test]
    fn down_motes_drop_traffic() {
        let mut r = Radio::ideal(10);
        let p = Packet::with_value(0, 1, 1);
        assert!(r.transmit(0, 0, 1, &p).is_some());
        r.set_down(1, true);
        assert!(r.transmit(0, 0, 1, &p).is_none());
        r.set_down(1, false);
        assert!(r.transmit(0, 0, 1, &p).is_some());
    }

    #[test]
    fn loss_is_probabilistic_but_seeded() {
        let mut r1 = Radio::new(Topology::Full, 0, 0.5, 7);
        let mut r2 = Radio::new(Topology::Full, 0, 0.5, 7);
        let p = Packet::with_value(0, 1, 1);
        let a: Vec<_> = (0..100).map(|_| r1.transmit(0, 0, 1, &p).is_some()).collect();
        let b: Vec<_> = (0..100).map(|_| r2.transmit(0, 0, 1, &p).is_some()).collect();
        assert_eq!(a, b, "same seed, same losses");
        let lost = a.iter().filter(|x| !**x).count();
        assert!(lost > 20 && lost < 80, "≈50% loss, got {lost}");
    }
}

//! The persistent shard-worker pool behind [`World::run_until_parallel`].
//!
//! The previous stepper paid a fresh `std::thread::scope` spawn/join per
//! lookahead window — ≈43 µs of pure barrier cost on windows that often
//! held a few microseconds of real work, which is how ~78% of thread-time
//! capacity ended up "barrier-bound" in `ceu-par-stats/v1`. The pool here
//! spawns its workers once; between windows they park in a blocking
//! `recv()` on their own bounded job channel, so a window dispatch is one
//! channel send per active worker and one result receive each — no thread
//! creation, no scheduler churn.
//!
//! Ownership makes this safe without locks: each [`ShardJob`] *moves* its
//! [`Shard`] (heap + SoA mote state) through the channel to the worker
//! and back, so workers never share state. The world checks shards out,
//! dispatches, and checks them back in every window.
//!
//! [`World::run_until_parallel`]: crate::world::World::run_until_parallel

use crate::shard::{Shard, ShardWindowOut};
use crate::world::panic_message;
use std::sync::mpsc::{sync_channel, Receiver, RecvError, SyncSender, TryRecvError};
use std::time::Instant;

/// Bounded spin before a blocking `recv()`. Inter-window gaps are usually
/// a few microseconds of simulation-thread bookkeeping — far shorter than
/// a futex sleep/wake round trip (tens of µs on a busy host), which would
/// otherwise be paid twice per window per worker and show up as
/// barrier-bound thread-time. The bound keeps idle periods (world-event
/// barriers, gaps between `run_until_parallel` calls) from pinning cores:
/// after ~a few tens of µs the receiver parks as before.
///
/// Spinning is only ever a win when every spinner has a core to itself;
/// on an oversubscribed (or single-core) host it *steals* the cycles the
/// simulation thread needs to produce the next batch. [`WorkerPool::new`]
/// therefore disables the spin (0 iterations) unless the machine has
/// strictly more cores than pool workers.
const SPIN_ITERS: u32 = 20_000;

fn recv_spin<T>(rx: &Receiver<T>, spin_iters: u32) -> Result<T, RecvError> {
    for _ in 0..spin_iters {
        match rx.try_recv() {
            Ok(v) => return Ok(v),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return Err(RecvError),
        }
    }
    rx.recv()
}

/// One shard checked out for one window: step it up to `run_end`.
pub(crate) struct ShardJob {
    pub shard: Shard,
    pub run_end: u64,
}

/// A stepped shard coming back from a worker.
pub(crate) struct JobOut {
    pub shard: Shard,
    pub out: ShardWindowOut,
    /// The window bound the shard ran under (for panic context).
    pub run_end: u64,
    /// Wall time spent stepping this shard (0 when stats are off).
    pub busy_ns: u64,
}

/// One window's worth of work for one worker.
struct Batch {
    jobs: Vec<ShardJob>,
    seq_base: u64,
    cpu_slice_us: u64,
    stats_on: bool,
    /// When the simulation thread sent the batch (stats only) — the gap
    /// to the worker's pickup is the channel-wait attribution.
    sent_at: Option<Instant>,
    worker: usize,
}

/// Everything one worker produced for one window.
pub(crate) struct BatchOut {
    pub worker: usize,
    pub jobs: Vec<JobOut>,
    /// Pickup-to-finish wall time over the whole batch (0 when stats off).
    pub busy_ns: u64,
    /// Send-to-pickup latency on the job channel (0 when stats off).
    pub channel_wait_ns: u64,
    /// The worker thread itself panicked outside the per-callback guard
    /// (a scheduler-logic bug, not an application panic): the message, so
    /// the simulation thread can re-raise instead of deadlocking.
    pub died: Option<String>,
}

/// A fixed-size pool of parked shard workers, kept alive across windows
/// (and across `run_until_parallel` calls — the world owns the pool).
pub(crate) struct WorkerPool {
    senders: Vec<SyncSender<Batch>>,
    results_rx: Receiver<BatchOut>,
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Spin budget for the result receive (0 = park immediately).
    spin_iters: u32,
}

impl WorkerPool {
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // workers + the simulation thread must all have a core before
        // busy-waiting beats parking
        let spin_iters = if cores > size { SPIN_ITERS } else { 0 };
        let (results_tx, results_rx) = sync_channel::<BatchOut>(size);
        let mut senders = Vec::with_capacity(size);
        let mut handles = Vec::with_capacity(size);
        for i in 0..size {
            // capacity 1: the simulation thread sends at most one batch
            // per worker per window, so the send never blocks
            let (tx, rx) = sync_channel::<Batch>(1);
            let results_tx = results_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("wsn-shard-{i}"))
                .spawn(move || worker_loop(rx, results_tx, spin_iters))
                .expect("spawn shard worker");
            senders.push(tx);
            handles.push(handle);
        }
        WorkerPool { senders, results_rx, handles, spin_iters }
    }

    pub fn size(&self) -> usize {
        self.senders.len()
    }

    /// Runs one window: sends each non-empty batch to its worker, then
    /// blocks until every one reports back. Panics (on the simulation
    /// thread) if a worker died on a scheduler bug.
    pub fn dispatch(
        &mut self,
        batches: Vec<Vec<ShardJob>>,
        seq_base: u64,
        cpu_slice_us: u64,
        stats_on: bool,
    ) -> Vec<BatchOut> {
        debug_assert!(batches.len() <= self.senders.len());
        let mut expected = 0usize;
        for (worker, jobs) in batches.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            let batch = Batch {
                jobs,
                seq_base,
                cpu_slice_us,
                stats_on,
                sent_at: stats_on.then(Instant::now),
                worker,
            };
            self.senders[worker].send(batch).expect("shard worker hung up");
            expected += 1;
        }
        let mut outs = Vec::with_capacity(expected);
        for _ in 0..expected {
            let out = recv_spin(&self.results_rx, self.spin_iters).expect("shard worker hung up");
            if let Some(msg) = &out.died {
                panic!("shard worker {} died: {msg}", out.worker);
            }
            outs.push(out);
        }
        outs
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // closing the job channels pops every worker out of its recv()
        self.senders.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(rx: Receiver<Batch>, results_tx: SyncSender<BatchOut>, spin_iters: u32) {
    while let Ok(batch) = recv_spin(&rx, spin_iters) {
        let worker = batch.worker;
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_batch(batch)))
            .unwrap_or_else(|payload| BatchOut {
                worker,
                jobs: Vec::new(),
                busy_ns: 0,
                channel_wait_ns: 0,
                died: Some(panic_message(payload)),
            });
        if results_tx.send(out).is_err() {
            break; // the world is gone; shut down
        }
    }
}

fn run_batch(batch: Batch) -> BatchOut {
    let t0 = batch.stats_on.then(Instant::now);
    let channel_wait_ns = match (t0, batch.sent_at) {
        (Some(picked), Some(sent)) => {
            picked.checked_duration_since(sent).map_or(0, |d| d.as_nanos() as u64)
        }
        _ => 0,
    };
    let worker = batch.worker;
    let mut jobs = Vec::with_capacity(batch.jobs.len());
    for ShardJob { mut shard, run_end } in batch.jobs {
        let j0 = batch.stats_on.then(Instant::now);
        let out = shard.run_window(run_end, batch.seq_base, batch.cpu_slice_us);
        let busy_ns = j0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        jobs.push(JobOut { shard, out, run_end, busy_ns });
    }
    let busy_ns = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
    BatchOut { worker, jobs, busy_ns, channel_wait_ns, died: None }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;
    use crate::shard::ShardPlan;
    use crate::world::{order_key, Backend, Fire, Leds, MoteCtx, MoteStats, MoteStatus};

    /// Counts its timer firings and re-arms 100 µs out.
    struct Ticker;

    impl Backend for Ticker {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(100);
        }
        fn deliver(&mut self, _: &mut MoteCtx, _: crate::radio::Packet) {}
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(ctx.now + 100);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn pool_round_trips_shards_through_workers() {
        let radio = Radio::ideal(100);
        let plan = ShardPlan::from_radio(&radio, 4, 2);
        let mut shards: Vec<Shard> = plan
            .ranges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let mut sh = Shard::new(i as u32, a, b, plan.lookahead_us[i]);
                for m in a..b {
                    sh.push_mote(
                        Box::new(Ticker),
                        MoteStatus::Up,
                        Some(100),
                        false,
                        0,
                        0,
                        0,
                        MoteStats::default(),
                        Leds::default(),
                    );
                    sh.heap.push(
                        100,
                        order_key(m as u64 + 1, 1, m as u64 + 1),
                        Fire::Timer { mote: m },
                    );
                }
                sh
            })
            .collect();
        let mut pool = WorkerPool::new(2);
        assert_eq!(pool.size(), 2);
        // two windows back-to-back over the same parked workers
        for (window, run_end) in [(0u64, 200u64), (1, 300)] {
            let batches: Vec<Vec<ShardJob>> = shards
                .drain(..)
                .enumerate()
                .map(|(k, shard)| {
                    let _ = k;
                    vec![ShardJob { shard, run_end }]
                })
                .collect();
            let mut outs = pool.dispatch(batches, 1_000 * (window + 1), 100, true);
            outs.sort_by_key(|b| b.worker);
            let mut got: Vec<Shard> = Vec::new();
            for bout in outs {
                assert!(bout.died.is_none());
                for job in bout.jobs {
                    // each mote fired once and re-armed inside the window
                    assert_eq!(job.out.events, job.shard.n() as u64);
                    assert!(job.out.seq_used > 1_000 * (window + 1));
                    got.push(job.shard);
                }
            }
            got.sort_by_key(|s| s.id);
            for sh in &got {
                for l in 0..sh.n() {
                    assert_eq!(sh.stats[l].timer_firings, window + 1);
                    assert!(sh.timer_at[l].is_some(), "re-armed past the window");
                }
            }
            shards = got;
        }
    }
}

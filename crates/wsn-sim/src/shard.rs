//! Topology-sharded conservative-PDES core.
//!
//! The parallel stepper used to treat every mote as its own unit of work:
//! each lookahead window re-batched all motes, spawned a fresh thread
//! scope, and sized every window by the *global* minimum radio latency.
//! `ceu-par-stats/v1` showed where that goes to die — ~78% of thread-time
//! capacity was barrier-bound (BENCH_PR6.json).
//!
//! This module is the replacement substrate:
//!
//! * [`ShardPlan`] partitions the mote roster into **shards derived from
//!   the radio topology** — cluster-aligned ranges for
//!   [`Topology::Clusters`], connected-component blocks for
//!   [`Topology::Links`], plain range chunks for meshes/rings where every
//!   cut is equivalent.
//! * Each [`Shard`] owns its motes' **hot state as struct-of-arrays**
//!   (status, pending timer, skew, counters — scanned linearly by the
//!   worker stepping the shard) plus **its own [`EventHeap`]** holding
//!   every pending firing addressed to its motes.
//! * Each shard carries a **per-shard lookahead**: a lower bound on the
//!   latency of every link whose *destination* lies in the shard. A shard
//!   whose incoming links are all slow may step further per window than
//!   the global minimum would allow (see the proof sketch in DESIGN.md).
//!
//! Cross-shard packet handoff stays at the window barrier: all sends are
//! routed through the world's single radio RNG in canonical
//! `(time, sender, emission)` order, which is what keeps the simulation
//! bit-identical to the sequential stepper at any thread count.

use crate::radio::{Packet, Radio, Topology};
use crate::sched::EventHeap;
use crate::world::{
    order_key, panic_message, skewed, unskew, Backend, Fire, Leds, MoteCtx, MoteId, MoteStats,
    MoteStatus, WorldTraceEvent,
};
use ceu::runtime::{FlightRecorder, TraceEvent};

/// Default shard-count target for [`ShardPlan::from_radio`] (the world's
/// `set_target_shards` overrides it). Eight keeps a handful of shards per
/// worker at common thread counts, so round-robin assignment stays
/// balanced without a scheduler.
pub const DEFAULT_TARGET_SHARDS: usize = 8;

/// How a world's motes are split into shards, plus each shard's lookahead.
///
/// Shards are contiguous mote-id ranges: the partitioners below only pick
/// *where the boundaries fall*. That is sufficient — correctness never
/// depends on the cut (every packet crosses the merge barrier regardless);
/// the cut only decides how tight each shard's lookahead can be and how
/// evenly work spreads across workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Shard id → contiguous mote-id range `[start, end)`, ascending and
    /// covering the whole roster.
    pub ranges: Vec<(MoteId, MoteId)>,
    /// Mote id → owning shard.
    pub mote_shard: Vec<u32>,
    /// Shard id → lookahead (µs): a lower bound on the latency of every
    /// topology link whose destination lies in the shard. Falls back to
    /// the radio's global `min_latency()` when a shard has no incoming
    /// links at all (such a shard never receives anything, so any finite
    /// bound is safe — and the global bound keeps reboot clamping
    /// identical to the unsharded stepper).
    pub lookahead_us: Vec<u64>,
}

impl ShardPlan {
    /// Partitions `n_motes` motes into about `target_shards` shards along
    /// the radio topology and computes each shard's lookahead.
    pub fn from_radio(radio: &Radio, n_motes: usize, target_shards: usize) -> ShardPlan {
        let ranges = partition(radio, n_motes, target_shards);
        let mut mote_shard = vec![0u32; n_motes];
        for (s, &(a, b)) in ranges.iter().enumerate() {
            for m in mote_shard.iter_mut().take(b).skip(a) {
                *m = s as u32;
            }
        }
        let lookahead_us = lookaheads(radio, &ranges, &mote_shard);
        ShardPlan { ranges, mote_shard, lookahead_us }
    }

    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// The shard owning `mote`.
    pub fn shard_of(&self, mote: MoteId) -> usize {
        self.mote_shard[mote] as usize
    }
}

/// `[start, end)` chunks of at most `cap` motes.
fn chunk_ranges(start: usize, end: usize, cap: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut a = start;
    while a < end {
        let b = (a + cap).min(end);
        out.push((a, b));
        a = b;
    }
    out
}

/// Picks the shard boundaries for `n` motes under `radio`'s topology.
fn partition(radio: &Radio, n: usize, target: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let cap = n.div_ceil(target.max(1)).max(1);
    match &radio.topology {
        // every cut of a full mesh or a ring is equivalent (uniform link
        // class), so plain range chunks are as good as any min-cut
        Topology::Full | Topology::Ring { .. } => chunk_ranges(0, n, cap),
        // align boundaries to cluster edges so a shard's incoming links
        // are its clusters' own intra latencies (plus slow bridges);
        // oversized clusters split into cap-sized chunks — still safe,
        // the halves share the cluster's intra latency as lookahead
        Topology::Clusters { size, .. } => {
            let size = (*size).max(1);
            let mut out = Vec::new();
            let (mut cur_start, mut cur_len) = (0usize, 0usize);
            let mut c = 0usize;
            while c * size < n {
                let cl_start = c * size;
                let cl_end = ((c + 1) * size).min(n);
                let len = cl_end - cl_start;
                if len > cap {
                    if cur_len > 0 {
                        out.push((cur_start, cl_start));
                        cur_len = 0;
                    }
                    out.extend(chunk_ranges(cl_start, cl_end, cap));
                    cur_start = cl_end;
                } else if cur_len + len > cap {
                    out.push((cur_start, cl_start));
                    cur_start = cl_start;
                    cur_len = len;
                } else {
                    if cur_len == 0 {
                        cur_start = cl_start;
                    }
                    cur_len += len;
                }
                c += 1;
            }
            if cur_len > 0 {
                out.push((cur_start, n));
            }
            out
        }
        // weakly-connected components, merged into contiguous blocks
        // (a component's id interval may straddle others'), then packed
        // into cap-sized shards; a block bigger than cap stays whole so
        // no component is ever cut
        Topology::Links(edges) => {
            let mut parent: Vec<usize> = (0..n).collect();
            fn find(parent: &mut [usize], mut x: usize) -> usize {
                while parent[x] != x {
                    parent[x] = parent[parent[x]];
                    x = parent[x];
                }
                x
            }
            for &(a, b) in edges {
                if a < n && b < n {
                    let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                    if ra != rb {
                        parent[ra.max(rb)] = ra.min(rb);
                    }
                }
            }
            // block boundaries: positions no component interval crosses
            let mut comp_max = vec![0usize; n];
            for m in 0..n {
                let r = find(&mut parent, m);
                comp_max[r] = comp_max[r].max(m);
            }
            let mut blocks: Vec<(usize, usize)> = Vec::new();
            let mut a = 0usize;
            let mut reach = 0usize;
            for m in 0..n {
                reach = reach.max(comp_max[find(&mut parent, m)]);
                if reach == m {
                    blocks.push((a, m + 1));
                    a = m + 1;
                }
            }
            let mut out = Vec::new();
            let (mut cur_start, mut cur_len) = (0usize, 0usize);
            for (ba, bb) in blocks {
                let len = bb - ba;
                if cur_len > 0 && cur_len + len > cap {
                    out.push((cur_start, ba));
                    cur_start = ba;
                    cur_len = 0;
                }
                if cur_len == 0 {
                    cur_start = ba;
                }
                cur_len += len;
            }
            if cur_len > 0 {
                out.push((cur_start, n));
            }
            out
        }
    }
}

/// Per-shard lookahead: for each shard, a lower bound on the latency of
/// every link whose destination lies in it. Exact for `Links` (edge walk)
/// and `Clusters` (structural); the global minimum — always a valid lower
/// bound — for the uniform-cut topologies.
fn lookaheads(radio: &Radio, ranges: &[(usize, usize)], mote_shard: &[u32]) -> Vec<u64> {
    let global = radio.min_latency();
    let n = mote_shard.len();
    let mut la = vec![u64::MAX; ranges.len()];
    match &radio.topology {
        Topology::Full | Topology::Ring { .. } => {
            return vec![global; ranges.len()];
        }
        Topology::Links(edges) => {
            for &(u, v) in edges {
                if u < n && v < n {
                    let s = mote_shard[v] as usize;
                    la[s] = la[s].min(radio.latency_of(u, v));
                }
            }
        }
        Topology::Clusters { clusters, size } => {
            let size = (*size).max(1);
            for (s, &(a, b)) in ranges.iter().enumerate() {
                let mut c = a / size;
                while c * size < b && c < *clusters {
                    let cl_start = c * size;
                    let cl_end = ((c + 1) * size).min(n);
                    // an intra-mesh link into this shard exists when the
                    // cluster has ≥ 2 motes (source may lie outside the
                    // shard if the cluster was split)
                    if cl_end - cl_start >= 2 {
                        let dst = a.max(cl_start);
                        let src = if dst == cl_start { cl_start + 1 } else { cl_start };
                        la[s] = la[s].min(radio.latency_of(src, dst));
                    }
                    // the bridge from the previous cluster lands on this
                    // cluster's first mote
                    if *clusters >= 2 && cl_start >= a && cl_start < b {
                        let prev = (c + *clusters - 1) % *clusters;
                        let prev_last = prev * size + (size - 1);
                        if prev_last < n {
                            la[s] = la[s].min(radio.latency_of(prev_last, cl_start));
                        }
                    }
                    c += 1;
                }
            }
        }
    }
    la.into_iter().map(|x| if x == u64::MAX { global } else { x }).collect()
}

/// One shard of the world: a contiguous mote-id range, its pending events,
/// and its motes' hot state laid out struct-of-arrays so the worker that
/// steps the shard touches dense, same-typed columns instead of striding
/// across fat per-mote structs.
pub(crate) struct Shard {
    pub id: u32,
    /// Mote-id range `[base, end)`.
    pub base: MoteId,
    pub end: MoteId,
    /// Lower bound on every incoming link latency (µs) — how far past the
    /// window start this shard may safely run.
    pub lookahead_us: u64,
    /// Every pending firing addressed to this shard's motes.
    pub heap: EventHeap<Fire>,
    // --- SoA hot state, indexed by `mote - base` ---
    pub backends: Vec<Box<dyn Backend>>,
    pub status: Vec<MoteStatus>,
    pub timer_at: Vec<Option<u64>>,
    pub cpu_scheduled: Vec<bool>,
    pub skew_ppm: Vec<i64>,
    pub trace_seq: Vec<u64>,
    pub crashes: Vec<u32>,
    pub stats: Vec<MoteStats>,
    pub leds: Vec<Leds>,
    /// Per-window snapshot of `radio.down` for this shard's motes
    /// (refreshed by the simulation thread only while any mote is down).
    pub down: Vec<bool>,
    /// Whether the last [`refresh_down`](Shard::refresh_down) left any
    /// `true` in `down` — tells the world the snapshot needs one more
    /// refresh even after the radio's down set empties out.
    pub has_down: bool,
    /// Always-on flight recorder (None = off). Shard-owned so recording
    /// never crosses a shard boundary: it travels with the shard when a
    /// worker checks it out, and it consumes exactly the shard's slice of
    /// the canonical trace stream — which is what keeps recorded content
    /// bit-identical between the sequential and parallel steppers.
    pub recorder: Option<FlightRecorder>,
    /// Whether the world keeps a unified trace: when `false`, windows skip
    /// building [`WorldTraceEvent`]s the merge would only drop (a recorder
    /// can still be live — it consumes the stream shard-locally).
    pub trace_on: bool,
    /// Persistent per-callback VM-event scratch, lent to each [`MoteCtx`]
    /// and drained in place — steady-state tracing allocates nothing here.
    pub vm_scratch: Vec<TraceEvent>,
    /// Scratch: per-mote send-emission counter, reset each window.
    send_idx: Vec<u32>,
}

/// Everything one shard produced during a parallel window; merged back on
/// the simulation thread in canonical `(time, mote, emission)` order.
pub(crate) struct ShardWindowOut {
    pub shard: u32,
    /// `(emit_us, from, per-mote emission index, to, packet)` — the
    /// cross-shard (and intra-shard) packet handoff, routed through the
    /// world's single radio RNG at the merge barrier.
    pub sends: Vec<(u64, MoteId, usize, MoteId, Packet)>,
    /// In-window machine crashes: `(crash_us, mote, sends emitted first)`.
    pub crashes: Vec<(u64, MoteId, usize)>,
    pub delivered: u64,
    pub cpu_slices: u64,
    pub dropped_in_flight: u64,
    /// Firings popped inside the window (incl. locally scheduled ones).
    pub events: u64,
    pub trace: Vec<WorldTraceEvent>,
    /// Highest scheduling seq this shard's worker assigned (`seq_base` if
    /// none) — the world bumps its counter past the maximum at the merge.
    pub seq_used: u64,
    /// A backend panicked: `(mote, message)`. The shard stops stepping and
    /// the simulation thread re-raises with window context.
    pub panicked: Option<(MoteId, String)>,
}

impl Shard {
    pub fn new(id: u32, base: MoteId, end: MoteId, lookahead_us: u64) -> Self {
        let n = end - base;
        Shard {
            id,
            base,
            end,
            lookahead_us,
            heap: EventHeap::new(),
            backends: Vec::with_capacity(n),
            status: Vec::with_capacity(n),
            timer_at: Vec::with_capacity(n),
            cpu_scheduled: Vec::with_capacity(n),
            skew_ppm: Vec::with_capacity(n),
            trace_seq: Vec::with_capacity(n),
            crashes: Vec::with_capacity(n),
            stats: Vec::with_capacity(n),
            leds: Vec::with_capacity(n),
            down: Vec::with_capacity(n),
            has_down: false,
            recorder: None,
            trace_on: false,
            vm_scratch: Vec::new(),
            send_idx: Vec::new(),
        }
    }

    /// Stand-in left in the world while the real shard is checked out to a
    /// worker. Touching it is a bug; its empty columns panic loudly.
    pub fn placeholder(id: u32) -> Self {
        Shard::new(id, 0, 0, 0)
    }

    /// Appends one mote's state columns (used when (re)building shards).
    #[allow(clippy::too_many_arguments)]
    pub fn push_mote(
        &mut self,
        backend: Box<dyn Backend>,
        status: MoteStatus,
        timer_at: Option<u64>,
        cpu_scheduled: bool,
        skew_ppm: i64,
        trace_seq: u64,
        crashes: u32,
        stats: MoteStats,
        leds: Leds,
    ) {
        self.backends.push(backend);
        self.status.push(status);
        self.timer_at.push(timer_at);
        self.cpu_scheduled.push(cpu_scheduled);
        self.skew_ppm.push(skew_ppm);
        self.trace_seq.push(trace_seq);
        self.crashes.push(crashes);
        self.stats.push(stats);
        self.leds.push(leds);
        self.down.push(false);
    }

    pub fn n(&self) -> usize {
        self.end - self.base
    }

    #[inline]
    pub fn local(&self, mote: MoteId) -> usize {
        debug_assert!(mote >= self.base && mote < self.end, "mote {mote} not in shard {}", self.id);
        mote - self.base
    }

    /// Re-snapshots the radio's power state for this shard's motes.
    pub fn refresh_down(&mut self, radio: &Radio) {
        self.has_down = false;
        for (l, d) in self.down.iter_mut().enumerate() {
            *d = radio.is_down(self.base + l);
            self.has_down |= *d;
        }
    }

    /// Steps this shard through `[its current head, run_end)`: pops its own
    /// heap in `(time, lane, seq)` order, runs backend callbacks, and
    /// pushes the timers/CPU slices they request straight back into the
    /// heap (in-window ones fire later in the same call; post-window ones
    /// wait for a future window). Packet sends and crash side effects that
    /// touch shared state are returned for the deterministic merge.
    ///
    /// Mirrors the sequential stepper's per-event logic exactly — that, the
    /// lane-major equal-time order, and the merge-barrier radio are what
    /// make the sharded run bit-identical to `World::run_until`.
    pub fn run_window(&mut self, run_end: u64, seq_base: u64, cpu_slice_us: u64) -> ShardWindowOut {
        let mut out = ShardWindowOut {
            shard: self.id,
            sends: Vec::new(),
            crashes: Vec::new(),
            delivered: 0,
            cpu_slices: 0,
            dropped_in_flight: 0,
            events: 0,
            trace: Vec::new(),
            seq_used: seq_base,
            panicked: None,
        };
        self.send_idx.clear();
        self.send_idx.resize(self.n(), 0);
        let window_start = self.heap.peek_key().map(|(at, _)| at);
        let mut seq = seq_base;
        while let Some((at, _)) = self.heap.peek_key() {
            if at >= run_end {
                break;
            }
            let (at, _, fire) = self.heap.pop().expect("peeked");
            out.events += 1;
            let now = at;
            let mote = match &fire {
                Fire::Deliver { to, .. } => *to,
                Fire::Timer { mote } | Fire::Cpu { mote } => *mote,
                Fire::Fault { .. } | Fire::Reboot { .. } => {
                    unreachable!("world fires never enter a shard heap")
                }
            };
            let l = self.local(mote);
            if matches!(&fire, Fire::Deliver { .. }) && (!self.status[l].is_up() || self.down[l]) {
                // down at arrival (crashed earlier — this window or a past
                // one — or powered off): the packet drops in flight
                out.dropped_in_flight += 1;
                self.stats[l].dropped_in_flight += 1;
                continue;
            }
            if !self.status[l].is_up() {
                continue; // timers/CPU slices died with the crash
            }
            enum Cb {
                Deliver(Packet),
                Timer,
                Cpu,
            }
            let cb = match fire {
                Fire::Deliver { packet, .. } => {
                    out.delivered += 1;
                    self.stats[l].received += 1;
                    Cb::Deliver(packet)
                }
                Fire::Timer { .. } => {
                    if self.timer_at[l] == Some(at) {
                        self.timer_at[l] = None;
                        self.stats[l].timer_firings += 1;
                        Cb::Timer
                    } else {
                        continue; // stale (re-requested or crashed)
                    }
                }
                Fire::Cpu { .. } => {
                    out.cpu_slices += 1;
                    self.stats[l].cpu_slices += 1;
                    self.cpu_scheduled[l] = false;
                    Cb::Cpu
                }
                Fire::Fault { .. } | Fire::Reboot { .. } => unreachable!(),
            };
            let mut ctx = MoteCtx::new(
                mote,
                skewed(now, self.skew_ppm[l]),
                &mut self.leds[l],
                &mut self.vm_scratch,
            );
            let backend = self.backends[l].as_mut();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match cb {
                Cb::Deliver(p) => backend.deliver(&mut ctx, p),
                Cb::Timer => backend.timer(&mut ctx),
                Cb::Cpu => backend.cpu(&mut ctx),
            }));
            if let Err(payload) = result {
                // surface with mote context on the simulation thread; the
                // worker itself stays alive for the next window
                out.panicked = Some((mote, panic_message(payload)));
                break;
            }
            let outbox = std::mem::take(&mut ctx.outbox);
            let timer_request = ctx.timer_request;
            let wants_cpu = ctx.wants_cpu;
            let failure = ctx.take_failure();
            drop(ctx);
            if self.trace_on || self.recorder.is_some() {
                for event in &self.vm_scratch {
                    self.trace_seq[l] += 1;
                    if let Some(rec) = &mut self.recorder {
                        rec.record(now, mote, self.trace_seq[l], event);
                    }
                    if self.trace_on {
                        out.trace.push(WorldTraceEvent {
                            world_time_us: now,
                            mote,
                            seq: self.trace_seq[l],
                            event: event.normalized(),
                        });
                    }
                }
            } else {
                // mirror the sequential stepper: the counter advances even
                // with no consumer, so enabling one later stays bit-stable
                self.trace_seq[l] += self.vm_scratch.len() as u64;
            }
            self.vm_scratch.clear();
            if let Some(cause) = failure {
                // mirror of World::crash_mote, minus the shared state
                // (radio down + reboot scheduling), which the merge applies
                // at this exact point of the (time, mote, emission) sweep
                self.trace_seq[l] += 1;
                let crashed = TraceEvent::MoteCrashed {
                    kind: cause.kind,
                    line: cause.span.line,
                    col: cause.span.col,
                };
                if let Some(rec) = &mut self.recorder {
                    rec.record(now, mote, self.trace_seq[l], &crashed);
                }
                if self.trace_on {
                    out.trace.push(WorldTraceEvent {
                        world_time_us: now,
                        mote,
                        seq: self.trace_seq[l],
                        event: crashed.normalized(),
                    });
                }
                self.status[l] = MoteStatus::Crashed { at: now, cause };
                self.crashes[l] += 1;
                self.stats[l].crashes += 1;
                self.timer_at[l] = None;
                self.cpu_scheduled[l] = false;
                out.crashes.push((now, mote, self.send_idx[l] as usize));
                continue; // discard this callback's sends / timer / CPU asks
            }
            for (to, packet) in outbox {
                self.stats[l].sent += 1;
                let i = self.send_idx[l] as usize;
                self.send_idx[l] += 1;
                out.sends.push((now, mote, i, to, packet));
            }
            if let Some(req) = timer_request {
                let req = unskew(req, self.skew_ppm[l]).max(now);
                let better = match self.timer_at[l] {
                    Some(t) => req < t,
                    None => true,
                };
                if better {
                    self.timer_at[l] = Some(req);
                    seq += 1;
                    self.heap.push(req, order_key(mote as u64 + 1, 1, seq), Fire::Timer { mote });
                }
            }
            if wants_cpu && !self.cpu_scheduled[l] {
                self.cpu_scheduled[l] = true;
                seq += 1;
                let cat = now + cpu_slice_us;
                self.heap.push(cat, order_key(mote as u64 + 1, 1, seq), Fire::Cpu { mote });
            }
        }
        out.seq_used = seq;
        if out.events > 0 {
            if let (Some(rec), Some(start)) = (&mut self.recorder, window_start) {
                rec.record_window(start, run_end, out.events);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::LinkLatency;

    fn assert_exact_partition(plan: &ShardPlan, n: usize) {
        // ranges ascend, are contiguous, and cover [0, n)
        let mut covered = 0usize;
        for (s, &(a, b)) in plan.ranges.iter().enumerate() {
            assert_eq!(a, covered, "shard {s} does not start where the previous ended");
            assert!(b > a, "shard {s} is empty");
            covered = b;
            for m in a..b {
                assert_eq!(plan.mote_shard[m] as usize, s, "mote {m} maps to the wrong shard");
            }
        }
        assert_eq!(covered, n, "the shards must cover every mote exactly once");
        assert_eq!(plan.lookahead_us.len(), plan.ranges.len());
    }

    #[test]
    fn every_mote_lands_in_exactly_one_shard() {
        let cases: Vec<(Radio, usize)> = vec![
            (Radio::ideal(500), 24),
            (Radio::new(Topology::Ring { n: 10 }, 300, 0.0, 1), 10),
            (Radio::clustered(4, 6, vec![500, 900, 700, 600], 5_000, 0.0, 1), 24),
            (Radio::clustered(3, 4, vec![200], 9_000, 0.0, 1), 11), // truncated last cluster
            (Radio::new(Topology::Links(vec![(0, 1), (2, 3), (3, 4), (6, 5)]), 250, 0.0, 1), 7),
        ];
        for (radio, n) in &cases {
            for target in [1, 2, 8, 64] {
                let plan = ShardPlan::from_radio(radio, *n, target);
                assert_exact_partition(&plan, *n);
            }
        }
        assert!(ShardPlan::from_radio(&Radio::ideal(10), 0, 8).is_empty());
    }

    #[test]
    fn clustered_partitions_align_to_cluster_boundaries() {
        // 4 clusters × 6 motes, target 4: one shard per cluster
        let radio = Radio::clustered(4, 6, vec![500, 900, 700, 600], 5_000, 0.0, 1);
        let plan = ShardPlan::from_radio(&radio, 24, 4);
        assert_eq!(plan.ranges, vec![(0, 6), (6, 12), (12, 18), (18, 24)]);
        // per-shard lookahead = the cluster's own intra latency (bridges
        // are slower and don't bind)
        assert_eq!(plan.lookahead_us, vec![500, 900, 700, 600]);
        // target 2: two clusters per shard, lookahead = min of the pair
        let plan = ShardPlan::from_radio(&radio, 24, 2);
        assert_eq!(plan.ranges, vec![(0, 12), (12, 24)]);
        assert_eq!(plan.lookahead_us, vec![500, 600]);
        // target 8 splits clusters (cap 3) but boundaries stay inside
        // cluster spans and the halves keep the cluster's intra lookahead
        let plan = ShardPlan::from_radio(&radio, 24, 8);
        assert_eq!(plan.ranges.len(), 8);
        assert_exact_partition(&plan, 24);
        assert_eq!(plan.lookahead_us[0], 500);
        assert_eq!(plan.lookahead_us[2], 900);
    }

    #[test]
    fn link_partitions_never_cut_a_component() {
        // components {0,1,4} (interval straddles 2,3), {2,3}, {5}, {6,7}
        let radio =
            Radio::new(Topology::Links(vec![(0, 1), (1, 4), (2, 3), (6, 7), (7, 6)]), 250, 0.0, 1);
        for target in [1, 2, 4, 8] {
            let plan = ShardPlan::from_radio(&radio, 8, target);
            assert_exact_partition(&plan, 8);
            for &(u, v) in &[(0usize, 1usize), (1, 4), (2, 3), (6, 7)] {
                assert_eq!(
                    plan.mote_shard[u], plan.mote_shard[v],
                    "edge ({u},{v}) cut at target {target}"
                );
            }
        }
        // the {0,1,4} interval forces 0..5 into one shard at high targets
        let plan = ShardPlan::from_radio(&radio, 8, 8);
        assert_eq!(plan.mote_shard[0], plan.mote_shard[4]);
    }

    /// Brute-force minimum incoming link latency per shard, straight from
    /// the topology's own connectivity.
    fn true_min_incoming(radio: &Radio, plan: &ShardPlan, n: usize) -> Vec<u64> {
        let mut best = vec![u64::MAX; plan.len()];
        for from in 0..n {
            for to in 0..n {
                if radio.topology.connected(from, to) {
                    let s = plan.shard_of(to);
                    best[s] = best[s].min(radio.latency_of(from, to));
                }
            }
        }
        best
    }

    #[test]
    fn per_shard_lookahead_never_exceeds_true_min_incoming_latency() {
        // property test over seeded pseudo-random configurations: the
        // computed lookahead must be a valid lower bound for every link
        // into the shard (that is the entire safety argument), and when a
        // shard has no incoming links it falls back to the global minimum
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = move |bound: u64| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for case in 0..200 {
            let radio = match case % 3 {
                0 => {
                    let clusters = 1 + next(5) as usize;
                    let size = 1 + next(6) as usize;
                    let intra: Vec<u64> = (0..1 + next(4)).map(|_| 100 + next(900)).collect();
                    Radio::clustered(clusters, size, intra, 100 + next(9_000), 0.0, 1)
                }
                1 => {
                    let n = 2 + next(20) as usize;
                    let edges: Vec<(usize, usize)> = (0..next(30))
                        .map(|_| (next(n as u64) as usize, next(n as u64) as usize))
                        .collect();
                    Radio::new(Topology::Links(edges), 100 + next(900), 0.0, 1)
                }
                _ => {
                    Radio::new(Topology::Ring { n: 2 + next(20) as usize }, 100 + next(900), 0.0, 1)
                }
            };
            let n = match &radio.topology {
                Topology::Clusters { clusters, size } => clusters * size,
                Topology::Ring { n } => *n,
                Topology::Links(_) => 21,
                Topology::Full => 12,
            };
            let target = 1 + next(8) as usize;
            let plan = ShardPlan::from_radio(&radio, n, target);
            assert_exact_partition(&plan, n);
            let truth = true_min_incoming(&radio, &plan, n);
            for (s, (&la, &truth)) in plan.lookahead_us.iter().zip(&truth).enumerate() {
                if truth == u64::MAX {
                    assert_eq!(la, radio.min_latency(), "case {case} shard {s}: isolated fallback");
                } else {
                    assert!(
                        la <= truth,
                        "case {case} shard {s}: lookahead {la} exceeds true min incoming {truth}"
                    );
                    assert!(la >= radio.min_latency(), "case {case} shard {s}: below global min");
                }
            }
        }
    }

    #[test]
    fn cross_shard_latency_covers_the_destination_shard_lookahead() {
        // the merge-safety invariant directly: every link (cross-shard or
        // not) must pay at least the destination shard's lookahead
        let radio = Radio::clustered(4, 6, vec![500, 900, 700, 600], 5_000, 0.0, 1);
        let plan = ShardPlan::from_radio(&radio, 24, 4);
        for from in 0..24 {
            for to in 0..24 {
                if radio.topology.connected(from, to) {
                    let s = plan.shard_of(to);
                    assert!(
                        radio.latency_of(from, to) >= plan.lookahead_us[s],
                        "link {from}→{to} undercuts shard {s}'s lookahead"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_media_keep_the_global_lookahead_everywhere() {
        let radio = Radio::ideal(1_000);
        let plan = ShardPlan::from_radio(&radio, 16, 4);
        assert!(matches!(radio.link_latency, LinkLatency::Uniform));
        assert!(plan.lookahead_us.iter().all(|&la| la == 1_000));
    }
}

//! The TinyOS-style Céu binding: runs a compiled Céu program on a
//! simulated mote. Mirrors the paper's TinyOS integration — every OS
//! service is a `_C` call, every OS event becomes a Céu input event.
//!
//! Provided C surface (what the ring demo uses):
//!
//! * `_TOS_NODE_ID` — the mote id;
//! * `_Radio_getPayload(msg)` — pointer into a message buffer;
//! * `_Radio_send(dst, msg)` — transmit;
//! * `_Leds_set(mask)`, `_Leds_led0Toggle()`/`1`/`2`;
//! * input event `Radio_receive` carrying a `_message_t*`.

use crate::radio::Packet;
use crate::world::{Backend, CrashCause, MoteCtx};
use ceu::ast::EventId;
use ceu::runtime::{Host, HostResult, Machine, Ptr, RuntimeError, TraceMask, Value};
use ceu::CompiledProgram;
use std::collections::HashMap;

/// Pending LED operation, applied to the simulated LEDs after a reaction.
#[derive(Clone, Copy, Debug)]
enum LedOp {
    Set(u8),
    Toggle(u8),
}

/// The "C world" of a TinyOS mote.
pub struct TosHost {
    node_id: i64,
    /// Message buffers addressed by host handles.
    msgs: Vec<Vec<i64>>,
    /// Source mote of each received buffer (for `_Radio_source`).
    msg_srcs: Vec<i64>,
    /// Maps `&localMsg` data addresses to buffers (for `_message_t msg;`).
    by_data_addr: HashMap<usize, usize>,
    outbox: Vec<(usize, Packet)>,
    led_ops: Vec<LedOp>,
    /// Extra host functions (per-experiment hooks), name → handler.
    #[allow(clippy::type_complexity)]
    pub extra: HashMap<String, Box<dyn FnMut(&[Value]) -> Value + Send>>,
}

impl TosHost {
    pub fn new(node_id: i64) -> Self {
        TosHost {
            node_id,
            msgs: Vec::new(),
            msg_srcs: Vec::new(),
            by_data_addr: HashMap::new(),
            outbox: Vec::new(),
            led_ops: Vec::new(),
            extra: HashMap::new(),
        }
    }

    fn alloc_msg(&mut self, payload: Vec<i64>) -> usize {
        self.alloc_msg_from(payload, -1)
    }

    fn alloc_msg_from(&mut self, payload: Vec<i64>, src: i64) -> usize {
        self.msgs.push(payload);
        self.msg_srcs.push(src);
        self.msgs.len() - 1
    }

    /// Resolves a `_message_t*`-ish value to a buffer handle.
    fn msg_handle(&mut self, v: &Value) -> HostResult<usize> {
        match v {
            Value::Ptr(Ptr::Host(h)) => Ok(*h as usize),
            // `&msg` on a Céu-declared `_message_t msg`: lazily back it
            // with a real buffer, keyed by its data address
            Value::Ptr(Ptr::Data(a)) => {
                if let Some(&h) = self.by_data_addr.get(a) {
                    return Ok(h);
                }
                let h = self.alloc_msg(vec![0]);
                self.by_data_addr.insert(*a, h);
                Ok(h)
            }
            other => Err(format!("not a message reference: {other}")),
        }
    }
}

impl Host for TosHost {
    fn call(&mut self, name: &str, args: &[Value]) -> HostResult<Value> {
        match name {
            "Radio_getPayload" => {
                let h = self.msg_handle(args.first().ok_or("getPayload needs a message")?)?;
                Ok(Value::Ptr(Ptr::Host(h as u64)))
            }
            "Radio_send" => {
                let dst = args
                    .first()
                    .and_then(|v| v.as_int())
                    .ok_or("Radio_send needs a destination")?;
                let h = self.msg_handle(args.get(1).ok_or("Radio_send needs a message")?)?;
                let payload = self.msgs[h].clone();
                self.outbox.push((
                    dst as usize,
                    Packet::new(self.node_id as usize, dst as usize, payload),
                ));
                Ok(Value::Int(0))
            }
            "Radio_source" => {
                let h = self.msg_handle(args.first().ok_or("Radio_source needs a message")?)?;
                Ok(Value::Int(self.msg_srcs.get(h).copied().unwrap_or(-1)))
            }
            "Leds_set" => {
                let mask = args.first().and_then(|v| v.as_int()).unwrap_or(0) as u8;
                self.led_ops.push(LedOp::Set(mask));
                Ok(Value::Int(0))
            }
            "Leds_led0Toggle" => {
                self.led_ops.push(LedOp::Toggle(0));
                Ok(Value::Int(0))
            }
            "Leds_led1Toggle" => {
                self.led_ops.push(LedOp::Toggle(1));
                Ok(Value::Int(0))
            }
            "Leds_led2Toggle" => {
                self.led_ops.push(LedOp::Toggle(2));
                Ok(Value::Int(0))
            }
            other => match self.extra.get_mut(other) {
                Some(f) => Ok(f(args)),
                None => Err(format!("TinyOS binding has no function `_{other}`")),
            },
        }
    }

    fn global(&mut self, name: &str) -> HostResult<Value> {
        match name {
            "TOS_NODE_ID" => Ok(Value::Int(self.node_id)),
            other => Err(format!("TinyOS binding has no global `_{other}`")),
        }
    }

    fn deref(&mut self, handle: u64) -> HostResult<Value> {
        self.msgs
            .get(handle as usize)
            .and_then(|m| m.first())
            .map(|&v| Value::Int(v))
            .ok_or_else(|| format!("bad message handle {handle}"))
    }

    fn store(&mut self, handle: u64, v: Value) -> HostResult<()> {
        let cell = self
            .msgs
            .get_mut(handle as usize)
            .and_then(|m| m.first_mut())
            .ok_or_else(|| format!("bad message handle {handle}"))?;
        *cell = v.as_int().ok_or("payload must be an integer")?;
        Ok(())
    }
}

/// A mote running a Céu program.
pub struct CeuMote {
    machine: Machine,
    host: TosHost,
    node_id: i64,
    radio_evt: Option<EventId>,
    /// go_async slices granted per CPU slice from the world.
    pub async_per_slice: u32,
    /// Largest gap observed between world time and the machine's clock at
    /// the moment a callback arrived (how stale the mote's view of time
    /// was, before the pre-reaction `go_time` resync).
    max_clock_lag_us: u64,
    /// Whether the machine's event buffer is on; its contents are drained
    /// into [`MoteCtx::vm_events`] so the world can merge a unified trace.
    trace: bool,
    /// Remembered trace mask, re-armed on reboot alongside the buffer.
    trace_mask: TraceMask,
    /// Remembered watchdog limits, re-armed on reboot.
    reaction_limits: Option<(Option<u64>, Option<u32>)>,
}

impl CeuMote {
    pub fn new(program: CompiledProgram, node_id: i64) -> Self {
        Self::from_shared(std::sync::Arc::new(program), node_id)
    }

    /// Builds a mote over a *shared* compiled artifact: one
    /// `Arc<CompiledProgram>` can back an entire network (a million motes
    /// hold a million machine states but one program), which is what the
    /// soak bench leans on. Behaviourally identical to [`CeuMote::new`].
    pub fn from_shared(program: std::sync::Arc<CompiledProgram>, node_id: i64) -> Self {
        let mut machine = Machine::from_arc(program);
        // reaction ids carry the mote, so cross-mote causal links resolve
        machine.set_trace_mote(node_id as u32);
        let radio_evt = machine.event_id("Radio_receive");
        CeuMote {
            machine,
            host: TosHost::new(node_id),
            node_id,
            radio_evt,
            async_per_slice: 8,
            max_clock_lag_us: 0,
            trace: false,
            trace_mask: TraceMask::Full,
            reaction_limits: None,
        }
    }

    /// Switches on machine-level tracing, buffered per callback and
    /// surfaced to the world's unified trace (enable the world side with
    /// `World::enable_trace`).
    pub fn enable_trace(&mut self) {
        self.enable_trace_masked(TraceMask::Full);
    }

    /// [`enable_trace`](Self::enable_trace) at reaction granularity only:
    /// the per-track / per-gate firehose never leaves the machine, and the
    /// per-reaction host-clock samples are skipped. This is the always-on
    /// flight-recorder configuration — the buffer carries exactly the
    /// events the world's per-shard rings keep, at low single-digit
    /// overhead instead of full-trace cost.
    pub fn enable_trace_coarse(&mut self) {
        self.enable_trace_masked(TraceMask::Coarse);
    }

    fn enable_trace_masked(&mut self, mask: TraceMask) {
        if !self.trace {
            self.machine.enable_event_buffer();
            self.machine.set_trace_mask(mask);
            self.trace_mask = mask;
            self.trace = true;
        }
    }

    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Switches on the embedded machine's metrics registry.
    pub fn enable_metrics(&mut self) {
        self.machine.enable_metrics();
    }

    /// Arms the machine's watchdog (wall-clock budget per reaction and/or
    /// a track-count ceiling). A trip crashes the *mote* — the world sees
    /// `MoteStatus::Crashed` with a watchdog cause, never a panic. The
    /// limits survive reboots.
    pub fn set_reaction_limits(&mut self, max_reaction_us: Option<u64>, max_tracks: Option<u32>) {
        self.reaction_limits = Some((max_reaction_us, max_tracks));
        self.machine.set_reaction_limits(max_reaction_us, max_tracks);
    }

    pub fn metrics(&self) -> Option<&ceu::runtime::Metrics> {
        self.machine.metrics()
    }

    /// High-water mark of virtual-clock drift: how far world time had run
    /// ahead of the mote's synchronous clock when a callback was delivered.
    pub fn max_clock_lag_us(&self) -> u64 {
        self.max_clock_lag_us
    }

    fn note_lag(&mut self, world_now: u64) {
        let lag = world_now.saturating_sub(self.machine.now());
        self.max_clock_lag_us = self.max_clock_lag_us.max(lag);
    }

    pub fn host_mut(&mut self) -> &mut TosHost {
        &mut self.host
    }

    /// Applies post-reaction effects to the simulation world.
    fn sync_world(&mut self, ctx: &mut MoteCtx) {
        for op in self.host.led_ops.drain(..) {
            match op {
                LedOp::Set(mask) => ctx.leds.set_mask(ctx.now, mask),
                LedOp::Toggle(led) => ctx.leds.toggle(ctx.now, led),
            }
        }
        // packets leave stamped with the reaction that emitted them — the
        // receive side records it as the causal parent
        let origin = self.machine.last_reaction_id();
        for (dst, pkt) in self.host.outbox.drain(..) {
            ctx.send(dst, pkt.with_origin(origin));
        }
        if let Some(d) = self.machine.next_deadline() {
            ctx.set_timer_at(d);
        }
        // output events already reached the host through `Host::output`;
        // drain the machine-side buffer so it never grows across a run
        self.machine.drain_outputs(|_, _| {});
        ctx.wants_cpu = self.machine.has_runnable_async();
        self.machine.drain_events_into(ctx.vm_events);
    }

    /// A machine error crashes the *mote*, not the process: the failing
    /// reaction's queued effects (LEDs, sends, outputs) are discarded,
    /// trace events up to the failure are surfaced, and the world is told
    /// to transition the mote to `Crashed`.
    fn fail_with(&mut self, ctx: &mut MoteCtx, e: &RuntimeError) {
        self.host.led_ops.clear();
        self.host.outbox.clear();
        self.machine.drain_outputs(|_, _| {});
        self.machine.drain_events_into(ctx.vm_events);
        ctx.fail(CrashCause::from_error(e));
    }
}

impl Backend for CeuMote {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        if let Err(e) = self.machine.go_time(ctx.now, &mut self.host) {
            return self.fail_with(ctx, &e);
        }
        if let Err(e) = self.machine.go_init(&mut self.host) {
            return self.fail_with(ctx, &e);
        }
        self.sync_world(ctx);
    }

    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        let Some(evt) = self.radio_evt else { return };
        // keep the machine clock in sync before handling the event
        self.note_lag(ctx.now);
        if let Err(e) = self.machine.go_time(ctx.now, &mut self.host) {
            return self.fail_with(ctx, &e);
        }
        let h = self.host.alloc_msg_from(packet.payload.clone(), packet.src as i64);
        if let Err(e) = self.machine.go_event_from(
            evt,
            Some(Value::Ptr(Ptr::Host(h as u64))),
            packet.origin,
            &mut self.host,
        ) {
            return self.fail_with(ctx, &e);
        }
        self.sync_world(ctx);
    }

    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.note_lag(ctx.now);
        if let Err(e) = self.machine.go_time(ctx.now, &mut self.host) {
            return self.fail_with(ctx, &e);
        }
        self.sync_world(ctx);
    }

    fn cpu(&mut self, ctx: &mut MoteCtx) {
        for _ in 0..self.async_per_slice {
            match self.machine.go_async(&mut self.host) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => return self.fail_with(ctx, &e),
            }
        }
        self.sync_world(ctx);
    }

    /// Reboot with full state loss, as a crashed device would: a fresh
    /// machine over the same shared program artifact, a fresh C world
    /// (experiment hooks carry over), then the normal boot sequence.
    /// Observability settings (trace sink, metrics, watchdog limits) are
    /// re-armed on the new machine.
    fn reboot(&mut self, ctx: &mut MoteCtx) {
        let mut machine = Machine::from_arc(self.machine.program_arc());
        machine.set_trace_mote(self.node_id as u32);
        if self.machine.metrics_enabled() {
            machine.enable_metrics();
        }
        if let Some((max_us, max_tracks)) = self.reaction_limits {
            machine.set_reaction_limits(max_us, max_tracks);
        }
        if self.trace {
            machine.enable_event_buffer();
            machine.set_trace_mask(self.trace_mask);
        }
        self.radio_evt = machine.event_id("Radio_receive");
        self.machine = machine;
        let extra = std::mem::take(&mut self.host.extra);
        self.host = TosHost::new(self.node_id);
        self.host.extra = extra;
        self.boot(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::{Radio, Topology};
    use crate::world::World;

    /// A one-hop echo: wait for a message, add one, send it back.
    const ECHO: &str = r#"
        input _message_t* Radio_receive;
        loop do
           _message_t* msg = await Radio_receive;
           int* cnt = _Radio_getPayload(msg);
           _Leds_set(*cnt);
           *cnt = *cnt + 1;
           _Radio_send((_TOS_NODE_ID+1)%2, msg);
        end
    "#;

    /// Sends the first message at boot.
    const KICK: &str = r#"
        input _message_t* Radio_receive;
        internal void go;
        par do
           loop do
              _message_t* msg = await Radio_receive;
              int* cnt = _Radio_getPayload(msg);
              _Leds_set(*cnt);
              *cnt = *cnt + 1;
              _Radio_send((_TOS_NODE_ID+1)%2, msg);
           end
        with
           _message_t msg;
           int* cnt = _Radio_getPayload(&msg);
           *cnt = 1;
           _Radio_send(1, &msg)
           await forever;
        end
    "#;

    #[test]
    fn two_ceu_motes_bounce_a_counter() {
        let prog = ceu::Compiler::new().compile(ECHO).unwrap();
        let kick = ceu::Compiler::new().compile(KICK).unwrap();
        let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 1));
        w.add_mote(Box::new(CeuMote::new(kick, 0)));
        w.add_mote(Box::new(CeuMote::new(prog, 1)));
        w.boot();
        w.run_until(10_500);
        // 1ms per hop, counter bounces: mote1 sees 1,3,5,… mote0 sees 2,4,…
        assert!(w.stats.delivered >= 10, "delivered {}", w.stats.delivered);
        let m1_first = w.leds(1).history.first().cloned();
        assert_eq!(m1_first, Some((1_000, 0, true)), "mote 1 lit led0 from mask 1 at 1ms");
        // per-mote accounting: what mote 1 received, mote 0 sent (the
        // final packet may still be in flight at the deadline)
        let in_flight = w.mote_stats(0).sent - w.mote_stats(1).received;
        assert!(in_flight <= 1, "at most one packet in flight, got {in_flight}");
        assert!(w.mote_stats(0).received >= 5);
    }

    #[test]
    fn cross_mote_causality_links_send_to_receive() {
        use ceu::runtime::{Cause, TraceEvent};

        let trace_world = || {
            let prog = ceu::Compiler::new().compile(ECHO).unwrap();
            let kick = ceu::Compiler::new().compile(KICK).unwrap();
            let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 1));
            for (p, id) in [(kick, 0), (prog, 1)] {
                let mut mote = CeuMote::new(p, id);
                mote.enable_trace();
                w.add_mote(Box::new(mote));
            }
            w.enable_trace();
            w.boot();
            w
        };

        let mut seq = trace_world();
        seq.run_until(10_500);
        let trace = seq.take_trace();

        // every radio-caused reaction names a parent on the *other* mote
        let mut cross_links = 0;
        for e in &trace {
            if let TraceEvent::ReactionStart {
                id,
                cause: Cause::Event { parent: Some(p), .. },
                ..
            } = e.event
            {
                assert_ne!(p.mote, id.mote, "radio parents are cross-mote here");
                assert_eq!(e.mote as u32, id.mote, "reaction ids carry the mote");
                cross_links += 1;
            }
        }
        assert!(cross_links >= 5, "the counter bounces: got {cross_links} causal links");

        // the unified stream is identical under the parallel stepper
        let mut par = trace_world();
        par.run_until_parallel(10_500, 4);
        assert_eq!(trace, par.take_trace(), "sequential vs 4-thread world trace");
    }

    /// Serves radio messages, but a parallel trail calls a C function the
    /// TinyOS binding doesn't have, 5 ms into every life — a guaranteed
    /// machine error (and after a reboot, the fresh machine re-arms it).
    const FRAGILE: &str = r#"
        input _message_t* Radio_receive;
        par do
           loop do
              _message_t* msg = await Radio_receive;
              _Leds_led0Toggle();
           end
        with
           await 5ms;
           _Boom();
           await forever;
        end
    "#;

    /// Bare-metal beacon: one packet per millisecond at a fixed peer.
    struct Beacon {
        to: usize,
    }

    impl Backend for Beacon {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.send(self.to, Packet::with_value(ctx.id, self.to, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn ceu_machine_errors_crash_and_reboot_the_mote() {
        use crate::faults::RebootPolicy;

        let build = || {
            let prog = ceu::Compiler::new().compile(FRAGILE).unwrap();
            let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 1));
            w.set_reboot_policy(RebootPolicy::After(2_000));
            w.enable_trace();
            w.add_mote(Box::new(Beacon { to: 1 }));
            let mut mote = CeuMote::new(prog, 1);
            mote.enable_trace();
            w.add_mote(Box::new(mote));
            w.boot();
            w
        };
        let mut seq = build();
        seq.run_until(30_000);
        let stats = *seq.mote_stats(1);
        assert!(stats.crashes >= 2, "one crash per life: {stats:?}");
        assert!(stats.reboots >= 2, "revived by the policy each time: {stats:?}");
        assert!(seq.mote_status(1).is_up() || stats.reboots + 1 == stats.crashes);
        // it keeps serving between outages — led toggles well past the
        // first crash (5 ms) prove the reboot actually re-booted
        assert!(seq.leds(1).history.iter().any(|(t, _, _)| *t > 10_000), "service resumed");
        // beacons that were mid-air when the mote dropped were discarded
        assert!(seq.stats.dropped_in_flight >= 1);
        // and the whole chaotic run is bit-identical under the parallel
        // stepper, crash causes and all
        let mut par = build();
        par.run_until_parallel(30_000, 4);
        assert_eq!(*par.mote_stats(1), stats);
        assert_eq!(seq.take_trace(), par.take_trace());
    }

    #[test]
    fn shared_handle_exposes_metrics_and_clock_lag() {
        use std::sync::{Arc, Mutex};

        let prog = ceu::Compiler::new().compile(ECHO).unwrap();
        let kick = ceu::Compiler::new().compile(KICK).unwrap();
        let echo = Arc::new(Mutex::new(CeuMote::new(prog, 1)));
        echo.lock().unwrap().enable_metrics();
        let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 1));
        w.add_mote(Box::new(CeuMote::new(kick, 0)));
        w.add_mote(Box::new(Arc::clone(&echo)));
        w.boot();
        w.run_until(10_500);

        let mote = echo.lock().unwrap();
        let m = mote.metrics().expect("metrics enabled");
        assert!(m.reactions >= 5, "one reaction per delivered message, got {}", m.reactions);
        assert_eq!(m.discarded_events, 0);
        // deliveries arrive 1ms after the machine last saw time advance,
        // so the drift high-water mark is at least one radio hop
        assert!(mote.max_clock_lag_us() >= 1_000, "lag {}", mote.max_clock_lag_us());
    }
}

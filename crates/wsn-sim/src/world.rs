//! The discrete-event wireless-sensor-network simulator.
//!
//! Substitutes for the paper's micaz testbed (see DESIGN.md): a virtual
//! clock in microseconds, motes with pluggable application backends, and a
//! radio medium with per-link latency and loss. The paper's own argument
//! (§2.8) justifies the substitution — a reactive program's behaviour
//! depends only on the order of its input events.
//!
//! The event core is **sharded** (see [`crate::shard`]): motes are
//! partitioned along the radio topology into shards, each owning its own
//! [`EventHeap`] and its motes' hot state as struct-of-arrays. The
//! sequential stepper min-scans the shard heads; the parallel stepper
//! checks whole shards out to a persistent worker pool
//! ([`crate::pool`]), each running to its own per-shard lookahead bound,
//! and merges results deterministically at the window barrier.

use crate::faults::{FaultAction, FaultEntry, FaultPlan, RebootPolicy};
use crate::parstats::{ParStats, ParWindowStats, DEFAULT_WINDOW_CAP, SEND_SAMPLE_CAP};
use crate::pool::{JobOut, ShardJob, WorkerPool};
use crate::radio::{Packet, Radio};
use crate::sched::EventHeap;
use crate::shard::{Shard, ShardPlan, DEFAULT_TARGET_SHARDS};
use ceu::ast::Span;
use ceu::runtime::telemetry::json_string;
use ceu::runtime::{CrashKind, FlightRecord, FlightRecorder, RuntimeError, TraceEvent};
use std::path::{Path, PathBuf};

/// Node id within a network.
pub type MoteId = usize;

/// Why a mote crashed: classification, human-readable message, and the
/// source position of the failing statement (when the machine knows it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashCause {
    pub kind: CrashKind,
    pub message: String,
    pub span: Span,
}

impl CrashCause {
    /// Classifies a machine error (watchdog trips vs program errors).
    pub fn from_error(e: &RuntimeError) -> Self {
        CrashCause {
            kind: if e.watchdog { CrashKind::Watchdog } else { CrashKind::RuntimeError },
            message: e.message.clone(),
            span: e.span,
        }
    }

    /// A deliberate fault-plan crash.
    pub fn injected() -> Self {
        CrashCause {
            kind: CrashKind::FaultInjected,
            message: "fault plan took the mote down".into(),
            span: Span::default(),
        }
    }
}

impl std::fmt::Display for CrashCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.span, self.message)
    }
}

/// Whether a mote is running or crashed (graceful degradation: a failing
/// machine takes its mote down, never the process).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum MoteStatus {
    #[default]
    Up,
    /// The mote went down at virtual time `at` for `cause`. It drops all
    /// traffic, timers and CPU slices until a reboot (if any) revives it.
    Crashed { at: u64, cause: CrashCause },
}

impl MoteStatus {
    pub fn is_up(&self) -> bool {
        matches!(self, MoteStatus::Up)
    }
}

/// One VM trace event situated in the world: which mote emitted it, at
/// what virtual time, and where it falls in that mote's own event order.
///
/// The unified world trace is the observability spine of the simulator:
/// every mote's machine-level trace (reactions, tracks, gates, emits) is
/// merged into a single stream whose order is **deterministic** — sorted
/// by `(world_time_us, mote, seq)`, where `seq` is the per-mote emission
/// index. Because each mote sees the identical callback sequence under
/// [`World::run_until`] and [`World::run_until_parallel`] (any thread
/// count), the merged stream is bit-identical across all of them.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldTraceEvent {
    /// Virtual time (µs) of the callback that produced the event.
    pub world_time_us: u64,
    pub mote: MoteId,
    /// Per-mote emission index (1-based, monotone for each mote).
    pub seq: u64,
    /// The machine-level event, wall-clock fields normalised to zero so
    /// the stream is reproducible run-to-run.
    pub event: TraceEvent,
}

impl WorldTraceEvent {
    /// One JSONL line of the stable wire format read by `ceu-trace`:
    /// `{"t_us":N,"mote":M,"seq":S,"ev":{…event_to_json…}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_us\":{},\"mote\":{},\"seq\":{},\"ev\":{}}}",
            self.world_time_us,
            self.mote,
            self.seq,
            ceu::runtime::telemetry::event_to_json(&self.event)
        )
    }
}

/// Writes a merged world trace as JSONL (one event per line).
pub fn write_trace_jsonl<W: std::io::Write>(
    events: &[WorldTraceEvent],
    mut w: W,
) -> std::io::Result<()> {
    for e in events {
        writeln!(w, "{}", e.to_json())?;
    }
    Ok(())
}

/// What a scheduled simulation event does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fire {
    /// Deliver a packet to a mote's radio.
    Deliver { to: MoteId, packet: Packet },
    /// A mote's requested timer expires.
    Timer { mote: MoteId },
    /// Grant a CPU slice to a mote (long computations / threads).
    Cpu { mote: MoteId },
    /// Apply the fault-plan entry at this index. A *world event*: it
    /// mutates shared state (radio, mote status), so the parallel stepper
    /// treats it as a barrier between windows — which is exactly what
    /// makes fault timing identical at any thread count.
    Fault { index: usize },
    /// Restart a crashed mote (world event / barrier, like `Fault`).
    Reboot { mote: MoteId },
}

/// World events mutate shared state and therefore never run inside a
/// parallel worker window; they live in the world's own queue, not in any
/// shard heap.
pub(crate) fn is_world_fire(f: &Fire) -> bool {
    matches!(f, Fire::Fault { .. } | Fire::Reboot { .. })
}

/// The mote a firing is addressed to — `None` for world events.
fn dest_mote(f: &Fire) -> Option<MoteId> {
    match f {
        Fire::Deliver { to, .. } => Some(*to),
        Fire::Timer { mote } | Fire::Cpu { mote } => Some(*mote),
        Fire::Fault { .. } | Fire::Reboot { .. } => None,
    }
}

/// Events at equal virtual times fire in *lane* order: world events
/// (faults, reboots) first, then motes by id. This is the same canonical
/// `(time, mote, emission)` order the parallel merge applies, which is
/// what makes [`World::run_until`] and [`World::run_until_parallel`]
/// bit-identical even when same-instant events land on different motes.
/// Because lane 0 produces the smallest keys at any time, a min-scan over
/// the world queue and the shard heaps reproduces the exact single-heap
/// order.
fn lane_of(f: &Fire) -> u64 {
    match f {
        Fire::Fault { .. } | Fire::Reboot { .. } => 0,
        Fire::Deliver { to, .. } => *to as u64 + 1,
        Fire::Timer { mote } | Fire::Cpu { mote } => *mote as u64 + 1,
    }
}

/// The intra-lane class: packet deliveries land *before* timer/CPU
/// callbacks at the same instant for the same mote. Without this bit the
/// tie would fall to the scheduling counter — which the sequential
/// stepper assigns at transmit time but the parallel merge can only
/// assign after the window's workers have consumed theirs, so the two
/// paths could order a same-instant Timer/Deliver collision differently.
/// A fixed semantic rule costs one key bit and removes the dependence.
fn kind_of(f: &Fire) -> u64 {
    match f {
        Fire::Deliver { .. } | Fire::Fault { .. } | Fire::Reboot { .. } => 0,
        Fire::Timer { .. } | Fire::Cpu { .. } => 1,
    }
}

/// Packs `(lane, kind, seq)` into the event heap's one-word tie-breaker:
/// lane in the high bits, the delivery-before-timer class bit next, the
/// monotone scheduling counter in the low 40 (room for ~10¹² events and
/// ~8M motes — far beyond any simulated world).
pub(crate) fn order_key(lane: u64, kind: u64, seq: u64) -> u64 {
    debug_assert!(lane < 1 << 23 && kind < 2 && seq < 1 << 40);
    (lane << 41) | (kind << 40) | seq
}

/// The mote-local (drifted) view of world time `t` under `ppm` skew.
pub(crate) fn skewed(t: u64, ppm: i64) -> u64 {
    if ppm == 0 {
        return t;
    }
    let adj = (t as i128 * ppm as i128) / 1_000_000;
    (t as i128 + adj).max(0) as u64
}

/// Inverse of [`skewed`]: the earliest world time at which the mote's
/// local clock has reached `local`. The floor estimate is corrected
/// upward until `skewed(w) >= local` — if the returned time fell short
/// (integer rounding), the timer gate would not fire and the mote would
/// re-arm the identical request at the same instant forever.
pub(crate) fn unskew(local: u64, ppm: i64) -> u64 {
    if ppm == 0 {
        return local;
    }
    let denom = 1_000_000i128 + ppm as i128;
    if denom <= 0 {
        return local; // a -1e6 ppm clock never advances; don't divide by ≤0
    }
    let mut w = ((local as i128 * 1_000_000) / denom).max(0) as u64;
    while skewed(w, ppm) < local {
        let deficit = (local - skewed(w, ppm)) as i128;
        w += ((deficit * 1_000_000) / denom).max(1) as u64;
    }
    w
}

/// The environment handle passed to application backends.
pub struct MoteCtx<'w> {
    pub id: MoteId,
    pub now: u64,
    /// LED state (bitmask) plus toggle history, recorded by the harnesses.
    pub leds: &'w mut Leds,
    /// Packets to transmit, collected after the callback returns.
    pub outbox: Vec<(MoteId, Packet)>,
    /// Absolute time of the next timer callback this mote wants (if any).
    pub timer_request: Option<u64>,
    /// Whether this mote wants CPU slices (long computations pending).
    pub wants_cpu: bool,
    /// Machine-level trace events produced during this callback; drained
    /// into the unified world trace (see [`WorldTraceEvent`]) after the
    /// callback returns. Backends that don't trace leave it empty. Borrows
    /// the owning shard's persistent scratch buffer, so per-callback
    /// draining is allocation-free in steady state.
    pub vm_events: &'w mut Vec<TraceEvent>,
    /// Set via [`MoteCtx::fail`]: the backend's machine failed and the
    /// mote should crash instead of aborting the process.
    failure: Option<CrashCause>,
}

impl<'w> MoteCtx<'w> {
    /// A fresh context for one callback (shared by the sequential stepper
    /// and the shard workers, so effect handling stays identical).
    pub(crate) fn new(
        id: MoteId,
        now: u64,
        leds: &'w mut Leds,
        vm_events: &'w mut Vec<TraceEvent>,
    ) -> MoteCtx<'w> {
        MoteCtx {
            id,
            now,
            leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
            vm_events,
            failure: None,
        }
    }

    pub fn send(&mut self, to: MoteId, packet: Packet) {
        self.outbox.push((to, packet));
    }

    pub fn set_timer_at(&mut self, at: u64) {
        self.timer_request = Some(match self.timer_request {
            Some(t) => t.min(at),
            None => at,
        });
    }

    /// Reports that the backend failed mid-callback (a machine
    /// `RuntimeError`, a watchdog trip). The world transitions the mote
    /// to [`MoteStatus::Crashed`] after the callback returns — graceful
    /// degradation instead of a panic. The failing callback's pending
    /// effects (sends, timer/CPU requests) are discarded; trace events
    /// produced before the failure are kept. The first failure wins.
    pub fn fail(&mut self, cause: CrashCause) {
        if self.failure.is_none() {
            self.failure = Some(cause);
        }
    }

    /// Whether [`fail`](Self::fail) was called during this callback.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Takes the recorded failure (world/shard effect application).
    pub(crate) fn take_failure(&mut self) -> Option<CrashCause> {
        self.failure.take()
    }
}

/// LED state with a full toggle history (timestamps in µs) — the
/// measurement surface of the blink-synchronization experiment.
#[derive(Clone, Debug, Default)]
pub struct Leds {
    pub state: u8,
    /// `(time, led, new_state)` for every change.
    pub history: Vec<(u64, u8, bool)>,
}

impl Leds {
    pub fn set_mask(&mut self, now: u64, mask: u8) {
        for led in 0..3 {
            let new = mask & (1 << led) != 0;
            let old = self.state & (1 << led) != 0;
            if new != old {
                self.history.push((now, led, new));
            }
        }
        self.state = mask;
    }

    pub fn toggle(&mut self, now: u64, led: u8) {
        let new = self.state & (1 << led) == 0;
        self.state ^= 1 << led;
        self.history.push((now, led, new));
    }

    /// Times at which the given led switched on.
    pub fn on_times(&self, led: u8) -> Vec<u64> {
        self.history.iter().filter(|(_, l, on)| *l == led && *on).map(|(t, _, _)| *t).collect()
    }
}

/// An application running on a mote. Backends: Céu machines, event-driven
/// (nesC-analog) handlers, preemptive-thread (MantisOS-analog) schedulers.
///
/// `Send` so the world can step disjoint shards on worker threads
/// ([`World::run_until_parallel`]); every backend is still only ever
/// called from one thread at a time.
pub trait Backend: Send {
    /// Called once at virtual time zero.
    fn boot(&mut self, ctx: &mut MoteCtx);
    /// A packet arrived (already past the radio medium).
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet);
    /// The previously requested timer fired.
    fn timer(&mut self, ctx: &mut MoteCtx);
    /// One CPU slice was granted; runs a bounded amount of computation.
    fn cpu(&mut self, ctx: &mut MoteCtx);
    /// Restart after a crash: come back as a freshly-booted instance with
    /// full state loss. The default boots again without resetting state;
    /// stateful backends override it (see `CeuMote`, which rebuilds its
    /// machine from the shared program artifact).
    fn reboot(&mut self, ctx: &mut MoteCtx) {
        self.boot(ctx)
    }
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub delivered: u64,
    pub lost: u64,
    pub cpu_slices: u64,
    /// Packets the medium had accepted that were discarded at arrival
    /// time because the destination had crashed or powered off while the
    /// packet was in flight.
    pub dropped_in_flight: u64,
}

/// Per-mote statistics (the network-wide aggregates live in [`Stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoteStats {
    /// Packets handed to the radio medium.
    pub sent: u64,
    /// Packets delivered to this mote.
    pub received: u64,
    /// Packets this mote sent that the medium dropped (loss, partition,
    /// or a downed endpoint).
    pub lost: u64,
    /// Packets addressed to this mote that were discarded at arrival
    /// because it was down when they landed (in-flight drops).
    pub dropped_in_flight: u64,
    /// Timer callbacks delivered.
    pub timer_firings: u64,
    /// CPU slices granted.
    pub cpu_slices: u64,
    /// Times this mote crashed (runtime error, watchdog, or fault plan).
    pub crashes: u64,
    /// Times this mote rebooted after a crash.
    pub reboots: u64,
}

// Fallbacks for accessors on motes that are staged but not yet sharded
// (`static`, not `const`-behind-a-reference: `Leds` holds a `Vec`, which
// a promoted `&CONST` would reject).
static EMPTY_LEDS: Leds = Leds { state: 0, history: Vec::new() };
static ZERO_STATS: MoteStats = MoteStats {
    sent: 0,
    received: 0,
    lost: 0,
    dropped_in_flight: 0,
    timer_firings: 0,
    cpu_slices: 0,
    crashes: 0,
    reboots: 0,
};
static STATUS_UP: MoteStatus = MoteStatus::Up;

/// The network simulator.
pub struct World {
    now: u64,
    seq: u64,
    /// Pending *world events* only (faults, reboots) — lane 0, so its
    /// keys sort before any mote event at the same time. Mote-addressed
    /// firings live in their shard's heap.
    world_queue: EventHeap<Fire>,
    /// The sharded event core: every built mote's state and pending
    /// events live in exactly one shard (see [`crate::shard`]).
    shards: Vec<Shard>,
    /// Mote id → owning shard, for the built roster.
    mote_shard: Vec<u32>,
    /// Motes added since the last (re)shard; folded in by `ensure_shards`.
    staged: Vec<Box<dyn Backend>>,
    /// Set by [`World::set_target_shards`]: rebuild the plan next run.
    plan_stale: bool,
    /// How many shards to aim for when partitioning.
    target_shards: usize,
    /// Largest per-shard lookahead — the reboot-delay clamp (see
    /// [`World::effective_reboot_delay`]).
    max_lookahead_us: u64,
    /// Persistent shard workers, created lazily by the first parallel run
    /// and kept parked between windows (and between runs).
    pool: Option<WorkerPool>,
    pub radio: Radio,
    /// Virtual CPU cost of one granted slice (µs).
    pub cpu_slice_us: u64,
    pub stats: Stats,
    /// Unified world trace (when enabled): events from every mote,
    /// collected as callbacks run and canonically ordered on read.
    trace: Option<Vec<WorldTraceEvent>>,
    /// Cross-window send merge buffer, reused across parallel windows.
    merge_sends: Vec<(u64, MoteId, usize, MoteId, Packet)>,
    /// Fault-plan entries, indexed by [`Fire::Fault`]. Append-only so the
    /// indices stay stable across multiple [`World::set_fault_plan`] calls.
    fault_entries: Vec<FaultEntry>,
    /// What happens after a crash (applies to machine crashes; plan-driven
    /// `Reboot` actions carry their own delay).
    reboot_policy: RebootPolicy,
    /// Parallel-scheduler introspection (`ceu-par-stats/v2`): per-window
    /// stall attribution and per-shard aggregates collected by
    /// [`World::run_until_parallel`] when enabled via
    /// [`World::enable_par_stats`]. `None` costs nothing on the stepping
    /// paths.
    par_stats: Option<ParStats>,
    /// Per-shard flight-recorder ring capacity (0 = recorder off). The
    /// recorders themselves live in the shards (see [`Shard::recorder`])
    /// so recording never crosses a shard boundary.
    recorder_capacity: usize,
    /// Where crash black-box dumps land (`ceu-blackbox/v1` JSONL). Dumps
    /// fire on mote crashes and worker panics when both this and the
    /// recorder are configured; each dump overwrites the previous one, so
    /// the file always describes the most recent crash.
    blackbox_out: Option<PathBuf>,
}

impl World {
    pub fn new(radio: Radio) -> Self {
        World {
            now: 0,
            seq: 0,
            world_queue: EventHeap::new(),
            shards: Vec::new(),
            mote_shard: Vec::new(),
            staged: Vec::new(),
            plan_stale: false,
            target_shards: DEFAULT_TARGET_SHARDS,
            max_lookahead_us: 0,
            pool: None,
            radio,
            cpu_slice_us: 100,
            stats: Stats::default(),
            trace: None,
            merge_sends: Vec::new(),
            fault_entries: Vec::new(),
            reboot_policy: RebootPolicy::default(),
            par_stats: None,
            recorder_capacity: 0,
            blackbox_out: None,
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    /// Switches on the unified world trace. Backends must also surface
    /// their machine traces through [`MoteCtx::vm_events`] (for Céu motes,
    /// `CeuMote::enable_trace`).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
        for shard in &mut self.shards {
            shard.trace_on = true;
        }
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes the merged world trace collected so far, in the canonical
    /// deterministic order `(world_time_us, mote, seq)`. Tracing stays
    /// enabled; subsequent events start a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<WorldTraceEvent> {
        let mut events = match self.trace.take() {
            Some(t) => {
                self.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        };
        events.sort_by_key(|e| (e.world_time_us, e.mote, e.seq));
        events
    }

    /// Switches on parallel-scheduler introspection: subsequent
    /// [`run_until_parallel`](World::run_until_parallel) calls record one
    /// [`ParWindowStats`] per window (stall attribution, per-worker load,
    /// heap traffic, per-shard aggregates) into a bounded collector.
    /// Collection never alters scheduling decisions, so the simulation —
    /// and its world trace — stays bit-identical with stats on or off, at
    /// any thread count.
    pub fn enable_par_stats(&mut self) {
        if self.par_stats.is_none() {
            self.par_stats = Some(ParStats::new(DEFAULT_WINDOW_CAP));
        }
    }

    pub fn par_stats_enabled(&self) -> bool {
        self.par_stats.is_some()
    }

    /// The stats collected so far (None until [`World::enable_par_stats`]).
    pub fn par_stats(&self) -> Option<&ParStats> {
        self.par_stats.as_ref()
    }

    /// Takes the collected parallel-scheduler stats; collection stays
    /// enabled and restarts fresh.
    pub fn take_par_stats(&mut self) -> Option<ParStats> {
        let taken = self.par_stats.take();
        if taken.is_some() {
            self.par_stats = Some(ParStats::new(DEFAULT_WINDOW_CAP));
        }
        taken
    }

    /// Switches on the always-on flight recorder: every shard keeps a
    /// fixed-capacity ring of the last `capacity` interesting trace
    /// events (reaction boundaries, emits, crashes — see
    /// [`FlightRecorder::wants`]) plus scheduler window marks. Unlike the
    /// full world trace this is bounded memory and cheap enough to leave
    /// on for million-mote runs; on a crash the rings feed the
    /// `ceu-blackbox/v1` dump (see [`World::set_blackbox_out`]).
    /// Recorded content is bit-identical between [`World::run_until`] and
    /// [`World::run_until_parallel`] at any thread count. Céu motes must
    /// also surface machine traces (`CeuMote::enable_trace`), exactly as
    /// for the full world trace.
    pub fn enable_flight_recorder(&mut self, capacity: usize) {
        self.recorder_capacity = capacity.max(1);
        for shard in &mut self.shards {
            match &mut shard.recorder {
                Some(_) => {} // keep contents; capacity changes apply at reshard
                none => *none = Some(FlightRecorder::new(self.recorder_capacity)),
            }
        }
    }

    pub fn flight_recorder_enabled(&self) -> bool {
        self.recorder_capacity > 0
    }

    /// Where crash black-box dumps land. Setting a path arms automatic
    /// dumps on mote crashes, watchdog trips and parallel-worker panics
    /// (the recorder must be on for a dump to carry any history).
    pub fn set_blackbox_out(&mut self, path: impl Into<PathBuf>) {
        self.blackbox_out = Some(path.into());
    }

    /// Every live flight-recorder record, merged across shards into the
    /// canonical `(t_us, mote, seq)` order (same order as the world
    /// trace). Empty when the recorder is off.
    pub fn flight_records(&self) -> Vec<FlightRecord> {
        let mut out: Vec<FlightRecord> = self
            .shards
            .iter()
            .filter_map(|s| s.recorder.as_ref())
            .flat_map(|r| r.iter().copied())
            .collect();
        out.sort_by_key(|r| (r.t_us, r.mote, r.seq));
        out
    }

    /// `(live records, total capacity, dropped)` summed across shards —
    /// the ring-occupancy line item of the soak heartbeat. `None` when
    /// the recorder is off.
    pub fn flight_recorder_stats(&self) -> Option<(usize, usize, u64)> {
        if self.recorder_capacity == 0 {
            return None;
        }
        let mut live = 0usize;
        let mut cap = 0usize;
        let mut dropped = 0u64;
        for rec in self.shards.iter().filter_map(|s| s.recorder.as_ref()) {
            live += rec.len();
            cap += rec.capacity();
            dropped += rec.dropped();
        }
        Some((live, cap, dropped))
    }

    /// The world-level counters as one JSON object (dependency-free,
    /// stable key order): network aggregates, radio-medium drop reasons,
    /// crash/reboot totals, and the per-mote packet/timer/fault stats.
    /// Drivers merge this with the machine metrics and scheduler stats
    /// into one `--metrics-out` file.
    pub fn metrics_json(&self) -> String {
        let r = &self.radio.stats;
        let mut crashes = 0u64;
        let mut reboots = 0u64;
        let mut motes = String::from("[");
        for i in 0..self.mote_count() {
            let (up, m) = match self.mote_loc(i) {
                Some((s, l)) => (self.shards[s].status[l].is_up(), self.shards[s].stats[l]),
                None => (true, MoteStats::default()),
            };
            crashes += m.crashes;
            reboots += m.reboots;
            if i > 0 {
                motes.push(',');
            }
            motes.push_str(&format!(
                concat!(
                    "{{\"mote\":{},\"up\":{},\"sent\":{},\"received\":{},\"lost\":{},",
                    "\"dropped_in_flight\":{},\"timer_firings\":{},\"cpu_slices\":{},",
                    "\"crashes\":{},\"reboots\":{}}}"
                ),
                i,
                up,
                m.sent,
                m.received,
                m.lost,
                m.dropped_in_flight,
                m.timer_firings,
                m.cpu_slices,
                m.crashes,
                m.reboots,
            ));
        }
        motes.push(']');
        format!(
            concat!(
                "{{\"now_us\":{},\"delivered\":{},\"lost\":{},\"cpu_slices\":{},",
                "\"dropped_in_flight\":{},\"crashes\":{},\"reboots\":{},",
                "\"radio\":{{\"attempts\":{},\"delivered\":{},\"dropped_link\":{},",
                "\"dropped_loss\":{},\"dropped_partition\":{},\"dropped_burst\":{},",
                "\"dropped_in_flight\":{}}},\"motes\":{}}}"
            ),
            self.now,
            self.stats.delivered,
            self.stats.lost,
            self.stats.cpu_slices,
            self.stats.dropped_in_flight,
            crashes,
            reboots,
            r.attempts,
            r.delivered,
            r.dropped_link,
            r.dropped_loss,
            r.dropped_partition,
            r.dropped_burst,
            r.dropped_in_flight,
            motes,
        )
    }

    pub fn add_mote(&mut self, backend: Box<dyn Backend>) -> MoteId {
        let id = self.mote_shard.len() + self.staged.len();
        self.staged.push(backend);
        id
    }

    /// Built + staged motes.
    pub fn mote_count(&self) -> usize {
        self.mote_shard.len() + self.staged.len()
    }

    /// How many shards the current plan holds (0 before the first run).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sets the shard-count target; the roster is re-partitioned at the
    /// next `boot`/`run_until*` call. Resharding migrates every pending
    /// event with its original scheduling key, so the simulated behaviour
    /// is unchanged — only the parallel work units move.
    pub fn set_target_shards(&mut self, target: usize) {
        self.target_shards = target.max(1);
        self.plan_stale = true;
    }

    /// `(shard, local index)` for a built mote.
    #[inline]
    fn loc(&self, mote: MoteId) -> (usize, usize) {
        let s = self.mote_shard[mote] as usize;
        (s, mote - self.shards[s].base)
    }

    /// `(shard, local index)` for a built mote; `None` while it is still
    /// staged. Panics for ids the world has never seen.
    fn mote_loc(&self, mote: MoteId) -> Option<(usize, usize)> {
        if mote < self.mote_shard.len() {
            Some(self.loc(mote))
        } else {
            assert!(
                mote < self.mote_count(),
                "mote {mote} does not exist (the world has {} motes)",
                self.mote_count()
            );
            None
        }
    }

    pub fn leds(&self, mote: MoteId) -> &Leds {
        match self.mote_loc(mote) {
            Some((s, l)) => &self.shards[s].leds[l],
            None => &EMPTY_LEDS,
        }
    }

    /// Per-mote counters (sends, receives, losses, timers, CPU slices).
    pub fn mote_stats(&self, mote: MoteId) -> &MoteStats {
        match self.mote_loc(mote) {
            Some((s, l)) => &self.shards[s].stats[l],
            None => &ZERO_STATS,
        }
    }

    /// Whether a mote is up or crashed (and why).
    pub fn mote_status(&self, mote: MoteId) -> &MoteStatus {
        match self.mote_loc(mote) {
            Some((s, l)) => &self.shards[s].status[l],
            None => &STATUS_UP,
        }
    }

    /// Folds staged motes in and (re)builds the shard plan when needed.
    /// Pending events migrate between heaps carrying their original
    /// `(at, key)` — the global firing order is invariant under any cut.
    fn ensure_shards(&mut self) {
        if self.staged.is_empty() && !self.plan_stale {
            return;
        }
        self.plan_stale = false;
        let mut backends: Vec<Box<dyn Backend>> = Vec::new();
        let mut status: Vec<MoteStatus> = Vec::new();
        let mut timer_at: Vec<Option<u64>> = Vec::new();
        let mut cpu_scheduled: Vec<bool> = Vec::new();
        let mut skew_ppm: Vec<i64> = Vec::new();
        let mut trace_seq: Vec<u64> = Vec::new();
        let mut crashes: Vec<u32> = Vec::new();
        let mut stats: Vec<MoteStats> = Vec::new();
        let mut leds: Vec<Leds> = Vec::new();
        let mut events: Vec<(u64, u64, Fire)> = Vec::new();
        // flight-recorder content survives a reshard: records carry their
        // mote id, so they re-route into the new owning shard's ring below
        // (window marks are per-old-shard and are dropped; the monotonic
        // `dropped` counters restart with the new rings)
        let mut old_records: Vec<FlightRecord> = Vec::new();
        for mut shard in std::mem::take(&mut self.shards) {
            if let Some(rec) = shard.recorder.take() {
                old_records.extend(rec.iter().copied());
            }
            events.extend(shard.heap.drain_unordered());
            backends.extend(shard.backends);
            status.extend(shard.status);
            timer_at.extend(shard.timer_at);
            cpu_scheduled.extend(shard.cpu_scheduled);
            skew_ppm.extend(shard.skew_ppm);
            trace_seq.extend(shard.trace_seq);
            crashes.extend(shard.crashes);
            stats.extend(shard.stats);
            leds.extend(shard.leds);
        }
        for backend in self.staged.drain(..) {
            backends.push(backend);
            status.push(MoteStatus::Up);
            timer_at.push(None);
            cpu_scheduled.push(false);
            skew_ppm.push(0);
            trace_seq.push(0);
            crashes.push(0);
            stats.push(MoteStats::default());
            leds.push(Leds::default());
        }
        let n = backends.len();
        let plan = ShardPlan::from_radio(&self.radio, n, self.target_shards);
        let mut backends = backends.into_iter();
        let mut status = status.into_iter();
        let mut timer_at = timer_at.into_iter();
        let mut cpu_scheduled = cpu_scheduled.into_iter();
        let mut skew_ppm = skew_ppm.into_iter();
        let mut trace_seq = trace_seq.into_iter();
        let mut crashes = crashes.into_iter();
        let mut stats = stats.into_iter();
        let mut leds = leds.into_iter();
        self.shards = plan
            .ranges
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                let mut sh = Shard::new(i as u32, a, b, plan.lookahead_us[i]);
                sh.trace_on = self.trace.is_some();
                for _ in a..b {
                    sh.push_mote(
                        backends.next().expect("column covers the roster"),
                        status.next().expect("column covers the roster"),
                        timer_at.next().expect("column covers the roster"),
                        cpu_scheduled.next().expect("column covers the roster"),
                        skew_ppm.next().expect("column covers the roster"),
                        trace_seq.next().expect("column covers the roster"),
                        crashes.next().expect("column covers the roster"),
                        stats.next().expect("column covers the roster"),
                        leds.next().expect("column covers the roster"),
                    );
                }
                sh
            })
            .collect();
        self.mote_shard = plan.mote_shard;
        if self.recorder_capacity > 0 {
            for shard in &mut self.shards {
                shard.recorder = Some(FlightRecorder::new(self.recorder_capacity));
            }
            // re-insert surviving records in canonical order: each new
            // ring receives exactly its motes' subsequence, oldest first
            old_records.sort_by_key(|r| (r.t_us, r.mote, r.seq));
            for r in old_records {
                let s = self.mote_shard[r.mote] as usize;
                self.shards[s].recorder.as_mut().expect("installed above").record_raw(r);
            }
        }
        self.max_lookahead_us = self
            .shards
            .iter()
            .map(|s| s.lookahead_us)
            .max()
            .unwrap_or(0)
            .max(self.radio.min_latency());
        for (at, key, fire) in events {
            debug_assert!(!is_world_fire(&fire), "world fires never enter a shard heap");
            let m = dest_mote(&fire).expect("mote fire");
            self.shards[self.mote_shard[m] as usize].heap.push(at, key, fire);
        }
    }

    /// Schedules a firing: world events into the world queue, everything
    /// else into the destination mote's shard heap — all under one global
    /// monotone `seq`, so the `(at, lane, seq)` order is exactly the
    /// single-heap order of the unsharded scheduler.
    fn schedule(&mut self, at: u64, fire: Fire) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        let key = order_key(lane_of(&fire), kind_of(&fire), self.seq);
        match dest_mote(&fire) {
            None => self.world_queue.push(at, key, fire),
            Some(m) => self.shards[self.mote_shard[m] as usize].heap.push(at, key, fire),
        }
    }

    /// Installs a fault plan: each entry is applied at exactly its
    /// scheduled virtual time, in both the sequential and the parallel
    /// stepper (where it acts as a window barrier, so fault timing is
    /// identical at any thread count). Entries whose time has already
    /// passed apply at the current time. Several plans may be installed;
    /// their entries interleave by time.
    ///
    /// Fails if the plan names a mote the world doesn't have.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), String> {
        if let Some(max) = plan.max_mote() {
            if max >= self.mote_count() {
                return Err(format!(
                    "fault plan names mote {max}, but the world has only {} motes",
                    self.mote_count()
                ));
            }
        }
        for entry in plan.entries() {
            let index = self.fault_entries.len();
            self.fault_entries.push(entry.clone());
            let at = entry.at_us.max(self.now);
            self.schedule(at, Fire::Fault { index });
        }
        Ok(())
    }

    /// What happens after a machine crash (runtime error / watchdog).
    /// Plan-driven `Reboot` actions carry their own delay and ignore this.
    pub fn set_reboot_policy(&mut self, policy: RebootPolicy) {
        self.reboot_policy = policy;
    }

    /// Powers a mote's radio off/on, validating the id against the mote
    /// roster (unlike [`Radio::set_down`], which silently grows its `down`
    /// vector for any index).
    pub fn set_mote_down(&mut self, mote: MoteId, down: bool) -> Result<(), String> {
        if mote >= self.mote_count() {
            return Err(format!(
                "mote {mote} does not exist (the world has {} motes)",
                self.mote_count()
            ));
        }
        self.radio.set_down(mote, down);
        Ok(())
    }

    /// A reboot may never land inside a window some shard has already
    /// stepped through: clamping the delay to at least the **largest**
    /// per-shard lookahead (and the radio minimum, and ≥ 1 µs) keeps every
    /// reboot a clean window barrier — even one discovered at a merge,
    /// whose crash time lies at the start of a window that a slower shard
    /// ran `max_lookahead` past. The same clamp applies in the sequential
    /// stepper, so both paths stay bit-identical; on uniform-latency media
    /// it degenerates to the old global-lookahead clamp.
    fn effective_reboot_delay(&self, delay: u64) -> u64 {
        delay.max(1).max(self.radio.min_latency()).max(self.max_lookahead_us)
    }

    /// Stamps one world-originated trace event (crash / reboot) for a
    /// mote. Bumps the per-mote `seq` even when tracing is off, keeping
    /// the counter in step with the parallel path.
    fn emit_world_event(&mut self, mote: MoteId, event: TraceEvent) {
        let now = self.now;
        let (s, l) = self.loc(mote);
        self.shards[s].trace_seq[l] += 1;
        let seq = self.shards[s].trace_seq[l];
        if let Some(rec) = self.shards[s].recorder.as_mut() {
            rec.record(now, mote, seq, &event);
        }
        if let Some(trace) = self.trace.as_mut() {
            trace.push(WorldTraceEvent {
                world_time_us: now,
                mote,
                seq,
                event: event.normalized(),
            });
        }
    }

    /// Transitions a mote to `Crashed` at the current time: drops its
    /// pending timer/CPU bookkeeping, powers its radio off, emits a
    /// `MoteCrashed` trace event, and (per the reboot policy, or
    /// `reboot_override` for plan-driven crashes) schedules the reboot.
    fn crash_mote(&mut self, mote: MoteId, cause: CrashCause, reboot_override: Option<u64>) {
        let (s, l) = self.loc(mote);
        if !self.shards[s].status[l].is_up() {
            return;
        }
        let event = TraceEvent::MoteCrashed {
            kind: cause.kind,
            line: cause.span.line,
            col: cause.span.col,
        };
        let shard = &mut self.shards[s];
        shard.status[l] = MoteStatus::Crashed { at: self.now, cause };
        shard.crashes[l] += 1;
        shard.stats[l].crashes += 1;
        shard.timer_at[l] = None;
        shard.cpu_scheduled[l] = false;
        let nth = shard.crashes[l];
        self.emit_world_event(mote, event);
        self.radio.set_down(mote, true);
        let delay = reboot_override.or_else(|| self.reboot_policy.delay_for(nth));
        if let Some(d) = delay {
            let at = self.now + self.effective_reboot_delay(d);
            self.schedule(at, Fire::Reboot { mote });
        }
        self.maybe_dump_blackbox("mote-crashed", Some(mote));
    }

    /// The world-side effects of a crash discovered during a parallel
    /// window merge: the shard's columns were already mutated by the
    /// worker, so only the shared state (radio, reboot schedule) remains.
    fn apply_crash_world_effects(&mut self, mote: MoteId, crash_at: u64) {
        self.radio.set_down(mote, true);
        let (s, l) = self.loc(mote);
        let nth = self.shards[s].crashes[l];
        if let Some(d) = self.reboot_policy.delay_for(nth) {
            let at = crash_at + self.effective_reboot_delay(d);
            self.schedule(at.max(self.now), Fire::Reboot { mote });
        }
        self.maybe_dump_blackbox("mote-crashed", Some(mote));
    }

    /// Renders the full `ceu-blackbox/v1` crash dump: a self-describing
    /// header, per-shard ring stats, scheduler window marks, per-mote
    /// stats for every mote the rings mention, then every live flight
    /// record in canonical `(t_us, mote, seq)` order (each line the same
    /// wire shape as a world-trace line, so `ceu-trace` parses them
    /// directly). Line discrimination for readers: `"schema"` → header,
    /// `"blackbox"` → stats/marks, `"ev"` → record.
    pub fn blackbox_json(&self, reason: &str, mote: Option<MoteId>) -> String {
        let records = self.flight_records();
        let (live, cap, dropped) = self.flight_recorder_stats().unwrap_or((0, 0, 0));
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"schema\":\"ceu-blackbox/v1\",\"reason\":{},\"t_us\":{}",
            json_string(reason),
            self.now
        ));
        if let Some(m) = mote {
            out.push_str(&format!(",\"mote\":{m}"));
            if let Some((s, l)) = self.mote_loc(m) {
                if let MoteStatus::Crashed { at, cause } = &self.shards[s].status[l] {
                    out.push_str(&format!(
                        ",\"crash_us\":{at},\"kind\":{},\"cause\":{},\"line\":{},\"col\":{}",
                        json_string(cause.kind.label()),
                        json_string(&cause.message),
                        cause.span.line,
                        cause.span.col
                    ));
                }
            }
        }
        out.push_str(&format!(
            ",\"motes\":{},\"shards\":{},\"ring_capacity\":{},\"ring_records\":{live},\
             \"ring_dropped\":{dropped}}}\n",
            self.mote_count(),
            self.shards.len(),
            cap
        ));
        for shard in &self.shards {
            let Some(rec) = shard.recorder.as_ref() else { continue };
            out.push_str(&format!(
                "{{\"blackbox\":\"shard\",\"shard\":{},\"motes\":{},\"lookahead_us\":{},\
                 \"ring_len\":{},\"ring_dropped\":{},\"ring_recorded\":{}}}\n",
                shard.id,
                shard.n(),
                shard.lookahead_us,
                rec.len(),
                rec.dropped(),
                rec.recorded()
            ));
            for w in rec.windows() {
                out.push_str(&format!(
                    "{{\"blackbox\":\"window\",\"shard\":{},\"start_us\":{},\"end_us\":{},\
                     \"events\":{}}}\n",
                    shard.id, w.start_us, w.end_us, w.events
                ));
            }
        }
        // per-mote stats only for motes the rings mention (plus the
        // crashed mote): keeps a 1M-mote soak dump bounded by ring size
        let mut mentioned: Vec<MoteId> = records.iter().map(|r| r.mote).chain(mote).collect();
        mentioned.sort_unstable();
        mentioned.dedup();
        for m in mentioned {
            let Some((s, l)) = self.mote_loc(m) else { continue };
            let st = &self.shards[s].stats[l];
            out.push_str(&format!(
                "{{\"blackbox\":\"mote\",\"mote\":{m},\"up\":{},\"sent\":{},\"received\":{},\
                 \"dropped_in_flight\":{},\"crashes\":{},\"reboots\":{}}}\n",
                self.shards[s].status[l].is_up(),
                st.sent,
                st.received,
                st.dropped_in_flight,
                st.crashes,
                st.reboots
            ));
        }
        for r in &records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the `ceu-blackbox/v1` dump to `path` (parent directories
    /// are created). Also invoked automatically on crashes when
    /// [`World::set_blackbox_out`] armed a path.
    pub fn write_blackbox_to(
        &self,
        path: &Path,
        reason: &str,
        mote: Option<MoteId>,
    ) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.blackbox_json(reason, mote))
    }

    /// Writes the dump to the configured path, returning it.
    pub fn write_blackbox(&self, reason: &str, mote: Option<MoteId>) -> std::io::Result<PathBuf> {
        let path = self.blackbox_out.clone().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "no black-box path configured")
        })?;
        self.write_blackbox_to(&path, reason, mote)?;
        Ok(path)
    }

    /// The automatic crash trigger: quiet no-op unless both a dump path
    /// and the recorder are configured. Each dump overwrites the last, so
    /// the file always reflects the most recent crash; a dump failure
    /// warns on stderr rather than masking the crash being reported.
    fn maybe_dump_blackbox(&self, reason: &str, mote: Option<MoteId>) {
        let Some(path) = self.blackbox_out.as_deref() else { return };
        if self.recorder_capacity == 0 {
            return;
        }
        if let Err(e) = self.write_blackbox_to(path, reason, mote) {
            eprintln!("wsn-sim: black-box dump to {} failed: {e}", path.display());
        }
    }

    /// Counts packets that the medium had accepted but that landed on a
    /// downed mote (dropped in flight).
    fn note_in_flight_drops(&mut self, mote: MoteId, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.dropped_in_flight += n;
        let (s, l) = self.loc(mote);
        self.shards[s].stats[l].dropped_in_flight += n;
        self.radio.stats.dropped_in_flight += n;
    }

    /// Applies one fault-plan entry at its scheduled time.
    fn apply_fault(&mut self, index: usize) {
        let entry = self.fault_entries[index].clone();
        match entry.action {
            FaultAction::Crash { mote } => {
                self.crash_mote(mote, CrashCause::injected(), None);
            }
            FaultAction::Reboot { mote, delay_us } => {
                let (s, l) = self.loc(mote);
                if self.shards[s].status[l].is_up() {
                    // crash-then-reboot in one action
                    self.crash_mote(mote, CrashCause::injected(), Some(delay_us));
                } else {
                    let at = self.now + self.effective_reboot_delay(delay_us);
                    self.schedule(at, Fire::Reboot { mote });
                }
            }
            FaultAction::Partition { ref group_a, ref group_b, until_us } => {
                self.radio.set_partition(group_a, group_b, until_us);
            }
            FaultAction::Heal => self.radio.heal(),
            FaultAction::LossBurst { from, to, rate, until_us } => {
                self.radio.set_link_loss(from, to, rate, until_us);
            }
            FaultAction::ClockSkew { mote, ppm } => {
                let (s, l) = self.loc(mote);
                self.shards[s].skew_ppm[l] = ppm;
            }
            FaultAction::DropInFlight { mote } => {
                // in-flight deliveries to one mote live in exactly one
                // heap: its own shard's
                let (s, _) = self.loc(mote);
                let dropped = self.shards[s]
                    .heap
                    .retain(|_, _, f| !matches!(f, Fire::Deliver { to, .. } if *to == mote));
                self.note_in_flight_drops(mote, dropped as u64);
            }
        }
    }

    /// Revives a crashed mote: radio back up, `MoteRebooted` trace event,
    /// then the backend's `reboot` callback (fresh boot with state loss).
    fn apply_reboot(&mut self, mote: MoteId) {
        let (s, l) = self.loc(mote);
        if self.shards[s].status[l].is_up() {
            return; // a stale reboot (mote was already revived)
        }
        self.shards[s].status[l] = MoteStatus::Up;
        self.shards[s].stats[l].reboots += 1;
        self.radio.set_down(mote, false);
        let boots = self.shards[s].crashes[l] + 1;
        self.emit_world_event(mote, TraceEvent::MoteRebooted { boots });
        self.with_ctx(mote, |backend, ctx| backend.reboot(ctx));
    }

    /// Boots every mote (virtual time 0).
    pub fn boot(&mut self) {
        self.ensure_shards();
        for id in 0..self.mote_count() {
            self.with_ctx(id, |backend, ctx| backend.boot(ctx));
        }
    }

    /// Total `(pushes, pops)` across the world queue and every shard heap.
    /// The counters travel with checked-out shards, so window deltas
    /// include the workers' own scheduling traffic.
    fn heap_op_totals(&self) -> (u64, u64) {
        let (mut pushes, mut pops) = self.world_queue.op_counts();
        for shard in &self.shards {
            let (p, q) = shard.heap.op_counts();
            pushes += p;
            pops += q;
        }
        (pushes, pops)
    }

    /// Runs until the given virtual time (µs), or until nothing is left.
    ///
    /// Sequentially min-scans the world queue and the shard heads; because
    /// every key packs `(lane, seq)` under one global counter, the scan
    /// pops the exact order a single merged heap would.
    pub fn run_until(&mut self, deadline: u64) {
        self.ensure_shards();
        loop {
            let mut best = self.world_queue.peek_key();
            let mut src = usize::MAX;
            for (i, shard) in self.shards.iter().enumerate() {
                if let Some(k) = shard.heap.peek_key() {
                    let better = match best {
                        Some(b) => k < b,
                        None => true,
                    };
                    if better {
                        best = Some(k);
                        src = i;
                    }
                }
            }
            let Some((at, _)) = best else { break };
            if at > deadline {
                break;
            }
            let (at, _, fire) = if src == usize::MAX {
                self.world_queue.pop().expect("peeked")
            } else {
                self.shards[src].heap.pop().expect("peeked")
            };
            self.now = at;
            match fire {
                Fire::Deliver { to, packet } => {
                    // the destination may have gone down while the packet
                    // was in flight: discard at arrival, don't wake it
                    let (s, l) = self.loc(to);
                    if !self.shards[s].status[l].is_up() || self.radio.is_down(to) {
                        self.note_in_flight_drops(to, 1);
                        continue;
                    }
                    self.stats.delivered += 1;
                    self.shards[s].stats[l].received += 1;
                    self.with_ctx(to, |backend, ctx| backend.deliver(ctx, packet));
                }
                Fire::Timer { mote } => {
                    // stale timer? (the mote re-requested a different time,
                    // or crashed — a crash clears `timer_at`)
                    let (s, l) = self.loc(mote);
                    let shard = &mut self.shards[s];
                    if shard.timer_at[l] == Some(at) && shard.status[l].is_up() {
                        shard.timer_at[l] = None;
                        shard.stats[l].timer_firings += 1;
                        self.with_ctx(mote, |backend, ctx| backend.timer(ctx));
                    }
                }
                Fire::Cpu { mote } => {
                    let (s, l) = self.loc(mote);
                    if !self.shards[s].status[l].is_up() {
                        continue; // crash cleared `cpu_scheduled` already
                    }
                    self.stats.cpu_slices += 1;
                    self.shards[s].stats[l].cpu_slices += 1;
                    self.shards[s].cpu_scheduled[l] = false;
                    self.with_ctx(mote, |backend, ctx| backend.cpu(ctx));
                }
                Fire::Fault { index } => self.apply_fault(index),
                Fire::Reboot { mote } => self.apply_reboot(mote),
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs one backend callback and applies its effects (sends, timer
    /// requests, CPU requests). Mirrored exactly by
    /// [`Shard::run_window`](crate::shard::Shard::run_window), which defers
    /// the radio-touching effects to the merge barrier.
    fn with_ctx(&mut self, id: MoteId, f: impl FnOnce(&mut dyn Backend, &mut MoteCtx)) {
        let (s, l) = self.loc(id);
        let now = self.now;
        let skew = self.shards[s].skew_ppm[l];
        let mut backend = std::mem::replace(&mut self.shards[s].backends[l], Box::new(Inert));
        let (outbox, timer_request, wants_cpu, failure);
        {
            let shard = &mut self.shards[s];
            let mut ctx =
                MoteCtx::new(id, skewed(now, skew), &mut shard.leds[l], &mut shard.vm_scratch);
            f(backend.as_mut(), &mut ctx);
            outbox = std::mem::take(&mut ctx.outbox);
            timer_request = ctx.timer_request;
            wants_cpu = ctx.wants_cpu;
            failure = ctx.take_failure();
        }
        self.shards[s].backends[l] = backend;
        {
            let mut trace = self.trace.as_mut();
            let shard = &mut self.shards[s];
            if trace.is_some() || shard.recorder.is_some() {
                for event in &shard.vm_scratch {
                    shard.trace_seq[l] += 1;
                    if let Some(rec) = shard.recorder.as_mut() {
                        rec.record(now, id, shard.trace_seq[l], event);
                    }
                    if let Some(trace) = trace.as_deref_mut() {
                        trace.push(WorldTraceEvent {
                            world_time_us: now,
                            mote: id,
                            seq: shard.trace_seq[l],
                            event: event.normalized(),
                        });
                    }
                }
            } else {
                // keep the per-mote counter in step with the parallel
                // path, which stamps events before the merge decides
                shard.trace_seq[l] += shard.vm_scratch.len() as u64;
            }
            shard.vm_scratch.clear();
        }
        if let Some(cause) = failure {
            // graceful degradation: the failing callback's pending effects
            // (sends, timer/CPU requests) die with the mote
            self.crash_mote(id, cause, None);
            return;
        }
        for (to, packet) in outbox {
            self.shards[s].stats[l].sent += 1;
            if let Some(arrival) = self.radio.transmit(now, id, to, &packet) {
                self.schedule(arrival, Fire::Deliver { to, packet });
            } else {
                self.stats.lost += 1;
                self.shards[s].stats[l].lost += 1;
            }
        }
        if let Some(at) = timer_request {
            // the backend asked in its own (skewed) clock; convert back
            let at = unskew(at, skew).max(now);
            let better = match self.shards[s].timer_at[l] {
                Some(t) => at < t,
                None => true,
            };
            if better {
                self.shards[s].timer_at[l] = Some(at);
                self.schedule(at, Fire::Timer { mote: id });
            }
        }
        if wants_cpu && !self.shards[s].cpu_scheduled[l] {
            self.shards[s].cpu_scheduled[l] = true;
            let at = now + self.cpu_slice_us;
            self.schedule(at, Fire::Cpu { mote: id });
        }
    }

    /// Replays deferred window effects — sends and crash world-effects —
    /// whose time lies strictly before `threshold` (all of them when
    /// `None`), interleaved in the canonical `(time, mote, emission)`
    /// order through the single radio RNG. Deferral is what keeps the RNG
    /// draw order global-time-sorted under *per-shard* lookaheads: a
    /// fast-lookahead window can emit a send later (in virtual time) than
    /// a send a slower shard will only emit next window, so transmits
    /// must wait until no earlier emission can still appear — i.e. until
    /// the global head has moved past them. Returns whether anything was
    /// replayed (new deliveries may change the global head).
    fn flush_merge_actions(
        &mut self,
        sends: &mut Vec<(u64, MoteId, usize, MoteId, Packet)>,
        crashes: &mut Vec<(u64, MoteId, usize)>,
        threshold: Option<u64>,
    ) -> bool {
        if sends.is_empty() && crashes.is_empty() {
            return false;
        }
        sends.sort_unstable_by_key(|s| (s.0, s.1, s.2));
        crashes.sort_unstable();
        let within = |at: u64| match threshold {
            Some(t) => at < t,
            None => true,
        };
        let n_s = sends.iter().take_while(|s| within(s.0)).count();
        let n_c = crashes.iter().take_while(|c| within(c.0)).count();
        if n_s == 0 && n_c == 0 {
            return false;
        }
        let mut crash_iter = crashes.drain(..n_c).peekable();
        for (at, from, emission, to, packet) in sends.drain(..n_s) {
            // crash world-effects precede the sends they beat in the
            // canonical order: the crash powers the radio off, and later
            // loss rolls must see it down — exactly as in [`run_until`]
            while let Some(&(c_at, c_mote, c_emission)) = crash_iter.peek() {
                if (c_at, c_mote, c_emission) <= (at, from, emission) {
                    self.apply_crash_world_effects(c_mote, c_at);
                    crash_iter.next();
                } else {
                    break;
                }
            }
            if let Some(arrival) = self.radio.transmit(at, from, to, &packet) {
                self.schedule(arrival, Fire::Deliver { to, packet });
            } else {
                self.stats.lost += 1;
                let (s, l) = self.loc(from);
                self.shards[s].stats[l].lost += 1;
            }
        }
        for (c_at, c_mote, _) in crash_iter {
            self.apply_crash_world_effects(c_mote, c_at);
        }
        true
    }

    /// Runs until `deadline` using a conservative sharded-PDES scheduler
    /// across `threads` workers — **bit-identical** to [`World::run_until`].
    ///
    /// Per window: pop any world events at the global head (they mutate
    /// shared state, so they barrier); then every shard with pending work
    /// runs independently on a pooled worker up to its own bound
    /// `run_end(S) = start + lookahead(S)`, clipped by the next world
    /// event. `lookahead(S)` is the minimum latency over links *into* `S`
    /// (see [`ShardPlan`]), so no in-window send — cross-shard or local —
    /// can arrive before any shard's bound. Workers defer every radio
    /// interaction; the merge sorts the window's sends into the canonical
    /// `(time, sender, emission)` order and replays them through the
    /// single radio RNG, which keeps loss rolls — and therefore the whole
    /// event stream — identical to the sequential stepper's.
    ///
    /// If a mote panics inside a window the panic is re-raised here with
    /// window context after the merge (other motes' effects are kept).
    pub fn run_until_parallel(&mut self, deadline: u64, threads: usize) {
        self.ensure_shards();
        let run_t0 = std::time::Instant::now();
        let lookahead = self.radio.min_latency();
        let stats_on = self.par_stats.is_some();
        if let Some(ps) = self.par_stats.as_mut() {
            ps.threads = threads as u32;
            ps.lookahead_us = lookahead;
            ps.motes = self.mote_shard.len() as u32;
            ps.shards = self.shards.len() as u32;
        }
        // Degenerate worlds fall back to the sequential stepper: nothing
        // to parallelise (≤1 thread or ≤1 mote) or no safe lookahead
        // (a zero-latency link makes every window empty).
        if threads <= 1 || lookahead == 0 || self.mote_shard.len() <= 1 {
            self.run_until(deadline);
            if let Some(ps) = self.par_stats.as_mut() {
                ps.fallback = true;
                ps.wall_ns += run_t0.elapsed().as_nanos() as u64;
            }
            return;
        }
        let need_pool = match &self.pool {
            Some(p) => p.size() < threads,
            None => true,
        };
        if need_pool {
            self.pool = Some(WorkerPool::new(threads));
        }
        let hard_end = deadline.saturating_add(1);
        let wall_base = self.par_stats.as_ref().map_or(0, |ps| ps.wall_ns);
        let mut pending_sends = std::mem::take(&mut self.merge_sends);
        pending_sends.clear();
        let mut pending_crashes: Vec<(u64, MoteId, usize)> = Vec::new();
        loop {
            // find the global head: world queue vs shard heads
            let world_head = self.world_queue.peek_key();
            let mut best = world_head;
            let mut from_world = world_head.is_some();
            for shard in &self.shards {
                if let Some(k) = shard.heap.peek_key() {
                    let better = match best {
                        Some(b) => k < b,
                        None => true,
                    };
                    if better {
                        best = Some(k);
                        from_world = false;
                    }
                }
            }
            // replay deferred effects that nothing can precede anymore
            let threshold = match best {
                Some((at, _)) if at <= deadline => Some(at),
                _ => None,
            };
            if self.flush_merge_actions(&mut pending_sends, &mut pending_crashes, threshold) {
                continue; // fresh deliveries may have moved the head
            }
            let Some((start, _)) = best else { break };
            if start > deadline {
                break;
            }
            if from_world {
                // world events (faults, reboots) barrier: apply on the
                // simulation thread at exactly their scheduled time
                let (at, _, fire) = self.world_queue.pop().expect("peeked");
                self.now = at;
                match fire {
                    Fire::Fault { index } => self.apply_fault(index),
                    Fire::Reboot { mote } => self.apply_reboot(mote),
                    _ => unreachable!("only world fires enter the world queue"),
                }
                continue;
            }
            let world_at = world_head.map(|(at, _)| at);
            let win_t0 = stats_on.then(std::time::Instant::now);
            let heap_ops_0 = stats_on.then(|| self.heap_op_totals());
            // check out every shard with work inside its own window
            let refresh = self.radio.down.iter().any(|&d| d);
            let mut jobs: Vec<ShardJob> = Vec::new();
            let mut any_clipped = false;
            let mut max_run_end = start;
            for i in 0..self.shards.len() {
                let Some((head_at, _)) = self.shards[i].heap.peek_key() else { continue };
                let la = self.shards[i].lookahead_us;
                let mut run_end = start.saturating_add(la).min(hard_end);
                if let Some(w) = world_at {
                    // never step past a pending world event; `max(start+1)`
                    // keeps the head-owning shard's window non-empty (the
                    // world event itself sits at or after `start`)
                    run_end = run_end.min(w.max(start + 1));
                }
                if head_at >= run_end {
                    continue;
                }
                any_clipped |= run_end < start.saturating_add(la);
                max_run_end = max_run_end.max(run_end);
                if refresh || self.shards[i].has_down {
                    self.shards[i].refresh_down(&self.radio);
                }
                let shard = std::mem::replace(&mut self.shards[i], Shard::placeholder(i as u32));
                jobs.push(ShardJob { shard, run_end });
            }
            // the shard holding the global head always qualifies:
            // head_at == start < run_end (run_end ≥ start+1)
            debug_assert!(!jobs.is_empty());
            let workers = threads.min(jobs.len()).max(1);
            let mut batches: Vec<Vec<ShardJob>> = (0..workers).map(|_| Vec::new()).collect();
            for (k, job) in jobs.into_iter().enumerate() {
                batches[k % workers].push(job);
            }
            let seq_base = self.seq;
            let drain_done = stats_on.then(std::time::Instant::now);
            let outs = self.pool.as_mut().expect("pool created above").dispatch(
                batches,
                seq_base,
                self.cpu_slice_us,
                stats_on,
            );
            let par_done = stats_on.then(std::time::Instant::now);
            // ---- merge barrier (simulation thread) ----
            self.now = start;
            let mut busy_ns = vec![0u64; if stats_on { workers } else { 0 }];
            let mut events_per_worker = vec![0u64; if stats_on { workers } else { 0 }];
            let mut motes_per_worker = vec![0u32; if stats_on { workers } else { 0 }];
            let mut shard_busy: Vec<(u32, u32, u64, u64)> = Vec::new();
            let mut win_events = 0u64;
            let mut win_motes = 0u32;
            let mut max_seq = self.seq;
            let pend0 = pending_sends.len();
            let mut panicked: Option<(MoteId, String, u64)> = None;
            for bout in outs {
                let wait_each = bout.channel_wait_ns / bout.jobs.len().max(1) as u64;
                if stats_on {
                    busy_ns[bout.worker] = bout.busy_ns;
                }
                for JobOut { shard, out, run_end: job_end, busy_ns: jbusy } in bout.jobs {
                    let sid = out.shard;
                    debug_assert_eq!(sid, shard.id);
                    if stats_on {
                        events_per_worker[bout.worker] += out.events;
                        motes_per_worker[bout.worker] += shard.n() as u32;
                    }
                    win_events += out.events;
                    win_motes += shard.n() as u32;
                    let n_sends = out.sends.len() as u64;
                    max_seq = max_seq.max(out.seq_used);
                    self.stats.delivered += out.delivered;
                    self.stats.cpu_slices += out.cpu_slices;
                    self.stats.dropped_in_flight += out.dropped_in_flight;
                    self.radio.stats.dropped_in_flight += out.dropped_in_flight;
                    if let Some(trace) = self.trace.as_mut() {
                        trace.extend(out.trace);
                    }
                    pending_crashes.extend(out.crashes);
                    if let Some((mote, msg)) = out.panicked {
                        panicked.get_or_insert((mote, msg, job_end));
                    }
                    pending_sends.extend(out.sends);
                    if let Some(ps) = self.par_stats.as_mut() {
                        ps.record_shard(
                            sid,
                            shard.n() as u32,
                            out.events,
                            jbusy,
                            n_sends,
                            wait_each,
                        );
                    }
                    if stats_on {
                        shard_busy.push((sid, bout.worker as u32, jbusy, out.events));
                    }
                    self.shards[sid as usize] = shard;
                }
            }
            if let Some((mote, msg, run_end)) = panicked {
                // last-gasp black box: the shards (and their rings) were
                // merged back above, so the dump carries history right up
                // to the failing window
                self.maybe_dump_blackbox("worker-panic", Some(mote));
                panic!("mote {mote} panicked in parallel window [{start}, {run_end}): {msg}");
            }
            // workers consumed seqs from `seq_base` upward for their own
            // timer/CPU pushes; advance past them so the merge's Deliver
            // seqs sort after every in-window push (matching the
            // sequential stepper, where the send is scheduled after the
            // callback's own requests)
            self.seq = max_seq;
            // the window's sends and crash effects stay *deferred* in the
            // pending buffers — the pre-window flush replays them through
            // the radio RNG once nothing earlier can still appear (see
            // `flush_merge_actions`); here we only stamp the stats sample
            let new_sends = &mut pending_sends[pend0..];
            new_sends.sort_unstable_by_key(|s| (s.0, s.1, s.2));
            let cross_sends = new_sends.len() as u64;
            let send_sample: Vec<(u64, u32, u32)> = new_sends
                .iter()
                .take(SEND_SAMPLE_CAP)
                .map(|&(at, from, _, to, _)| (at, from as u32, to as u32))
                .collect();
            if let (Some(ps), Some(win_t0), Some(drain_done), Some(par_done), Some(ops0)) =
                (self.par_stats.as_mut(), win_t0, drain_done, par_done, heap_ops_0)
            {
                let (p0, q0) = ops0;
                let mut pushes = 0u64;
                let mut pops = 0u64;
                {
                    let (wp, wq) = self.world_queue.op_counts();
                    pushes += wp;
                    pops += wq;
                }
                for shard in &self.shards {
                    let (p, q) = shard.heap.op_counts();
                    pushes += p;
                    pops += q;
                }
                let index = ps.totals.windows;
                ps.record_window(ParWindowStats {
                    index,
                    t_wall_ns: wall_base + win_t0.duration_since(run_t0).as_nanos() as u64,
                    start_us: start,
                    end_us: max_run_end,
                    lookahead_us: lookahead,
                    clipped: any_clipped,
                    threads: threads as u32,
                    workers: workers as u32,
                    motes: win_motes,
                    events: win_events,
                    busy_ns,
                    events_per_worker,
                    motes_per_worker,
                    drain_ns: drain_done.duration_since(win_t0).as_nanos() as u64,
                    par_ns: par_done.duration_since(drain_done).as_nanos() as u64,
                    merge_ns: par_done.elapsed().as_nanos() as u64,
                    heap_pushes: pushes - p0,
                    heap_pops: pops - q0,
                    cross_sends,
                    send_sample,
                    shard_busy,
                });
            }
        }
        debug_assert!(pending_sends.is_empty() && pending_crashes.is_empty());
        self.merge_sends = pending_sends;
        if let Some(ps) = self.par_stats.as_mut() {
            ps.fallback = false;
            ps.wall_ns += run_t0.elapsed().as_nanos() as u64;
        }
        self.now = self.now.max(deadline);
    }
}

/// Renders a caught panic payload for re-raising with mote context.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared-handle backends: a harness can keep an `Arc<Mutex<B>>` to a
/// mote it adds to the world and read its state (metrics, clock drift)
/// after the run. `Mutex` rather than `RefCell` so the handle stays
/// `Send` and the mote can be stepped on a worker thread.
impl<B: Backend> Backend for std::sync::Arc<std::sync::Mutex<B>> {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().boot(ctx)
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        self.lock().unwrap().deliver(ctx, packet)
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().timer(ctx)
    }
    fn cpu(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().cpu(ctx)
    }
}

/// Placeholder while a backend is checked out during a callback.
pub(crate) struct Inert;

impl Backend for Inert {
    fn boot(&mut self, _: &mut MoteCtx) {}
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, _: &mut MoteCtx) {}
    fn cpu(&mut self, _: &mut MoteCtx) {}
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;

    /// Backend that pings a peer every millisecond.
    struct Pinger {
        peer: MoteId,
        received: u32,
    }

    impl Backend for Pinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            self.received += 1;
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn timers_and_delivery_flow() {
        let mut w = World::new(Radio::ideal(1_000));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert_eq!((a, b), (0, 1));
        w.boot();
        w.run_until(10_500);
        // pings at 1..=10ms, 1ms latency: arrivals at 2..=10ms by 10.5ms
        assert_eq!(w.stats.delivered, 18);
        assert_eq!(w.leds(0).history.len(), 9);
        assert_eq!(w.leds(1).history.len(), 9);
        // per-mote view agrees with the aggregate
        for m in [a, b] {
            assert_eq!(w.mote_stats(m).sent, 10);
            assert_eq!(w.mote_stats(m).received, 9);
            assert_eq!(w.mote_stats(m).lost, 0);
            assert_eq!(w.mote_stats(m).timer_firings, 10);
        }
        assert_eq!(w.radio.stats.attempts, 20);
        assert_eq!(w.radio.stats.delivered, 20, "two arrivals are past the deadline, not lost");
    }

    #[test]
    fn per_mote_losses_attribute_to_the_sender() {
        // mote 0 can reach mote 1 but not vice versa
        let mut w = World::new(Radio::new(crate::radio::Topology::Links(vec![(0, 1)]), 10, 0.0, 1));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(5_000);
        assert_eq!(w.mote_stats(a).lost, 0);
        assert_eq!(w.mote_stats(b).lost, w.mote_stats(b).sent);
        assert_eq!(w.stats.lost, w.mote_stats(b).lost);
        assert_eq!(w.radio.stats.dropped_link, w.stats.lost);
        assert_eq!(w.mote_count(), 2);
    }

    fn pinger_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 2, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 3, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w
    }

    type LedHistory = Vec<(u64, u8, bool)>;

    fn observe(w: &World) -> (Stats, Vec<MoteStats>, Vec<LedHistory>) {
        (
            w.stats,
            (0..w.mote_count()).map(|m| *w.mote_stats(m)).collect(),
            (0..w.mote_count()).map(|m| w.leds(m).history.clone()).collect(),
        )
    }

    #[test]
    fn parallel_stepping_matches_sequential() {
        let mut seq = pinger_world(Radio::ideal(1_000));
        let mut par = pinger_world(Radio::ideal(1_000));
        seq.run_until(50_500);
        par.run_until_parallel(50_500, 4);
        assert_eq!(seq.now(), par.now());
        let (s_stats, s_motes, s_leds) = observe(&seq);
        let (p_stats, p_motes, p_leds) = observe(&par);
        assert_eq!(s_stats.delivered, p_stats.delivered);
        assert_eq!(s_stats.lost, p_stats.lost);
        assert_eq!(s_stats.cpu_slices, p_stats.cpu_slices);
        assert_eq!(s_motes, p_motes);
        assert_eq!(s_leds, p_leds);
    }

    #[test]
    fn parallel_stepping_is_thread_count_invariant() {
        // a lossy medium exercises the deterministic merge order: any
        // thread count must produce the identical run
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = pinger_world(radio());
        base.run_until_parallel(40_000, 2);
        for threads in [3, 4, 8] {
            let mut w = pinger_world(radio());
            w.run_until_parallel(40_000, threads);
            assert_eq!(observe(&base), observe(&w), "threads={threads}");
        }
    }

    /// A pinger that also records a synthetic VM event per callback, so
    /// the unified world trace can be checked without a full Céu machine.
    struct TracingPinger {
        peer: MoteId,
    }

    impl Backend for TracingPinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(-1) });
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(p.value()) });
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(ctx.now as i64) });
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, ctx.now as i64));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    fn tracing_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.enable_trace();
        for peer in [1, 2, 3, 0] {
            w.add_mote(Box::new(TracingPinger { peer }));
        }
        w.boot();
        w
    }

    #[test]
    fn world_trace_is_identical_across_thread_counts() {
        // a lossy medium exercises the window merge; the merged stream
        // must be byte-identical for 1 (sequential fallback), 2 and 4
        // worker threads
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = tracing_world(radio());
        base.run_until_parallel(40_000, 1);
        let reference = base.take_trace();
        assert!(!reference.is_empty(), "the pingers must actually trace");
        let jsonl_ref: Vec<String> = reference.iter().map(|e| e.to_json()).collect();
        for threads in [2, 4] {
            let mut w = tracing_world(radio());
            w.run_until_parallel(40_000, threads);
            let trace = w.take_trace();
            assert_eq!(reference, trace, "threads={threads}");
            let jsonl: Vec<String> = trace.iter().map(|e| e.to_json()).collect();
            assert_eq!(jsonl_ref, jsonl, "wire format, threads={threads}");
        }
    }

    #[test]
    fn world_trace_orders_by_time_mote_seq() {
        let mut w = tracing_world(Radio::ideal(1_000));
        w.run_until(5_500);
        let trace = w.take_trace();
        let keys: Vec<_> = trace.iter().map(|e| (e.world_time_us, e.mote, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // per-mote seq is monotone from 1 with no gaps
        for mote in 0..w.mote_count() {
            let seqs: Vec<u64> = trace.iter().filter(|e| e.mote == mote).map(|e| e.seq).collect();
            assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>(), "mote {mote}");
        }
        // taking the trace re-arms collection
        assert!(w.trace_enabled());
        w.run_until(6_500);
        assert!(!w.take_trace().is_empty());
    }

    #[test]
    fn parallel_mote_panics_carry_mote_and_window() {
        struct Bomb;
        impl Backend for Bomb {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(1_000);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, _: &mut MoteCtx) {
                panic!("the backend blew up");
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let mut w = World::new(Radio::ideal(500));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Bomb));
        w.boot();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log quiet
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_until_parallel(5_000, 2);
        }))
        .expect_err("the mote panic must resurface");
        std::panic::set_hook(prev);
        let msg = err.downcast_ref::<String>().cloned().expect("panic message is a string");
        assert!(msg.contains("mote 1 panicked in parallel window ["), "{msg}");
        assert!(msg.contains("the backend blew up"), "{msg}");
    }

    #[test]
    fn zero_latency_media_fall_back_to_sequential() {
        let mut seq = pinger_world(Radio::ideal(0));
        let mut par = pinger_world(Radio::ideal(0));
        seq.run_until(10_000);
        par.run_until_parallel(10_000, 4);
        assert_eq!(observe(&seq), observe(&par));
    }

    #[test]
    fn led_history_records_on_times() {
        let mut leds = Leds::default();
        leds.toggle(5, 1);
        leds.toggle(10, 1);
        leds.toggle(15, 1);
        assert_eq!(leds.on_times(1), vec![5, 15]);
    }

    /// Pings like `Pinger` but deliberately fails its "machine" during
    /// the first timer callback at/after `fail_at` (one-shot: a reboot
    /// more than 1 ms later does not re-trigger it).
    struct FlakyPinger {
        peer: MoteId,
        fail_at: u64,
    }

    impl Backend for FlakyPinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            if ctx.now >= self.fail_at && ctx.now < self.fail_at + 1_000 {
                let e = RuntimeError::new(Span::default(), "sensor read of nothing");
                ctx.fail(CrashCause::from_error(&e));
                return;
            }
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn set_mote_down_validates_ids() {
        let mut w = World::new(Radio::ideal(10));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert!(w.set_mote_down(0, true).is_ok());
        assert!(w.radio.is_down(0));
        let err = w.set_mote_down(5, true).unwrap_err();
        assert!(err.contains("mote 5"), "{err}");
        assert!(!w.radio.is_down(5), "rejected ids must not grow the down set");
    }

    #[test]
    fn fault_plans_reject_unknown_motes() {
        let mut w = World::new(Radio::ideal(10));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        let plan = FaultPlan::new().at(5, FaultAction::Crash { mote: 3 });
        assert!(w.set_fault_plan(&plan).unwrap_err().contains("mote 3"));
    }

    #[test]
    fn in_flight_packets_drop_when_the_destination_crashes() {
        // pings every ms with 1 ms latency; crashing mote 1 at 1.5 ms
        // catches exactly one packet (sent at 1 ms, due at 2 ms) mid-air
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(&FaultPlan::new().at(1_500, FaultAction::Crash { mote: 1 })).unwrap();
        w.boot();
        w.run_until(10_000);
        assert_eq!(w.stats.dropped_in_flight, 1);
        assert_eq!(w.mote_stats(1).dropped_in_flight, 1);
        assert_eq!(w.radio.stats.dropped_in_flight, 1);
        assert!(!w.mote_status(1).is_up());
        assert_eq!(w.mote_stats(1).crashes, 1);
        // later pings toward the downed mote die at the radio instead
        assert!(w.radio.stats.dropped_link > 0);
    }

    #[test]
    fn crashed_motes_reboot_and_reconverge() {
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(
            &FaultPlan::new().at(5_500, FaultAction::Reboot { mote: 1, delay_us: 3_000 }),
        )
        .unwrap();
        w.boot();
        w.run_until(30_000);
        assert!(w.mote_status(1).is_up(), "rebooted");
        assert_eq!(w.mote_stats(1).crashes, 1);
        assert_eq!(w.mote_stats(1).reboots, 1);
        // traffic resumed after the reboot: mote 0 kept receiving pings
        // well past the outage window
        let received_after = w.leds(0).history.iter().filter(|(t, _, _)| *t > 12_000).count();
        assert!(received_after > 0, "mote 1's pings resumed after its reboot");
    }

    #[test]
    fn machine_failures_crash_the_mote_not_the_process() {
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 4_000 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.enable_trace();
        w.boot();
        w.run_until(10_000);
        match w.mote_status(0) {
            MoteStatus::Crashed { at, cause } => {
                assert_eq!(*at, 4_000);
                assert_eq!(cause.kind, CrashKind::RuntimeError);
                assert!(cause.message.contains("sensor read of nothing"));
            }
            MoteStatus::Up => panic!("mote 0 should have crashed"),
        }
        // the crash is visible in the world trace
        let trace = w.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.mote == 0 && matches!(e.event, TraceEvent::MoteCrashed { .. })));
        // RebootPolicy::Never: it stays down
        assert_eq!(w.mote_stats(0).reboots, 0);
    }

    #[test]
    fn reboot_policy_revives_machine_crashes() {
        let mut w = World::new(Radio::ideal(1_000));
        w.set_reboot_policy(RebootPolicy::After(2_000));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 4_000 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(20_000);
        assert!(w.mote_status(0).is_up());
        assert_eq!(w.mote_stats(0).crashes, 1);
        assert_eq!(w.mote_stats(0).reboots, 1);
    }

    fn chaotic_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.enable_trace();
        w.set_reboot_policy(RebootPolicy::After(2_500));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 7_300 }));
        for peer in [2, 3, 0] {
            w.add_mote(Box::new(TracingPinger { peer }));
        }
        let plan = FaultPlan::new()
            .at(3_200, FaultAction::ClockSkew { mote: 2, ppm: 300 })
            .at(
                5_100,
                FaultAction::Partition {
                    group_a: vec![0, 1],
                    group_b: vec![2, 3],
                    until_us: 9_000,
                },
            )
            .at(10_400, FaultAction::Reboot { mote: 3, delay_us: 2_000 })
            .at(12_000, FaultAction::LossBurst { from: 1, to: 2, rate: 0.6, until_us: 20_000 })
            .at(15_000, FaultAction::DropInFlight { mote: 2 })
            .at(21_000, FaultAction::Heal);
        w.set_fault_plan(&plan).unwrap();
        w.boot();
        w
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        // the acceptance property: under a plan mixing crashes, reboots,
        // partitions, skew, bursts and in-flight drops — on a lossy
        // medium, with a machine crash mid-run — the world trace and all
        // counters are bit-identical at any thread count
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.2, 13);
        let mut seq = chaotic_world(radio());
        seq.run_until(40_000);
        let seq_obs = observe(&seq);
        let seq_trace = seq.take_trace();
        assert!(
            seq_trace.iter().any(|e| matches!(e.event, TraceEvent::MoteCrashed { .. })),
            "somebody must crash for this test to bite"
        );
        assert!(
            seq_trace.iter().any(|e| matches!(e.event, TraceEvent::MoteRebooted { .. })),
            "somebody must reboot for this test to bite"
        );
        for threads in [2, 4, 8] {
            let mut par = chaotic_world(radio());
            par.run_until_parallel(40_000, threads);
            assert_eq!(seq_obs, observe(&par), "threads={threads}");
            assert_eq!(seq_trace, par.take_trace(), "threads={threads}");
        }
    }

    #[test]
    fn sharded_clustered_world_is_thread_count_invariant() {
        // the sharded acceptance property: a clustered medium (distinct
        // per-cluster latencies → distinct per-shard lookaheads) under a
        // chaotic fault plan, with par-stats enabled, stays bit-identical
        // to the sequential stepper at every thread count
        let build = || {
            let mut w =
                World::new(Radio::clustered(4, 3, vec![600, 900, 750, 650], 4_000, 0.15, 21));
            w.enable_trace();
            w.enable_par_stats();
            w.set_reboot_policy(RebootPolicy::After(2_500));
            for m in 0..12 {
                let peer = (m / 3) * 3 + (m + 1) % 3;
                w.add_mote(Box::new(TracingPinger { peer }));
            }
            let plan = FaultPlan::new()
                .at(4_000, FaultAction::Crash { mote: 5 })
                .at(9_000, FaultAction::ClockSkew { mote: 2, ppm: 400 })
                .at(14_000, FaultAction::LossBurst { from: 0, to: 1, rate: 0.5, until_us: 25_000 });
            w.set_fault_plan(&plan).unwrap();
            w.boot();
            w
        };
        let mut seq = build();
        seq.run_until(40_000);
        let seq_obs = observe(&seq);
        let seq_trace = seq.take_trace();
        assert!(seq_trace.iter().any(|e| matches!(e.event, TraceEvent::MoteCrashed { .. })));
        for threads in [1, 2, 4, 8] {
            let mut par = build();
            par.run_until_parallel(40_000, threads);
            assert_eq!(seq_obs, observe(&par), "threads={threads}");
            assert_eq!(seq_trace, par.take_trace(), "threads={threads}");
            let ps = par.take_par_stats().expect("enabled");
            if threads > 1 {
                assert!(ps.totals.windows > 0, "threads={threads}");
                assert!(ps.shards >= 2, "threads={threads}");
            }
        }
    }

    #[test]
    fn resharding_mid_run_preserves_the_event_stream() {
        // set_target_shards mid-run migrates every pending event with its
        // original key, so the merged behaviour cannot change
        let mut a = tracing_world(Radio::ideal(1_000));
        a.run_until(5_500);
        let mut b = tracing_world(Radio::ideal(1_000));
        b.run_until_parallel(2_500, 4);
        b.set_target_shards(2);
        b.run_until_parallel(5_500, 4);
        assert_eq!(observe(&a), observe(&b));
        assert_eq!(a.take_trace(), b.take_trace());
        assert_eq!(b.shard_count(), 2);
    }

    #[test]
    fn clock_skew_stretches_timers_deterministically() {
        // +100000 ppm (10% fast): the mote's local 1 ms period spans only
        // ~0.91 ms of world time, so it fires more timers over the run
        let run = |ppm: i64| {
            let mut w = World::new(Radio::ideal(1_000));
            w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
            w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
            if ppm != 0 {
                w.set_fault_plan(&FaultPlan::new().at(0, FaultAction::ClockSkew { mote: 0, ppm }))
                    .unwrap();
            }
            w.boot();
            w.run_until(50_000);
            w.mote_stats(0).timer_firings
        };
        let straight = run(0);
        let fast = run(100_000);
        assert!(fast > straight, "skewed {fast} vs straight {straight}");
        assert_eq!(fast, run(100_000), "and it is reproducible");
    }

    #[test]
    fn unskew_always_reaches_the_local_deadline() {
        // regression: the plain floor inverse could return a world time
        // whose local view was still short of the deadline (+500 ppm,
        // local 3000 → world 2998, skewed back to only 2999), so the
        // timer gate never fired and the mote re-armed the identical
        // request at the same instant forever
        for &ppm in &[500i64, -400, 300, 777, -777, 100_000, -100_000, 999_999, -999_999] {
            for local in (0..5_000u64).chain([123_456, 10_000_000]) {
                let w = unskew(local, ppm);
                assert!(skewed(w, ppm) >= local, "ppm={ppm} local={local} w={w}");
            }
        }
    }

    #[test]
    fn positive_skew_cannot_livelock_timers() {
        // end-to-end form of the regression above: +500 ppm used to spin
        // at a fixed virtual time instead of reaching the deadline
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(&FaultPlan::new().at(0, FaultAction::ClockSkew { mote: 0, ppm: 500 }))
            .unwrap();
        w.boot();
        w.run_until(50_000);
        assert!(w.mote_stats(0).timer_firings > 40, "the skewed mote must keep ticking");
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = World::new(Radio::ideal(0));
        struct Recorder {
            seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
        }
        impl Backend for Recorder {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(500);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, ctx: &mut MoteCtx) {
                self.seen.lock().unwrap().push(ctx.now);
                if ctx.now < 2_000 {
                    ctx.set_timer_at(ctx.now + 500);
                }
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let seen = std::sync::Arc::new(std::sync::Mutex::new(vec![]));
        w.add_mote(Box::new(Recorder { seen: seen.clone() }));
        w.boot();
        w.run_until(3_000);
        assert_eq!(*seen.lock().unwrap(), vec![500, 1000, 1500, 2000]);
    }
}

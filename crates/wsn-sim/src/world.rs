//! The discrete-event wireless-sensor-network simulator.
//!
//! Substitutes for the paper's micaz testbed (see DESIGN.md): a virtual
//! clock in microseconds, motes with pluggable application backends, and a
//! radio medium with per-link latency and loss. The paper's own argument
//! (§2.8) justifies the substitution — a reactive program's behaviour
//! depends only on the order of its input events.

use crate::radio::{Packet, Radio};
use crate::sched::EventHeap;
use ceu::runtime::TraceEvent;

/// Node id within a network.
pub type MoteId = usize;

/// One VM trace event situated in the world: which mote emitted it, at
/// what virtual time, and where it falls in that mote's own event order.
///
/// The unified world trace is the observability spine of the simulator:
/// every mote's machine-level trace (reactions, tracks, gates, emits) is
/// merged into a single stream whose order is **deterministic** — sorted
/// by `(world_time_us, mote, seq)`, where `seq` is the per-mote emission
/// index. Because each mote sees the identical callback sequence under
/// [`World::run_until`] and [`World::run_until_parallel`] (any thread
/// count), the merged stream is bit-identical across all of them.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldTraceEvent {
    /// Virtual time (µs) of the callback that produced the event.
    pub world_time_us: u64,
    pub mote: MoteId,
    /// Per-mote emission index (1-based, monotone for each mote).
    pub seq: u64,
    /// The machine-level event, wall-clock fields normalised to zero so
    /// the stream is reproducible run-to-run.
    pub event: TraceEvent,
}

impl WorldTraceEvent {
    /// One JSONL line of the stable wire format read by `ceu-trace`:
    /// `{"t_us":N,"mote":M,"seq":S,"ev":{…event_to_json…}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_us\":{},\"mote\":{},\"seq\":{},\"ev\":{}}}",
            self.world_time_us,
            self.mote,
            self.seq,
            ceu::runtime::telemetry::event_to_json(&self.event)
        )
    }
}

/// Writes a merged world trace as JSONL (one event per line).
pub fn write_trace_jsonl<W: std::io::Write>(
    events: &[WorldTraceEvent],
    mut w: W,
) -> std::io::Result<()> {
    for e in events {
        writeln!(w, "{}", e.to_json())?;
    }
    Ok(())
}

/// What a scheduled simulation event does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fire {
    /// Deliver a packet to a mote's radio.
    Deliver { to: MoteId, packet: Packet },
    /// A mote's requested timer expires.
    Timer { mote: MoteId },
    /// Grant a CPU slice to a mote (long computations / threads).
    Cpu { mote: MoteId },
}

/// The environment handle passed to application backends.
pub struct MoteCtx<'w> {
    pub id: MoteId,
    pub now: u64,
    /// LED state (bitmask) plus toggle history, recorded by the harnesses.
    pub leds: &'w mut Leds,
    /// Packets to transmit, collected after the callback returns.
    pub outbox: Vec<(MoteId, Packet)>,
    /// Absolute time of the next timer callback this mote wants (if any).
    pub timer_request: Option<u64>,
    /// Whether this mote wants CPU slices (long computations pending).
    pub wants_cpu: bool,
    /// Machine-level trace events produced during this callback; drained
    /// into the unified world trace (see [`WorldTraceEvent`]) after the
    /// callback returns. Backends that don't trace leave it empty.
    pub vm_events: Vec<TraceEvent>,
}

impl MoteCtx<'_> {
    pub fn send(&mut self, to: MoteId, packet: Packet) {
        self.outbox.push((to, packet));
    }

    pub fn set_timer_at(&mut self, at: u64) {
        self.timer_request = Some(match self.timer_request {
            Some(t) => t.min(at),
            None => at,
        });
    }
}

/// LED state with a full toggle history (timestamps in µs) — the
/// measurement surface of the blink-synchronization experiment.
#[derive(Clone, Debug, Default)]
pub struct Leds {
    pub state: u8,
    /// `(time, led, new_state)` for every change.
    pub history: Vec<(u64, u8, bool)>,
}

impl Leds {
    pub fn set_mask(&mut self, now: u64, mask: u8) {
        for led in 0..3 {
            let new = mask & (1 << led) != 0;
            let old = self.state & (1 << led) != 0;
            if new != old {
                self.history.push((now, led, new));
            }
        }
        self.state = mask;
    }

    pub fn toggle(&mut self, now: u64, led: u8) {
        let new = self.state & (1 << led) == 0;
        self.state ^= 1 << led;
        self.history.push((now, led, new));
    }

    /// Times at which the given led switched on.
    pub fn on_times(&self, led: u8) -> Vec<u64> {
        self.history.iter().filter(|(_, l, on)| *l == led && *on).map(|(t, _, _)| *t).collect()
    }
}

/// An application running on a mote. Backends: Céu machines, event-driven
/// (nesC-analog) handlers, preemptive-thread (MantisOS-analog) schedulers.
///
/// `Send` so the world can step disjoint motes on worker threads
/// ([`World::run_until_parallel`]); every backend is still only ever
/// called from one thread at a time.
pub trait Backend: Send {
    /// Called once at virtual time zero.
    fn boot(&mut self, ctx: &mut MoteCtx);
    /// A packet arrived (already past the radio medium).
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet);
    /// The previously requested timer fired.
    fn timer(&mut self, ctx: &mut MoteCtx);
    /// One CPU slice was granted; runs a bounded amount of computation.
    fn cpu(&mut self, ctx: &mut MoteCtx);
}

struct MoteSlot {
    backend: Box<dyn Backend>,
    leds: Leds,
    /// Absolute time of the pending Timer event (dedup guard).
    timer_at: Option<u64>,
    cpu_scheduled: bool,
    stats: MoteStats,
    /// Per-mote world-trace emission counter (see [`WorldTraceEvent::seq`]).
    trace_seq: u64,
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub delivered: u64,
    pub lost: u64,
    pub cpu_slices: u64,
}

/// Per-mote statistics (the network-wide aggregates live in [`Stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoteStats {
    /// Packets handed to the radio medium.
    pub sent: u64,
    /// Packets delivered to this mote.
    pub received: u64,
    /// Packets this mote sent that the medium dropped (loss, partition,
    /// or a downed endpoint).
    pub lost: u64,
    /// Timer callbacks delivered.
    pub timer_firings: u64,
    /// CPU slices granted.
    pub cpu_slices: u64,
}

/// The network simulator.
pub struct World {
    now: u64,
    seq: u64,
    /// Pending firings keyed by `(at, seq)`; payloads live inline in the
    /// heap nodes (see [`EventHeap`]), so popping moves them out instead
    /// of cloning from a side table.
    queue: EventHeap<Fire>,
    motes: Vec<MoteSlot>,
    pub radio: Radio,
    /// Virtual CPU cost of one granted slice (µs).
    pub cpu_slice_us: u64,
    pub stats: Stats,
    /// Unified world trace (when enabled): events from every mote,
    /// collected as callbacks run and canonically ordered on read.
    trace: Option<Vec<WorldTraceEvent>>,
    /// Per-mote batch buffers reused across parallel windows (the inner
    /// `Vec`s move to the workers; the outer one persists).
    window_batches: Vec<WindowBatch>,
    /// Cross-window send merge buffer, reused across parallel windows.
    merge_sends: Vec<(u64, MoteId, usize, MoteId, Packet)>,
}

impl World {
    pub fn new(radio: Radio) -> Self {
        World {
            now: 0,
            seq: 0,
            queue: EventHeap::new(),
            motes: Vec::new(),
            radio,
            cpu_slice_us: 100,
            stats: Stats::default(),
            trace: None,
            window_batches: Vec::new(),
            merge_sends: Vec::new(),
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    /// Switches on the unified world trace. Backends must also surface
    /// their machine traces through [`MoteCtx::vm_events`] (for Céu motes,
    /// `CeuMote::enable_trace`).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes the merged world trace collected so far, in the canonical
    /// deterministic order `(world_time_us, mote, seq)`. Tracing stays
    /// enabled; subsequent events start a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<WorldTraceEvent> {
        let mut events = match self.trace.take() {
            Some(t) => {
                self.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        };
        events.sort_by_key(|e| (e.world_time_us, e.mote, e.seq));
        events
    }

    pub fn add_mote(&mut self, backend: Box<dyn Backend>) -> MoteId {
        let id = self.motes.len();
        self.motes.push(MoteSlot {
            backend,
            leds: Leds::default(),
            timer_at: None,
            cpu_scheduled: false,
            stats: MoteStats::default(),
            trace_seq: 0,
        });
        id
    }

    pub fn leds(&self, mote: MoteId) -> &Leds {
        &self.motes[mote].leds
    }

    /// Per-mote counters (sends, receives, losses, timers, CPU slices).
    pub fn mote_stats(&self, mote: MoteId) -> &MoteStats {
        &self.motes[mote].stats
    }

    pub fn mote_count(&self) -> usize {
        self.motes.len()
    }

    fn schedule(&mut self, at: u64, fire: Fire) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        self.queue.push(at, self.seq, fire);
    }

    /// Boots every mote (virtual time 0).
    pub fn boot(&mut self) {
        for id in 0..self.motes.len() {
            self.with_ctx(id, |backend, ctx| backend.boot(ctx));
        }
    }

    /// Runs until the given virtual time (µs), or until nothing is left.
    pub fn run_until(&mut self, deadline: u64) {
        while let Some((at, _)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            let (at, _, fire) = self.queue.pop().unwrap();
            self.now = at;
            match fire {
                Fire::Deliver { to, packet } => {
                    self.stats.delivered += 1;
                    self.motes[to].stats.received += 1;
                    self.with_ctx(to, |backend, ctx| backend.deliver(ctx, packet));
                }
                Fire::Timer { mote } => {
                    // stale timer? (the mote re-requested a different time)
                    if self.motes[mote].timer_at == Some(at) {
                        self.motes[mote].timer_at = None;
                        self.motes[mote].stats.timer_firings += 1;
                        self.with_ctx(mote, |backend, ctx| backend.timer(ctx));
                    }
                }
                Fire::Cpu { mote } => {
                    self.stats.cpu_slices += 1;
                    self.motes[mote].stats.cpu_slices += 1;
                    self.motes[mote].cpu_scheduled = false;
                    self.with_ctx(mote, |backend, ctx| backend.cpu(ctx));
                }
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until the given virtual time (µs), stepping disjoint motes on
    /// up to `threads` worker threads.
    ///
    /// Conservative parallel discrete-event simulation: the radio's
    /// minimum per-hop latency is the *lookahead* — a packet emitted at
    /// `t` cannot reach any mote before `t + lookahead` — so simulation
    /// advances in windows of that width. Within a window every mote's
    /// pending events (plus any timers/CPU slices it schedules for itself
    /// inside the window) are run on a worker with no shared state; at
    /// the window boundary the workers' outputs are merged back
    /// **deterministically**, in `(emit time, mote id, emission order)`
    /// order, so the result is identical for any thread count — and, for
    /// a lossless medium, identical to [`run_until`](World::run_until).
    ///
    /// A zero-latency medium has no lookahead; such worlds (and
    /// `threads <= 1`) fall back to the sequential stepper.
    pub fn run_until_parallel(&mut self, deadline: u64, threads: usize) {
        let lookahead = self.radio.min_latency();
        if threads <= 1 || lookahead == 0 || self.motes.len() <= 1 {
            return self.run_until(deadline);
        }
        loop {
            // window = [first pending event, first event + lookahead),
            // clipped to the deadline (run_until's contract: nothing
            // after `deadline` fires).
            let window_start = match self.queue.peek_key() {
                Some((at, _)) if at <= deadline => at,
                _ => break,
            };
            let run_end = (window_start + lookahead).min(deadline.saturating_add(1));

            // Drain this window's events into per-mote batches. The outer
            // buffer persists across windows; the inner `Vec`s are taken
            // below and move to the workers.
            if self.window_batches.len() < self.motes.len() {
                self.window_batches.resize_with(self.motes.len(), Vec::new);
            }
            while let Some((at, _)) = self.queue.peek_key() {
                if at >= run_end {
                    break;
                }
                let (at, seq, fire) = self.queue.pop().unwrap();
                let mote = match &fire {
                    Fire::Deliver { to, .. } => *to,
                    Fire::Timer { mote } | Fire::Cpu { mote } => *mote,
                };
                self.window_batches[mote].push((at, seq, fire));
            }

            // Check the motes out of the world and step them in parallel.
            let seq_base = self.seq;
            let cpu_slice_us = self.cpu_slice_us;
            let mut work: Vec<WindowWork> = Vec::new();
            for id in 0..self.motes.len() {
                let batch = std::mem::take(&mut self.window_batches[id]);
                if batch.is_empty() {
                    continue;
                }
                let slot = std::mem::replace(
                    &mut self.motes[id],
                    MoteSlot {
                        backend: Box::new(Inert),
                        leds: Leds::default(),
                        timer_at: None,
                        cpu_scheduled: false,
                        stats: MoteStats::default(),
                        trace_seq: 0,
                    },
                );
                work.push((id, slot, batch));
            }
            let workers = threads.min(work.len()).max(1);
            let chunk_size = work.len().div_ceil(workers);
            let mut chunks: Vec<Vec<WindowWork>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in work.into_iter().enumerate() {
                chunks[i / chunk_size].push(item);
            }
            // Workers catch per-mote panics so a crash inside a window is
            // attributable: the panic resurfaces on the simulation thread
            // with the mote id and the window bounds, instead of an opaque
            // worker-join failure.
            let results: Vec<Result<WindowOut, (MoteId, String)>> = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        s.spawn(move || {
                            chunk
                                .into_iter()
                                .map(|(id, slot, batch)| {
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        run_mote_window(
                                            id,
                                            slot,
                                            batch,
                                            run_end,
                                            seq_base,
                                            cpu_slice_us,
                                        )
                                    }))
                                    .map_err(|payload| (id, panic_message(payload)))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles.into_iter().flat_map(|h| h.join().expect("mote worker thread")).collect()
            });
            let outs: Vec<WindowOut> = results
                .into_iter()
                .map(|r| {
                    r.unwrap_or_else(|(id, msg)| {
                        panic!(
                            "mote {id} panicked in parallel window \
                             [{window_start}, {run_end}): {msg}"
                        )
                    })
                })
                .collect();

            // Deterministic merge: check motes back in, then apply every
            // cross-window effect in (time, mote, emission) order. The
            // merge buffer is reused window-to-window (drained, not moved).
            self.now = run_end.saturating_sub(1).max(self.now);
            let mut sends = std::mem::take(&mut self.merge_sends);
            for out in outs {
                self.stats.delivered += out.delivered;
                self.stats.cpu_slices += out.cpu_slices;
                if let Some(trace) = self.trace.as_mut() {
                    trace.extend(out.trace);
                }
                for (i, (at, to, packet)) in out.sends.into_iter().enumerate() {
                    sends.push((at, out.id, i, to, packet));
                }
                for at in out.timers_after {
                    self.schedule(at, Fire::Timer { mote: out.id });
                }
                for at in out.cpus_after {
                    self.schedule(at, Fire::Cpu { mote: out.id });
                }
                self.motes[out.id] = out.slot;
            }
            sends.sort_unstable_by_key(|a| (a.0, a.1, a.2));
            for (at, from, _, to, packet) in sends.drain(..) {
                if let Some(arrival) = self.radio.transmit(at, from, to, &packet) {
                    self.schedule(arrival, Fire::Deliver { to, packet });
                } else {
                    self.stats.lost += 1;
                    self.motes[from].stats.lost += 1;
                }
            }
            self.merge_sends = sends;
        }
        self.now = self.now.max(deadline);
    }

    /// Runs one backend callback and applies its effects (sends, timer
    /// requests, CPU requests).
    fn with_ctx(&mut self, id: MoteId, f: impl FnOnce(&mut dyn Backend, &mut MoteCtx)) {
        let slot = &mut self.motes[id];
        let mut backend = std::mem::replace(&mut slot.backend, Box::new(Inert));
        let mut ctx = MoteCtx {
            id,
            now: self.now,
            leds: &mut slot.leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
            vm_events: Vec::new(),
        };
        f(backend.as_mut(), &mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timer_request = ctx.timer_request;
        let wants_cpu = ctx.wants_cpu;
        let vm_events = std::mem::take(&mut ctx.vm_events);
        self.motes[id].backend = backend;
        {
            let now = self.now;
            let trace = self.trace.as_mut();
            let slot = &mut self.motes[id];
            if let Some(trace) = trace {
                for event in vm_events {
                    slot.trace_seq += 1;
                    trace.push(WorldTraceEvent {
                        world_time_us: now,
                        mote: id,
                        seq: slot.trace_seq,
                        event: event.normalized(),
                    });
                }
            } else {
                // keep the per-mote counter in step with the parallel
                // path, which stamps events before the merge decides
                slot.trace_seq += vm_events.len() as u64;
            }
        }
        for (to, packet) in outbox {
            self.motes[id].stats.sent += 1;
            if let Some(arrival) = self.radio.transmit(self.now, id, to, &packet) {
                self.schedule(arrival, Fire::Deliver { to, packet });
            } else {
                self.stats.lost += 1;
                self.motes[id].stats.lost += 1;
            }
        }
        if let Some(at) = timer_request {
            let at = at.max(self.now);
            let better = match self.motes[id].timer_at {
                Some(t) => at < t,
                None => true,
            };
            if better {
                self.motes[id].timer_at = Some(at);
                self.schedule(at, Fire::Timer { mote: id });
            }
        }
        if wants_cpu && !self.motes[id].cpu_scheduled {
            self.motes[id].cpu_scheduled = true;
            let at = self.now + self.cpu_slice_us;
            self.schedule(at, Fire::Cpu { mote: id });
        }
    }
}

/// What one mote produced during a parallel window ([`World::run_until_parallel`]).
struct WindowOut {
    id: MoteId,
    slot: MoteSlot,
    /// `(emit time, destination, packet)` in emission order; routed
    /// through the radio at merge time.
    sends: Vec<(u64, MoteId, Packet)>,
    /// Timer requests that fall on/after the window boundary.
    timers_after: Vec<u64>,
    /// CPU-slice grants that fall on/after the window boundary.
    cpus_after: Vec<u64>,
    delivered: u64,
    cpu_slices: u64,
    /// World-trace events produced inside the window, already stamped
    /// with `(world_time_us, mote, seq)`.
    trace: Vec<WorldTraceEvent>,
}

/// Renders a caught panic payload for re-raising with mote context.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One window's firings for a single mote: `(at, seq, fire)` triples.
type WindowBatch = Vec<(u64, u64, Fire)>;
/// A mote checked out of the world for one window, with its batch.
type WindowWork = (MoteId, MoteSlot, WindowBatch);
/// The backend callback a firing dispatches to inside a window.
type FireFn = fn(&mut dyn Backend, &mut MoteCtx, Option<Packet>);

/// Steps one mote through its window batch, running any timers/CPU slices
/// it schedules for itself *inside* the window in a local mini event
/// loop. Mirrors the effect application of [`World::with_ctx`] exactly,
/// except that packet transmission (which needs the shared radio) is
/// deferred to the merge.
fn run_mote_window(
    id: MoteId,
    mut slot: MoteSlot,
    batch: WindowBatch,
    run_end: u64,
    seq_base: u64,
    cpu_slice_us: u64,
) -> WindowOut {
    let mut queue: EventHeap<Fire> = EventHeap::with_capacity(batch.len());
    for (at, seq, fire) in batch {
        queue.push(at, seq, fire);
    }
    // local events order after the already-queued globals at equal times,
    // exactly as World::schedule's monotone `seq` would have placed them
    let mut seq = seq_base;
    let mut out = WindowOut {
        id,
        slot: MoteSlot {
            backend: Box::new(Inert),
            leds: Leds::default(),
            timer_at: None,
            cpu_scheduled: false,
            stats: MoteStats::default(),
            trace_seq: 0,
        },
        sends: Vec::new(),
        timers_after: Vec::new(),
        cpus_after: Vec::new(),
        delivered: 0,
        cpu_slices: 0,
        trace: Vec::new(),
    };
    while let Some((at, _, fire)) = queue.pop() {
        debug_assert!(at < run_end);
        let now = at;
        let (run, packet): (Option<FireFn>, Option<Packet>) = match fire {
            Fire::Deliver { packet, .. } => {
                out.delivered += 1;
                slot.stats.received += 1;
                (
                    Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, p: Option<Packet>| {
                        b.deliver(ctx, p.unwrap())
                    }),
                    Some(packet),
                )
            }
            Fire::Timer { .. } => {
                if slot.timer_at == Some(at) {
                    slot.timer_at = None;
                    slot.stats.timer_firings += 1;
                    (
                        Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, _: Option<Packet>| {
                            b.timer(ctx)
                        }),
                        None,
                    )
                } else {
                    (None, None) // stale
                }
            }
            Fire::Cpu { .. } => {
                out.cpu_slices += 1;
                slot.stats.cpu_slices += 1;
                slot.cpu_scheduled = false;
                (Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, _: Option<Packet>| b.cpu(ctx)), None)
            }
        };
        let Some(run) = run else { continue };
        let mut ctx = MoteCtx {
            id,
            now,
            leds: &mut slot.leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
            vm_events: Vec::new(),
        };
        run(slot.backend.as_mut(), &mut ctx, packet);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timer_request = ctx.timer_request;
        let wants_cpu = ctx.wants_cpu;
        let vm_events = std::mem::take(&mut ctx.vm_events);
        for event in vm_events {
            slot.trace_seq += 1;
            out.trace.push(WorldTraceEvent {
                world_time_us: now,
                mote: id,
                seq: slot.trace_seq,
                event: event.normalized(),
            });
        }
        for (to, packet) in outbox {
            slot.stats.sent += 1;
            out.sends.push((now, to, packet));
        }
        if let Some(req) = timer_request {
            let req = req.max(now);
            let better = match slot.timer_at {
                Some(t) => req < t,
                None => true,
            };
            if better {
                slot.timer_at = Some(req);
                if req < run_end {
                    seq += 1;
                    queue.push(req, seq, Fire::Timer { mote: id });
                } else {
                    out.timers_after.push(req);
                }
            }
        }
        if wants_cpu && !slot.cpu_scheduled {
            slot.cpu_scheduled = true;
            let cat = now + cpu_slice_us;
            if cat < run_end {
                seq += 1;
                queue.push(cat, seq, Fire::Cpu { mote: id });
            } else {
                out.cpus_after.push(cat);
            }
        }
    }
    out.slot = slot;
    out
}

/// Shared-handle backends: a harness can keep an `Arc<Mutex<B>>` to a
/// mote it adds to the world and read its state (metrics, clock drift)
/// after the run. `Mutex` rather than `RefCell` so the handle stays
/// `Send` and the mote can be stepped on a worker thread.
impl<B: Backend> Backend for std::sync::Arc<std::sync::Mutex<B>> {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().boot(ctx)
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        self.lock().unwrap().deliver(ctx, packet)
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().timer(ctx)
    }
    fn cpu(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().cpu(ctx)
    }
}

/// Placeholder while a backend is checked out during a callback.
struct Inert;

impl Backend for Inert {
    fn boot(&mut self, _: &mut MoteCtx) {}
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, _: &mut MoteCtx) {}
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;

    /// Backend that pings a peer every millisecond.
    struct Pinger {
        peer: MoteId,
        received: u32,
    }

    impl Backend for Pinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            self.received += 1;
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn timers_and_delivery_flow() {
        let mut w = World::new(Radio::ideal(1_000));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert_eq!((a, b), (0, 1));
        w.boot();
        w.run_until(10_500);
        // pings at 1..=10ms, 1ms latency: arrivals at 2..=10ms by 10.5ms
        assert_eq!(w.stats.delivered, 18);
        assert_eq!(w.leds(0).history.len(), 9);
        assert_eq!(w.leds(1).history.len(), 9);
        // per-mote view agrees with the aggregate
        for m in [a, b] {
            assert_eq!(w.mote_stats(m).sent, 10);
            assert_eq!(w.mote_stats(m).received, 9);
            assert_eq!(w.mote_stats(m).lost, 0);
            assert_eq!(w.mote_stats(m).timer_firings, 10);
        }
        assert_eq!(w.radio.stats.attempts, 20);
        assert_eq!(w.radio.stats.delivered, 20, "two arrivals are past the deadline, not lost");
    }

    #[test]
    fn per_mote_losses_attribute_to_the_sender() {
        // mote 0 can reach mote 1 but not vice versa
        let mut w = World::new(Radio::new(crate::radio::Topology::Links(vec![(0, 1)]), 10, 0.0, 1));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(5_000);
        assert_eq!(w.mote_stats(a).lost, 0);
        assert_eq!(w.mote_stats(b).lost, w.mote_stats(b).sent);
        assert_eq!(w.stats.lost, w.mote_stats(b).lost);
        assert_eq!(w.radio.stats.dropped_link, w.stats.lost);
        assert_eq!(w.mote_count(), 2);
    }

    fn pinger_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 2, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 3, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w
    }

    type LedHistory = Vec<(u64, u8, bool)>;

    fn observe(w: &World) -> (Stats, Vec<MoteStats>, Vec<LedHistory>) {
        (
            w.stats,
            (0..w.mote_count()).map(|m| *w.mote_stats(m)).collect(),
            (0..w.mote_count()).map(|m| w.leds(m).history.clone()).collect(),
        )
    }

    #[test]
    fn parallel_stepping_matches_sequential() {
        let mut seq = pinger_world(Radio::ideal(1_000));
        let mut par = pinger_world(Radio::ideal(1_000));
        seq.run_until(50_500);
        par.run_until_parallel(50_500, 4);
        assert_eq!(seq.now(), par.now());
        let (s_stats, s_motes, s_leds) = observe(&seq);
        let (p_stats, p_motes, p_leds) = observe(&par);
        assert_eq!(s_stats.delivered, p_stats.delivered);
        assert_eq!(s_stats.lost, p_stats.lost);
        assert_eq!(s_stats.cpu_slices, p_stats.cpu_slices);
        assert_eq!(s_motes, p_motes);
        assert_eq!(s_leds, p_leds);
    }

    #[test]
    fn parallel_stepping_is_thread_count_invariant() {
        // a lossy medium exercises the deterministic merge order: any
        // thread count must produce the identical run
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = pinger_world(radio());
        base.run_until_parallel(40_000, 2);
        for threads in [3, 4, 8] {
            let mut w = pinger_world(radio());
            w.run_until_parallel(40_000, threads);
            assert_eq!(observe(&base), observe(&w), "threads={threads}");
        }
    }

    /// A pinger that also records a synthetic VM event per callback, so
    /// the unified world trace can be checked without a full Céu machine.
    struct TracingPinger {
        peer: MoteId,
    }

    impl Backend for TracingPinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(-1) });
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(p.value()) });
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(ctx.now as i64) });
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, ctx.now as i64));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    fn tracing_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.enable_trace();
        for peer in [1, 2, 3, 0] {
            w.add_mote(Box::new(TracingPinger { peer }));
        }
        w.boot();
        w
    }

    #[test]
    fn world_trace_is_identical_across_thread_counts() {
        // a lossy medium exercises the window merge; the merged stream
        // must be byte-identical for 1 (sequential fallback), 2 and 4
        // worker threads
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = tracing_world(radio());
        base.run_until_parallel(40_000, 1);
        let reference = base.take_trace();
        assert!(!reference.is_empty(), "the pingers must actually trace");
        let jsonl_ref: Vec<String> = reference.iter().map(|e| e.to_json()).collect();
        for threads in [2, 4] {
            let mut w = tracing_world(radio());
            w.run_until_parallel(40_000, threads);
            let trace = w.take_trace();
            assert_eq!(reference, trace, "threads={threads}");
            let jsonl: Vec<String> = trace.iter().map(|e| e.to_json()).collect();
            assert_eq!(jsonl_ref, jsonl, "wire format, threads={threads}");
        }
    }

    #[test]
    fn world_trace_orders_by_time_mote_seq() {
        let mut w = tracing_world(Radio::ideal(1_000));
        w.run_until(5_500);
        let trace = w.take_trace();
        let keys: Vec<_> = trace.iter().map(|e| (e.world_time_us, e.mote, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // per-mote seq is monotone from 1 with no gaps
        for mote in 0..w.mote_count() {
            let seqs: Vec<u64> = trace.iter().filter(|e| e.mote == mote).map(|e| e.seq).collect();
            assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>(), "mote {mote}");
        }
        // taking the trace re-arms collection
        assert!(w.trace_enabled());
        w.run_until(6_500);
        assert!(!w.take_trace().is_empty());
    }

    #[test]
    fn parallel_mote_panics_carry_mote_and_window() {
        struct Bomb;
        impl Backend for Bomb {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(1_000);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, _: &mut MoteCtx) {
                panic!("the backend blew up");
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let mut w = World::new(Radio::ideal(500));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Bomb));
        w.boot();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log quiet
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_until_parallel(5_000, 2);
        }))
        .expect_err("the mote panic must resurface");
        std::panic::set_hook(prev);
        let msg = err.downcast_ref::<String>().cloned().expect("panic message is a string");
        assert!(msg.contains("mote 1 panicked in parallel window ["), "{msg}");
        assert!(msg.contains("the backend blew up"), "{msg}");
    }

    #[test]
    fn zero_latency_media_fall_back_to_sequential() {
        let mut seq = pinger_world(Radio::ideal(0));
        let mut par = pinger_world(Radio::ideal(0));
        seq.run_until(10_000);
        par.run_until_parallel(10_000, 4);
        assert_eq!(observe(&seq), observe(&par));
    }

    #[test]
    fn led_history_records_on_times() {
        let mut leds = Leds::default();
        leds.toggle(5, 1);
        leds.toggle(10, 1);
        leds.toggle(15, 1);
        assert_eq!(leds.on_times(1), vec![5, 15]);
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = World::new(Radio::ideal(0));
        struct Recorder {
            seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
        }
        impl Backend for Recorder {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(500);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, ctx: &mut MoteCtx) {
                self.seen.lock().unwrap().push(ctx.now);
                if ctx.now < 2_000 {
                    ctx.set_timer_at(ctx.now + 500);
                }
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let seen = std::sync::Arc::new(std::sync::Mutex::new(vec![]));
        w.add_mote(Box::new(Recorder { seen: seen.clone() }));
        w.boot();
        w.run_until(3_000);
        assert_eq!(*seen.lock().unwrap(), vec![500, 1000, 1500, 2000]);
    }
}

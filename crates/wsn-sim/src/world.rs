//! The discrete-event wireless-sensor-network simulator.
//!
//! Substitutes for the paper's micaz testbed (see DESIGN.md): a virtual
//! clock in microseconds, motes with pluggable application backends, and a
//! radio medium with per-link latency and loss. The paper's own argument
//! (§2.8) justifies the substitution — a reactive program's behaviour
//! depends only on the order of its input events.

use crate::radio::{Packet, Radio};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Node id within a network.
pub type MoteId = usize;

/// What a scheduled simulation event does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fire {
    /// Deliver a packet to a mote's radio.
    Deliver { to: MoteId, packet: Packet },
    /// A mote's requested timer expires.
    Timer { mote: MoteId },
    /// Grant a CPU slice to a mote (long computations / threads).
    Cpu { mote: MoteId },
}

/// The environment handle passed to application backends.
pub struct MoteCtx<'w> {
    pub id: MoteId,
    pub now: u64,
    /// LED state (bitmask) plus toggle history, recorded by the harnesses.
    pub leds: &'w mut Leds,
    /// Packets to transmit, collected after the callback returns.
    pub outbox: Vec<(MoteId, Packet)>,
    /// Absolute time of the next timer callback this mote wants (if any).
    pub timer_request: Option<u64>,
    /// Whether this mote wants CPU slices (long computations pending).
    pub wants_cpu: bool,
}

impl MoteCtx<'_> {
    pub fn send(&mut self, to: MoteId, packet: Packet) {
        self.outbox.push((to, packet));
    }

    pub fn set_timer_at(&mut self, at: u64) {
        self.timer_request = Some(match self.timer_request {
            Some(t) => t.min(at),
            None => at,
        });
    }
}

/// LED state with a full toggle history (timestamps in µs) — the
/// measurement surface of the blink-synchronization experiment.
#[derive(Clone, Debug, Default)]
pub struct Leds {
    pub state: u8,
    /// `(time, led, new_state)` for every change.
    pub history: Vec<(u64, u8, bool)>,
}

impl Leds {
    pub fn set_mask(&mut self, now: u64, mask: u8) {
        for led in 0..3 {
            let new = mask & (1 << led) != 0;
            let old = self.state & (1 << led) != 0;
            if new != old {
                self.history.push((now, led, new));
            }
        }
        self.state = mask;
    }

    pub fn toggle(&mut self, now: u64, led: u8) {
        let new = self.state & (1 << led) == 0;
        self.state ^= 1 << led;
        self.history.push((now, led, new));
    }

    /// Times at which the given led switched on.
    pub fn on_times(&self, led: u8) -> Vec<u64> {
        self.history.iter().filter(|(_, l, on)| *l == led && *on).map(|(t, _, _)| *t).collect()
    }
}

/// An application running on a mote. Backends: Céu machines, event-driven
/// (nesC-analog) handlers, preemptive-thread (MantisOS-analog) schedulers.
pub trait Backend {
    /// Called once at virtual time zero.
    fn boot(&mut self, ctx: &mut MoteCtx);
    /// A packet arrived (already past the radio medium).
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet);
    /// The previously requested timer fired.
    fn timer(&mut self, ctx: &mut MoteCtx);
    /// One CPU slice was granted; runs a bounded amount of computation.
    fn cpu(&mut self, ctx: &mut MoteCtx);
}

struct MoteSlot {
    backend: Box<dyn Backend>,
    leds: Leds,
    /// Absolute time of the pending Timer event (dedup guard).
    timer_at: Option<u64>,
    cpu_scheduled: bool,
    stats: MoteStats,
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    pub delivered: u64,
    pub lost: u64,
    pub cpu_slices: u64,
}

/// Per-mote statistics (the network-wide aggregates live in [`Stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoteStats {
    /// Packets handed to the radio medium.
    pub sent: u64,
    /// Packets delivered to this mote.
    pub received: u64,
    /// Packets this mote sent that the medium dropped (loss, partition,
    /// or a downed endpoint).
    pub lost: u64,
    /// Timer callbacks delivered.
    pub timer_firings: u64,
    /// CPU slices granted.
    pub cpu_slices: u64,
}

/// The network simulator.
pub struct World {
    now: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    fires: Vec<Fire>,
    motes: Vec<MoteSlot>,
    pub radio: Radio,
    /// Virtual CPU cost of one granted slice (µs).
    pub cpu_slice_us: u64,
    pub stats: Stats,
}

impl World {
    pub fn new(radio: Radio) -> Self {
        World {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            fires: Vec::new(),
            motes: Vec::new(),
            radio,
            cpu_slice_us: 100,
            stats: Stats::default(),
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    pub fn add_mote(&mut self, backend: Box<dyn Backend>) -> MoteId {
        let id = self.motes.len();
        self.motes.push(MoteSlot {
            backend,
            leds: Leds::default(),
            timer_at: None,
            cpu_scheduled: false,
            stats: MoteStats::default(),
        });
        id
    }

    pub fn leds(&self, mote: MoteId) -> &Leds {
        &self.motes[mote].leds
    }

    /// Per-mote counters (sends, receives, losses, timers, CPU slices).
    pub fn mote_stats(&self, mote: MoteId) -> &MoteStats {
        &self.motes[mote].stats
    }

    pub fn mote_count(&self) -> usize {
        self.motes.len()
    }

    fn schedule(&mut self, at: u64, fire: Fire) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        let idx = self.fires.len();
        self.fires.push(fire);
        self.queue.push(Reverse((at, self.seq, idx)));
    }

    /// Boots every mote (virtual time 0).
    pub fn boot(&mut self) {
        for id in 0..self.motes.len() {
            self.with_ctx(id, |backend, ctx| backend.boot(ctx));
        }
    }

    /// Runs until the given virtual time (µs), or until nothing is left.
    pub fn run_until(&mut self, deadline: u64) {
        while let Some(&Reverse((at, _, _))) = self.queue.peek() {
            if at > deadline {
                break;
            }
            let Reverse((at, _, idx)) = self.queue.pop().unwrap();
            self.now = at;
            let fire = self.fires[idx].clone();
            match fire {
                Fire::Deliver { to, packet } => {
                    self.stats.delivered += 1;
                    self.motes[to].stats.received += 1;
                    self.with_ctx(to, |backend, ctx| backend.deliver(ctx, packet));
                }
                Fire::Timer { mote } => {
                    // stale timer? (the mote re-requested a different time)
                    if self.motes[mote].timer_at == Some(at) {
                        self.motes[mote].timer_at = None;
                        self.motes[mote].stats.timer_firings += 1;
                        self.with_ctx(mote, |backend, ctx| backend.timer(ctx));
                    }
                }
                Fire::Cpu { mote } => {
                    self.stats.cpu_slices += 1;
                    self.motes[mote].stats.cpu_slices += 1;
                    self.motes[mote].cpu_scheduled = false;
                    self.with_ctx(mote, |backend, ctx| backend.cpu(ctx));
                }
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs one backend callback and applies its effects (sends, timer
    /// requests, CPU requests).
    fn with_ctx(&mut self, id: MoteId, f: impl FnOnce(&mut dyn Backend, &mut MoteCtx)) {
        let slot = &mut self.motes[id];
        let mut backend = std::mem::replace(&mut slot.backend, Box::new(Inert));
        let mut ctx = MoteCtx {
            id,
            now: self.now,
            leds: &mut slot.leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
        };
        f(backend.as_mut(), &mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timer_request = ctx.timer_request;
        let wants_cpu = ctx.wants_cpu;
        self.motes[id].backend = backend;
        for (to, packet) in outbox {
            self.motes[id].stats.sent += 1;
            if let Some(arrival) = self.radio.transmit(self.now, id, to, &packet) {
                self.schedule(arrival, Fire::Deliver { to, packet });
            } else {
                self.stats.lost += 1;
                self.motes[id].stats.lost += 1;
            }
        }
        if let Some(at) = timer_request {
            let at = at.max(self.now);
            let better = match self.motes[id].timer_at {
                Some(t) => at < t,
                None => true,
            };
            if better {
                self.motes[id].timer_at = Some(at);
                self.schedule(at, Fire::Timer { mote: id });
            }
        }
        if wants_cpu && !self.motes[id].cpu_scheduled {
            self.motes[id].cpu_scheduled = true;
            let at = self.now + self.cpu_slice_us;
            self.schedule(at, Fire::Cpu { mote: id });
        }
    }
}

/// Shared-handle backends: a harness can keep an `Rc<RefCell<B>>` to a
/// mote it adds to the world and read its state (metrics, clock drift)
/// after the run.
impl<B: Backend> Backend for std::rc::Rc<std::cell::RefCell<B>> {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.borrow_mut().boot(ctx)
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        self.borrow_mut().deliver(ctx, packet)
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.borrow_mut().timer(ctx)
    }
    fn cpu(&mut self, ctx: &mut MoteCtx) {
        self.borrow_mut().cpu(ctx)
    }
}

/// Placeholder while a backend is checked out during a callback.
struct Inert;

impl Backend for Inert {
    fn boot(&mut self, _: &mut MoteCtx) {}
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, _: &mut MoteCtx) {}
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;

    /// Backend that pings a peer every millisecond.
    struct Pinger {
        peer: MoteId,
        received: u32,
    }

    impl Backend for Pinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            self.received += 1;
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn timers_and_delivery_flow() {
        let mut w = World::new(Radio::ideal(1_000));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert_eq!((a, b), (0, 1));
        w.boot();
        w.run_until(10_500);
        // pings at 1..=10ms, 1ms latency: arrivals at 2..=10ms by 10.5ms
        assert_eq!(w.stats.delivered, 18);
        assert_eq!(w.leds(0).history.len(), 9);
        assert_eq!(w.leds(1).history.len(), 9);
        // per-mote view agrees with the aggregate
        for m in [a, b] {
            assert_eq!(w.mote_stats(m).sent, 10);
            assert_eq!(w.mote_stats(m).received, 9);
            assert_eq!(w.mote_stats(m).lost, 0);
            assert_eq!(w.mote_stats(m).timer_firings, 10);
        }
        assert_eq!(w.radio.stats.attempts, 20);
        assert_eq!(w.radio.stats.delivered, 20, "two arrivals are past the deadline, not lost");
    }

    #[test]
    fn per_mote_losses_attribute_to_the_sender() {
        // mote 0 can reach mote 1 but not vice versa
        let mut w = World::new(Radio::new(crate::radio::Topology::Links(vec![(0, 1)]), 10, 0.0, 1));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(5_000);
        assert_eq!(w.mote_stats(a).lost, 0);
        assert_eq!(w.mote_stats(b).lost, w.mote_stats(b).sent);
        assert_eq!(w.stats.lost, w.mote_stats(b).lost);
        assert_eq!(w.radio.stats.dropped_link, w.stats.lost);
        assert_eq!(w.mote_count(), 2);
    }

    #[test]
    fn led_history_records_on_times() {
        let mut leds = Leds::default();
        leds.toggle(5, 1);
        leds.toggle(10, 1);
        leds.toggle(15, 1);
        assert_eq!(leds.on_times(1), vec![5, 15]);
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = World::new(Radio::ideal(0));
        struct Recorder {
            seen: std::rc::Rc<std::cell::RefCell<Vec<u64>>>,
        }
        impl Backend for Recorder {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(500);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, ctx: &mut MoteCtx) {
                self.seen.borrow_mut().push(ctx.now);
                if ctx.now < 2_000 {
                    ctx.set_timer_at(ctx.now + 500);
                }
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let seen = std::rc::Rc::new(std::cell::RefCell::new(vec![]));
        w.add_mote(Box::new(Recorder { seen: seen.clone() }));
        w.boot();
        w.run_until(3_000);
        assert_eq!(*seen.borrow(), vec![500, 1000, 1500, 2000]);
    }
}

//! The discrete-event wireless-sensor-network simulator.
//!
//! Substitutes for the paper's micaz testbed (see DESIGN.md): a virtual
//! clock in microseconds, motes with pluggable application backends, and a
//! radio medium with per-link latency and loss. The paper's own argument
//! (§2.8) justifies the substitution — a reactive program's behaviour
//! depends only on the order of its input events.

use crate::faults::{FaultAction, FaultEntry, FaultPlan, RebootPolicy};
use crate::parstats::{ParStats, ParWindowStats, DEFAULT_WINDOW_CAP, SEND_SAMPLE_CAP};
use crate::radio::{Packet, Radio};
use crate::sched::EventHeap;
use ceu::ast::Span;
use ceu::runtime::{CrashKind, RuntimeError, TraceEvent};

/// Node id within a network.
pub type MoteId = usize;

/// Why a mote crashed: classification, human-readable message, and the
/// source position of the failing statement (when the machine knows it).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrashCause {
    pub kind: CrashKind,
    pub message: String,
    pub span: Span,
}

impl CrashCause {
    /// Classifies a machine error (watchdog trips vs program errors).
    pub fn from_error(e: &RuntimeError) -> Self {
        CrashCause {
            kind: if e.watchdog { CrashKind::Watchdog } else { CrashKind::RuntimeError },
            message: e.message.clone(),
            span: e.span,
        }
    }

    /// A deliberate fault-plan crash.
    pub fn injected() -> Self {
        CrashCause {
            kind: CrashKind::FaultInjected,
            message: "fault plan took the mote down".into(),
            span: Span::default(),
        }
    }
}

impl std::fmt::Display for CrashCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}: {}", self.kind, self.span, self.message)
    }
}

/// Whether a mote is running or crashed (graceful degradation: a failing
/// machine takes its mote down, never the process).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum MoteStatus {
    #[default]
    Up,
    /// The mote went down at virtual time `at` for `cause`. It drops all
    /// traffic, timers and CPU slices until a reboot (if any) revives it.
    Crashed { at: u64, cause: CrashCause },
}

impl MoteStatus {
    pub fn is_up(&self) -> bool {
        matches!(self, MoteStatus::Up)
    }
}

/// One VM trace event situated in the world: which mote emitted it, at
/// what virtual time, and where it falls in that mote's own event order.
///
/// The unified world trace is the observability spine of the simulator:
/// every mote's machine-level trace (reactions, tracks, gates, emits) is
/// merged into a single stream whose order is **deterministic** — sorted
/// by `(world_time_us, mote, seq)`, where `seq` is the per-mote emission
/// index. Because each mote sees the identical callback sequence under
/// [`World::run_until`] and [`World::run_until_parallel`] (any thread
/// count), the merged stream is bit-identical across all of them.
#[derive(Clone, Debug, PartialEq)]
pub struct WorldTraceEvent {
    /// Virtual time (µs) of the callback that produced the event.
    pub world_time_us: u64,
    pub mote: MoteId,
    /// Per-mote emission index (1-based, monotone for each mote).
    pub seq: u64,
    /// The machine-level event, wall-clock fields normalised to zero so
    /// the stream is reproducible run-to-run.
    pub event: TraceEvent,
}

impl WorldTraceEvent {
    /// One JSONL line of the stable wire format read by `ceu-trace`:
    /// `{"t_us":N,"mote":M,"seq":S,"ev":{…event_to_json…}}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_us\":{},\"mote\":{},\"seq\":{},\"ev\":{}}}",
            self.world_time_us,
            self.mote,
            self.seq,
            ceu::runtime::telemetry::event_to_json(&self.event)
        )
    }
}

/// Writes a merged world trace as JSONL (one event per line).
pub fn write_trace_jsonl<W: std::io::Write>(
    events: &[WorldTraceEvent],
    mut w: W,
) -> std::io::Result<()> {
    for e in events {
        writeln!(w, "{}", e.to_json())?;
    }
    Ok(())
}

/// What a scheduled simulation event does when it fires.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fire {
    /// Deliver a packet to a mote's radio.
    Deliver { to: MoteId, packet: Packet },
    /// A mote's requested timer expires.
    Timer { mote: MoteId },
    /// Grant a CPU slice to a mote (long computations / threads).
    Cpu { mote: MoteId },
    /// Apply the fault-plan entry at this index. A *world event*: it
    /// mutates shared state (radio, mote status), so the parallel stepper
    /// treats it as a barrier between windows — which is exactly what
    /// makes fault timing identical at any thread count.
    Fault { index: usize },
    /// Restart a crashed mote (world event / barrier, like `Fault`).
    Reboot { mote: MoteId },
}

/// World events mutate shared state and therefore never run inside a
/// parallel worker window.
fn is_world_fire(f: &Fire) -> bool {
    matches!(f, Fire::Fault { .. } | Fire::Reboot { .. })
}

/// Events at equal virtual times fire in *lane* order: world events
/// (faults, reboots) first, then motes by id. This is the same canonical
/// `(time, mote, emission)` order the parallel merge applies, which is
/// what makes [`World::run_until`] and [`World::run_until_parallel`]
/// bit-identical even when same-instant events land on different motes
/// (equal-time, same-lane events keep their scheduling order).
fn lane_of(f: &Fire) -> u64 {
    match f {
        Fire::Fault { .. } | Fire::Reboot { .. } => 0,
        Fire::Deliver { to, .. } => *to as u64 + 1,
        Fire::Timer { mote } | Fire::Cpu { mote } => *mote as u64 + 1,
    }
}

/// Packs `(lane, seq)` into the event heap's one-word tie-breaker: lane
/// in the high bits, the monotone scheduling counter in the low 40 (room
/// for ~10¹² events and ~10⁷ motes — far beyond any simulated world).
fn order_key(lane: u64, seq: u64) -> u64 {
    debug_assert!(lane < 1 << 24 && seq < 1 << 40);
    (lane << 40) | seq
}

/// The mote-local (drifted) view of world time `t` under `ppm` skew.
fn skewed(t: u64, ppm: i64) -> u64 {
    if ppm == 0 {
        return t;
    }
    let adj = (t as i128 * ppm as i128) / 1_000_000;
    (t as i128 + adj).max(0) as u64
}

/// Inverse of [`skewed`]: the earliest world time at which the mote's
/// local clock has reached `local`. The floor estimate is corrected
/// upward until `skewed(w) >= local` — if the returned time fell short
/// (integer rounding), the timer gate would not fire and the mote would
/// re-arm the identical request at the same instant forever.
fn unskew(local: u64, ppm: i64) -> u64 {
    if ppm == 0 {
        return local;
    }
    let denom = 1_000_000i128 + ppm as i128;
    if denom <= 0 {
        return local; // a -1e6 ppm clock never advances; don't divide by ≤0
    }
    let mut w = ((local as i128 * 1_000_000) / denom).max(0) as u64;
    while skewed(w, ppm) < local {
        let deficit = (local - skewed(w, ppm)) as i128;
        w += ((deficit * 1_000_000) / denom).max(1) as u64;
    }
    w
}

/// The environment handle passed to application backends.
pub struct MoteCtx<'w> {
    pub id: MoteId,
    pub now: u64,
    /// LED state (bitmask) plus toggle history, recorded by the harnesses.
    pub leds: &'w mut Leds,
    /// Packets to transmit, collected after the callback returns.
    pub outbox: Vec<(MoteId, Packet)>,
    /// Absolute time of the next timer callback this mote wants (if any).
    pub timer_request: Option<u64>,
    /// Whether this mote wants CPU slices (long computations pending).
    pub wants_cpu: bool,
    /// Machine-level trace events produced during this callback; drained
    /// into the unified world trace (see [`WorldTraceEvent`]) after the
    /// callback returns. Backends that don't trace leave it empty.
    pub vm_events: Vec<TraceEvent>,
    /// Set via [`MoteCtx::fail`]: the backend's machine failed and the
    /// mote should crash instead of aborting the process.
    failure: Option<CrashCause>,
}

impl MoteCtx<'_> {
    pub fn send(&mut self, to: MoteId, packet: Packet) {
        self.outbox.push((to, packet));
    }

    pub fn set_timer_at(&mut self, at: u64) {
        self.timer_request = Some(match self.timer_request {
            Some(t) => t.min(at),
            None => at,
        });
    }

    /// Reports that the backend failed mid-callback (a machine
    /// `RuntimeError`, a watchdog trip). The world transitions the mote
    /// to [`MoteStatus::Crashed`] after the callback returns — graceful
    /// degradation instead of a panic. The failing callback's pending
    /// effects (sends, timer/CPU requests) are discarded; trace events
    /// produced before the failure are kept. The first failure wins.
    pub fn fail(&mut self, cause: CrashCause) {
        if self.failure.is_none() {
            self.failure = Some(cause);
        }
    }

    /// Whether [`fail`](Self::fail) was called during this callback.
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }
}

/// LED state with a full toggle history (timestamps in µs) — the
/// measurement surface of the blink-synchronization experiment.
#[derive(Clone, Debug, Default)]
pub struct Leds {
    pub state: u8,
    /// `(time, led, new_state)` for every change.
    pub history: Vec<(u64, u8, bool)>,
}

impl Leds {
    pub fn set_mask(&mut self, now: u64, mask: u8) {
        for led in 0..3 {
            let new = mask & (1 << led) != 0;
            let old = self.state & (1 << led) != 0;
            if new != old {
                self.history.push((now, led, new));
            }
        }
        self.state = mask;
    }

    pub fn toggle(&mut self, now: u64, led: u8) {
        let new = self.state & (1 << led) == 0;
        self.state ^= 1 << led;
        self.history.push((now, led, new));
    }

    /// Times at which the given led switched on.
    pub fn on_times(&self, led: u8) -> Vec<u64> {
        self.history.iter().filter(|(_, l, on)| *l == led && *on).map(|(t, _, _)| *t).collect()
    }
}

/// An application running on a mote. Backends: Céu machines, event-driven
/// (nesC-analog) handlers, preemptive-thread (MantisOS-analog) schedulers.
///
/// `Send` so the world can step disjoint motes on worker threads
/// ([`World::run_until_parallel`]); every backend is still only ever
/// called from one thread at a time.
pub trait Backend: Send {
    /// Called once at virtual time zero.
    fn boot(&mut self, ctx: &mut MoteCtx);
    /// A packet arrived (already past the radio medium).
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet);
    /// The previously requested timer fired.
    fn timer(&mut self, ctx: &mut MoteCtx);
    /// One CPU slice was granted; runs a bounded amount of computation.
    fn cpu(&mut self, ctx: &mut MoteCtx);
    /// Restart after a crash: come back as a freshly-booted instance with
    /// full state loss. The default boots again without resetting state;
    /// stateful backends override it (see `CeuMote`, which rebuilds its
    /// machine from the shared program artifact).
    fn reboot(&mut self, ctx: &mut MoteCtx) {
        self.boot(ctx)
    }
}

struct MoteSlot {
    backend: Box<dyn Backend>,
    leds: Leds,
    /// Absolute time of the pending Timer event (dedup guard).
    timer_at: Option<u64>,
    cpu_scheduled: bool,
    stats: MoteStats,
    /// Per-mote world-trace emission counter (see [`WorldTraceEvent::seq`]).
    trace_seq: u64,
    status: MoteStatus,
    /// Clock skew (ppm) applied to this mote's view of time.
    skew_ppm: i64,
    /// Lifetime crash count (drives the reboot policy's backoff).
    crashes: u32,
}

impl MoteSlot {
    fn empty() -> Self {
        MoteSlot {
            backend: Box::new(Inert),
            leds: Leds::default(),
            timer_at: None,
            cpu_scheduled: false,
            stats: MoteStats::default(),
            trace_seq: 0,
            status: MoteStatus::Up,
            skew_ppm: 0,
            crashes: 0,
        }
    }
}

/// Simulation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    pub delivered: u64,
    pub lost: u64,
    pub cpu_slices: u64,
    /// Packets the medium had accepted that were discarded at arrival
    /// time because the destination had crashed or powered off while the
    /// packet was in flight.
    pub dropped_in_flight: u64,
}

/// Per-mote statistics (the network-wide aggregates live in [`Stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MoteStats {
    /// Packets handed to the radio medium.
    pub sent: u64,
    /// Packets delivered to this mote.
    pub received: u64,
    /// Packets this mote sent that the medium dropped (loss, partition,
    /// or a downed endpoint).
    pub lost: u64,
    /// Packets addressed to this mote that were discarded at arrival
    /// because it was down when they landed (in-flight drops).
    pub dropped_in_flight: u64,
    /// Timer callbacks delivered.
    pub timer_firings: u64,
    /// CPU slices granted.
    pub cpu_slices: u64,
    /// Times this mote crashed (runtime error, watchdog, or fault plan).
    pub crashes: u64,
    /// Times this mote rebooted after a crash.
    pub reboots: u64,
}

/// The network simulator.
pub struct World {
    now: u64,
    seq: u64,
    /// Pending firings keyed by `(at, seq)`; payloads live inline in the
    /// heap nodes (see [`EventHeap`]), so popping moves them out instead
    /// of cloning from a side table.
    queue: EventHeap<Fire>,
    motes: Vec<MoteSlot>,
    pub radio: Radio,
    /// Virtual CPU cost of one granted slice (µs).
    pub cpu_slice_us: u64,
    pub stats: Stats,
    /// Unified world trace (when enabled): events from every mote,
    /// collected as callbacks run and canonically ordered on read.
    trace: Option<Vec<WorldTraceEvent>>,
    /// Per-mote batch buffers reused across parallel windows (the inner
    /// `Vec`s move to the workers; the outer one persists).
    window_batches: Vec<WindowBatch>,
    /// Cross-window send merge buffer, reused across parallel windows.
    merge_sends: Vec<(u64, MoteId, usize, MoteId, Packet)>,
    /// Fault-plan entries, indexed by [`Fire::Fault`]. Append-only so the
    /// indices stay stable across multiple [`World::set_fault_plan`] calls.
    fault_entries: Vec<FaultEntry>,
    /// What happens after a crash (applies to machine crashes; plan-driven
    /// `Reboot` actions carry their own delay).
    reboot_policy: RebootPolicy,
    /// Sorted multiset of pending *world event* times (faults, reboots).
    /// The parallel stepper clips every window at the earliest of these so
    /// shared-state mutations happen between windows, at exact times.
    world_times: Vec<u64>,
    /// Parallel-scheduler introspection (`ceu-par-stats/v1`): per-window
    /// stall attribution collected by [`World::run_until_parallel`] when
    /// enabled via [`World::enable_par_stats`]. `None` costs nothing on
    /// the stepping paths.
    par_stats: Option<ParStats>,
}

impl World {
    pub fn new(radio: Radio) -> Self {
        World {
            now: 0,
            seq: 0,
            queue: EventHeap::new(),
            motes: Vec::new(),
            radio,
            cpu_slice_us: 100,
            stats: Stats::default(),
            trace: None,
            window_batches: Vec::new(),
            merge_sends: Vec::new(),
            fault_entries: Vec::new(),
            reboot_policy: RebootPolicy::default(),
            world_times: Vec::new(),
            par_stats: None,
        }
    }

    pub fn now(&self) -> u64 {
        self.now
    }

    /// Switches on the unified world trace. Backends must also surface
    /// their machine traces through [`MoteCtx::vm_events`] (for Céu motes,
    /// `CeuMote::enable_trace`).
    pub fn enable_trace(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    pub fn trace_enabled(&self) -> bool {
        self.trace.is_some()
    }

    /// Takes the merged world trace collected so far, in the canonical
    /// deterministic order `(world_time_us, mote, seq)`. Tracing stays
    /// enabled; subsequent events start a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<WorldTraceEvent> {
        let mut events = match self.trace.take() {
            Some(t) => {
                self.trace = Some(Vec::new());
                t
            }
            None => Vec::new(),
        };
        events.sort_by_key(|e| (e.world_time_us, e.mote, e.seq));
        events
    }

    /// Switches on parallel-scheduler introspection: subsequent
    /// [`run_until_parallel`](World::run_until_parallel) calls record one
    /// [`ParWindowStats`] per window (stall attribution, per-worker load,
    /// heap traffic) into a bounded collector. Collection never alters
    /// scheduling decisions, so the simulation — and its world trace —
    /// stays bit-identical with stats on or off, at any thread count.
    pub fn enable_par_stats(&mut self) {
        if self.par_stats.is_none() {
            self.par_stats = Some(ParStats::new(DEFAULT_WINDOW_CAP));
        }
    }

    pub fn par_stats_enabled(&self) -> bool {
        self.par_stats.is_some()
    }

    /// The stats collected so far (None until [`World::enable_par_stats`]).
    pub fn par_stats(&self) -> Option<&ParStats> {
        self.par_stats.as_ref()
    }

    /// Takes the collected parallel-scheduler stats; collection stays
    /// enabled and restarts fresh.
    pub fn take_par_stats(&mut self) -> Option<ParStats> {
        let taken = self.par_stats.take();
        if taken.is_some() {
            self.par_stats = Some(ParStats::new(DEFAULT_WINDOW_CAP));
        }
        taken
    }

    /// The world-level counters as one JSON object (dependency-free,
    /// stable key order): network aggregates, radio-medium drop reasons,
    /// crash/reboot totals, and the per-mote packet/timer/fault stats.
    /// Drivers merge this with the machine metrics and scheduler stats
    /// into one `--metrics-out` file.
    pub fn metrics_json(&self) -> String {
        let r = &self.radio.stats;
        let mut crashes = 0u64;
        let mut reboots = 0u64;
        let mut motes = String::from("[");
        for (i, slot) in self.motes.iter().enumerate() {
            let m = &slot.stats;
            crashes += m.crashes;
            reboots += m.reboots;
            if i > 0 {
                motes.push(',');
            }
            motes.push_str(&format!(
                concat!(
                    "{{\"mote\":{},\"up\":{},\"sent\":{},\"received\":{},\"lost\":{},",
                    "\"dropped_in_flight\":{},\"timer_firings\":{},\"cpu_slices\":{},",
                    "\"crashes\":{},\"reboots\":{}}}"
                ),
                i,
                slot.status.is_up(),
                m.sent,
                m.received,
                m.lost,
                m.dropped_in_flight,
                m.timer_firings,
                m.cpu_slices,
                m.crashes,
                m.reboots,
            ));
        }
        motes.push(']');
        format!(
            concat!(
                "{{\"now_us\":{},\"delivered\":{},\"lost\":{},\"cpu_slices\":{},",
                "\"dropped_in_flight\":{},\"crashes\":{},\"reboots\":{},",
                "\"radio\":{{\"attempts\":{},\"delivered\":{},\"dropped_link\":{},",
                "\"dropped_loss\":{},\"dropped_partition\":{},\"dropped_burst\":{},",
                "\"dropped_in_flight\":{}}},\"motes\":{}}}"
            ),
            self.now,
            self.stats.delivered,
            self.stats.lost,
            self.stats.cpu_slices,
            self.stats.dropped_in_flight,
            crashes,
            reboots,
            r.attempts,
            r.delivered,
            r.dropped_link,
            r.dropped_loss,
            r.dropped_partition,
            r.dropped_burst,
            r.dropped_in_flight,
            motes,
        )
    }

    pub fn add_mote(&mut self, backend: Box<dyn Backend>) -> MoteId {
        let id = self.motes.len();
        let mut slot = MoteSlot::empty();
        slot.backend = backend;
        self.motes.push(slot);
        id
    }

    pub fn leds(&self, mote: MoteId) -> &Leds {
        &self.motes[mote].leds
    }

    /// Per-mote counters (sends, receives, losses, timers, CPU slices).
    pub fn mote_stats(&self, mote: MoteId) -> &MoteStats {
        &self.motes[mote].stats
    }

    pub fn mote_count(&self) -> usize {
        self.motes.len()
    }

    fn schedule(&mut self, at: u64, fire: Fire) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        let key = order_key(lane_of(&fire), self.seq);
        self.queue.push(at, key, fire);
    }

    /// Schedules a *world event* (fault / reboot): also records its time
    /// so the parallel stepper can clip windows at it.
    fn schedule_world(&mut self, at: u64, fire: Fire) {
        debug_assert!(is_world_fire(&fire));
        let pos = self.world_times.partition_point(|&t| t <= at);
        self.world_times.insert(pos, at);
        self.schedule(at, fire);
    }

    /// The time of the earliest pending world event, if any.
    fn next_world_at(&self) -> Option<u64> {
        self.world_times.first().copied()
    }

    /// Removes one occurrence of `at` from the pending world-event times
    /// (called when the corresponding firing pops).
    fn consume_world_time(&mut self, at: u64) {
        if let Some(pos) = self.world_times.iter().position(|&t| t == at) {
            self.world_times.remove(pos);
        }
    }

    /// Installs a fault plan: each entry is applied at exactly its
    /// scheduled virtual time, in both the sequential and the parallel
    /// stepper (where it acts as a window barrier, so fault timing is
    /// identical at any thread count). Entries whose time has already
    /// passed apply at the current time. Several plans may be installed;
    /// their entries interleave by time.
    ///
    /// Fails if the plan names a mote the world doesn't have.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) -> Result<(), String> {
        if let Some(max) = plan.max_mote() {
            if max >= self.motes.len() {
                return Err(format!(
                    "fault plan names mote {max}, but the world has only {} motes",
                    self.motes.len()
                ));
            }
        }
        for entry in plan.entries() {
            let index = self.fault_entries.len();
            self.fault_entries.push(entry.clone());
            let at = entry.at_us.max(self.now);
            self.schedule_world(at, Fire::Fault { index });
        }
        Ok(())
    }

    /// What happens after a machine crash (runtime error / watchdog).
    /// Plan-driven `Reboot` actions carry their own delay and ignore this.
    pub fn set_reboot_policy(&mut self, policy: RebootPolicy) {
        self.reboot_policy = policy;
    }

    /// Whether a mote is up or crashed (and why).
    pub fn mote_status(&self, mote: MoteId) -> &MoteStatus {
        &self.motes[mote].status
    }

    /// Powers a mote's radio off/on, validating the id against the mote
    /// roster (unlike [`Radio::set_down`], which silently grows its `down`
    /// vector for any index).
    pub fn set_mote_down(&mut self, mote: MoteId, down: bool) -> Result<(), String> {
        if mote >= self.motes.len() {
            return Err(format!(
                "mote {mote} does not exist (the world has {} motes)",
                self.motes.len()
            ));
        }
        self.radio.set_down(mote, down);
        Ok(())
    }

    /// A reboot may never land inside the discovery window of the crash:
    /// clamping the delay to at least the radio lookahead (and ≥ 1 µs)
    /// keeps reboot timing a clean window barrier, identical in the
    /// sequential and parallel steppers.
    fn effective_reboot_delay(&self, delay: u64) -> u64 {
        delay.max(1).max(self.radio.min_latency())
    }

    /// Stamps one world-originated trace event (crash / reboot) for a
    /// mote. Bumps the per-mote `seq` even when tracing is off, keeping
    /// the counter in step with the parallel path.
    fn emit_world_event(&mut self, mote: MoteId, event: TraceEvent) {
        let now = self.now;
        let slot = &mut self.motes[mote];
        slot.trace_seq += 1;
        if let Some(trace) = self.trace.as_mut() {
            trace.push(WorldTraceEvent {
                world_time_us: now,
                mote,
                seq: slot.trace_seq,
                event: event.normalized(),
            });
        }
    }

    /// Transitions a mote to `Crashed` at the current time: drops its
    /// pending timer/CPU bookkeeping, powers its radio off, emits a
    /// `MoteCrashed` trace event, and (per the reboot policy, or
    /// `reboot_override` for plan-driven crashes) schedules the reboot.
    fn crash_mote(&mut self, mote: MoteId, cause: CrashCause, reboot_override: Option<u64>) {
        if !self.motes[mote].status.is_up() {
            return;
        }
        let event = TraceEvent::MoteCrashed {
            kind: cause.kind,
            line: cause.span.line,
            col: cause.span.col,
        };
        let slot = &mut self.motes[mote];
        slot.status = MoteStatus::Crashed { at: self.now, cause };
        slot.crashes += 1;
        slot.stats.crashes += 1;
        slot.timer_at = None;
        slot.cpu_scheduled = false;
        let nth = slot.crashes;
        self.emit_world_event(mote, event);
        self.radio.set_down(mote, true);
        let delay = reboot_override.or_else(|| self.reboot_policy.delay_for(nth));
        if let Some(d) = delay {
            let at = self.now + self.effective_reboot_delay(d);
            self.schedule_world(at, Fire::Reboot { mote });
        }
    }

    /// The world-side effects of a crash discovered during a parallel
    /// window merge: the slot itself was already mutated by the worker,
    /// so only the shared state (radio, reboot schedule) remains.
    fn apply_crash_world_effects(&mut self, mote: MoteId, crash_at: u64) {
        self.radio.set_down(mote, true);
        let nth = self.motes[mote].crashes;
        if let Some(d) = self.reboot_policy.delay_for(nth) {
            let at = crash_at + self.effective_reboot_delay(d);
            self.schedule_world(at.max(self.now), Fire::Reboot { mote });
        }
    }

    /// Counts packets that the medium had accepted but that landed on a
    /// downed mote (dropped in flight).
    fn note_in_flight_drops(&mut self, mote: MoteId, n: u64) {
        if n == 0 {
            return;
        }
        self.stats.dropped_in_flight += n;
        self.motes[mote].stats.dropped_in_flight += n;
        self.radio.stats.dropped_in_flight += n;
    }

    /// Applies one fault-plan entry at its scheduled time.
    fn apply_fault(&mut self, index: usize) {
        let entry = self.fault_entries[index].clone();
        match entry.action {
            FaultAction::Crash { mote } => {
                self.crash_mote(mote, CrashCause::injected(), None);
            }
            FaultAction::Reboot { mote, delay_us } => {
                if self.motes[mote].status.is_up() {
                    // crash-then-reboot in one action
                    self.crash_mote(mote, CrashCause::injected(), Some(delay_us));
                } else {
                    let at = self.now + self.effective_reboot_delay(delay_us);
                    self.schedule_world(at, Fire::Reboot { mote });
                }
            }
            FaultAction::Partition { ref group_a, ref group_b, until_us } => {
                self.radio.set_partition(group_a, group_b, until_us);
            }
            FaultAction::Heal => self.radio.heal(),
            FaultAction::LossBurst { from, to, rate, until_us } => {
                self.radio.set_link_loss(from, to, rate, until_us);
            }
            FaultAction::ClockSkew { mote, ppm } => {
                self.motes[mote].skew_ppm = ppm;
            }
            FaultAction::DropInFlight { mote } => {
                let dropped = self
                    .queue
                    .retain(|_, _, f| !matches!(f, Fire::Deliver { to, .. } if *to == mote));
                self.note_in_flight_drops(mote, dropped as u64);
            }
        }
    }

    /// Revives a crashed mote: radio back up, `MoteRebooted` trace event,
    /// then the backend's `reboot` callback (fresh boot with state loss).
    fn apply_reboot(&mut self, mote: MoteId) {
        if self.motes[mote].status.is_up() {
            return; // a stale reboot (mote was already revived)
        }
        self.motes[mote].status = MoteStatus::Up;
        self.motes[mote].stats.reboots += 1;
        self.radio.set_down(mote, false);
        let boots = self.motes[mote].crashes + 1;
        self.emit_world_event(mote, TraceEvent::MoteRebooted { boots });
        self.with_ctx(mote, |backend, ctx| backend.reboot(ctx));
    }

    /// Boots every mote (virtual time 0).
    pub fn boot(&mut self) {
        for id in 0..self.motes.len() {
            self.with_ctx(id, |backend, ctx| backend.boot(ctx));
        }
    }

    /// Runs until the given virtual time (µs), or until nothing is left.
    pub fn run_until(&mut self, deadline: u64) {
        while let Some((at, _)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            let (at, _, fire) = self.queue.pop().unwrap();
            self.now = at;
            match fire {
                Fire::Deliver { to, packet } => {
                    // the destination may have gone down while the packet
                    // was in flight: discard at arrival, don't wake it
                    if !self.motes[to].status.is_up() || self.radio.is_down(to) {
                        self.note_in_flight_drops(to, 1);
                        continue;
                    }
                    self.stats.delivered += 1;
                    self.motes[to].stats.received += 1;
                    self.with_ctx(to, |backend, ctx| backend.deliver(ctx, packet));
                }
                Fire::Timer { mote } => {
                    // stale timer? (the mote re-requested a different time,
                    // or crashed — a crash clears `timer_at`)
                    if self.motes[mote].timer_at == Some(at) && self.motes[mote].status.is_up() {
                        self.motes[mote].timer_at = None;
                        self.motes[mote].stats.timer_firings += 1;
                        self.with_ctx(mote, |backend, ctx| backend.timer(ctx));
                    }
                }
                Fire::Cpu { mote } => {
                    if !self.motes[mote].status.is_up() {
                        continue; // crash cleared `cpu_scheduled` already
                    }
                    self.stats.cpu_slices += 1;
                    self.motes[mote].stats.cpu_slices += 1;
                    self.motes[mote].cpu_scheduled = false;
                    self.with_ctx(mote, |backend, ctx| backend.cpu(ctx));
                }
                Fire::Fault { index } => {
                    self.consume_world_time(at);
                    self.apply_fault(index);
                }
                Fire::Reboot { mote } => {
                    self.consume_world_time(at);
                    self.apply_reboot(mote);
                }
            }
        }
        self.now = self.now.max(deadline);
    }

    /// Runs until the given virtual time (µs), stepping disjoint motes on
    /// up to `threads` worker threads.
    ///
    /// Conservative parallel discrete-event simulation: the radio's
    /// minimum per-hop latency is the *lookahead* — a packet emitted at
    /// `t` cannot reach any mote before `t + lookahead` — so simulation
    /// advances in windows of that width. Within a window every mote's
    /// pending events (plus any timers/CPU slices it schedules for itself
    /// inside the window) are run on a worker with no shared state; at
    /// the window boundary the workers' outputs are merged back
    /// **deterministically**, in `(emit time, mote id, emission order)`
    /// order, so the result is identical for any thread count — and, for
    /// a lossless medium, identical to [`run_until`](World::run_until).
    ///
    /// A zero-latency medium has no lookahead; such worlds (and
    /// `threads <= 1`) fall back to the sequential stepper.
    pub fn run_until_parallel(&mut self, deadline: u64, threads: usize) {
        let lookahead = self.radio.min_latency();
        let n_motes = self.motes.len();
        // Introspection (`ceu-par-stats/v1`): when enabled, each window
        // below records its stall attribution. Everything stats-related
        // is behind `stats_on`, so the disabled path costs one branch per
        // window and allocates nothing.
        let stats_on = self.par_stats.is_some();
        let run_t0 = stats_on.then(std::time::Instant::now);
        let wall_base = self.par_stats.as_ref().map_or(0, |ps| ps.wall_ns);
        if let Some(ps) = self.par_stats.as_mut() {
            ps.threads = threads.max(1) as u32;
            ps.lookahead_us = lookahead;
            ps.motes = n_motes as u32;
        }
        if threads <= 1 || lookahead == 0 || n_motes <= 1 {
            self.run_until(deadline);
            if let (Some(t0), Some(ps)) = (run_t0, self.par_stats.as_mut()) {
                ps.fallback = true;
                ps.wall_ns += t0.elapsed().as_nanos() as u64;
            }
            return;
        }
        loop {
            // window = [first pending event, first event + lookahead),
            // clipped to the deadline (run_until's contract: nothing
            // after `deadline` fires).
            let window_start = match self.queue.peek_key() {
                Some((at, _)) if at <= deadline => at,
                _ => break,
            };
            // World events (faults, reboots) mutate shared state, so they
            // run as *barriers* between windows, on the simulation thread,
            // at their exact virtual time — the same instant the
            // sequential stepper applies them.
            if let Some((at, _, fire)) = self.queue.peek() {
                if at == window_start && is_world_fire(fire) {
                    let (at, _, fire) = self.queue.pop().unwrap();
                    self.now = at;
                    self.consume_world_time(at);
                    match fire {
                        Fire::Fault { index } => self.apply_fault(index),
                        Fire::Reboot { mote } => self.apply_reboot(mote),
                        _ => unreachable!("is_world_fire"),
                    }
                    continue;
                }
            }
            // Clip the window at the next world event so no worker steps
            // past a pending fault/reboot.
            let mut run_end = (window_start + lookahead).min(deadline.saturating_add(1));
            if let Some(world_at) = self.next_world_at() {
                run_end = run_end.min(world_at.max(window_start + 1));
            }
            let clipped = run_end < window_start.saturating_add(lookahead);
            let win_t0 = stats_on.then(std::time::Instant::now);
            let heap_ops_0 = if stats_on { self.queue.op_counts() } else { (0, 0) };

            // Drain this window's events into per-mote batches. The outer
            // buffer persists across windows; the inner `Vec`s are taken
            // below and move to the workers.
            if self.window_batches.len() < self.motes.len() {
                self.window_batches.resize_with(self.motes.len(), Vec::new);
            }
            while let Some((at, _, fire)) = self.queue.peek() {
                if at >= run_end || is_world_fire(fire) {
                    break;
                }
                let (at, seq, fire) = self.queue.pop().unwrap();
                let mote = match &fire {
                    Fire::Deliver { to, .. } => *to,
                    Fire::Timer { mote } | Fire::Cpu { mote } => *mote,
                    Fire::Fault { .. } | Fire::Reboot { .. } => unreachable!("world fire"),
                };
                // Mirror of the sequential arrival check: a delivery to a
                // mote that is down *now* (world state is constant between
                // barriers) drops here; in-window crashes are handled by
                // the worker's own status check.
                if matches!(&fire, Fire::Deliver { .. })
                    && (!self.motes[mote].status.is_up() || self.radio.is_down(mote))
                {
                    self.note_in_flight_drops(mote, 1);
                    continue;
                }
                self.window_batches[mote].push((at, seq, fire));
            }

            // Check the motes out of the world and step them in parallel.
            let seq_base = self.seq;
            let cpu_slice_us = self.cpu_slice_us;
            let mut work: Vec<WindowWork> = Vec::new();
            for id in 0..self.motes.len() {
                let batch = std::mem::take(&mut self.window_batches[id]);
                if batch.is_empty() {
                    continue;
                }
                let slot = std::mem::replace(&mut self.motes[id], MoteSlot::empty());
                work.push((id, slot, batch));
            }
            let workers = threads.min(work.len()).max(1);
            let chunk_size = work.len().div_ceil(workers);
            let mut chunks: Vec<Vec<WindowWork>> = (0..workers).map(|_| Vec::new()).collect();
            for (i, item) in work.into_iter().enumerate() {
                chunks[i / chunk_size].push(item);
            }
            let drain_done = stats_on.then(std::time::Instant::now);
            // Workers catch per-mote panics so a crash inside a window is
            // attributable: the panic resurfaces on the simulation thread
            // with the mote id and the window bounds, instead of an opaque
            // worker-join failure. Each worker also reports its busy time
            // (start-to-finish over its chunk) when stats are on.
            type WorkerOut = (Vec<Result<WindowOut, (MoteId, String)>>, u64);
            let worker_results: Vec<WorkerOut> = std::thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .map(|chunk| {
                        s.spawn(move || {
                            let t0 = stats_on.then(std::time::Instant::now);
                            let outs = chunk
                                .into_iter()
                                .map(|(id, slot, batch)| {
                                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                        run_mote_window(
                                            id,
                                            slot,
                                            batch,
                                            run_end,
                                            seq_base,
                                            cpu_slice_us,
                                        )
                                    }))
                                    .map_err(|payload| (id, panic_message(payload)))
                                })
                                .collect::<Vec<_>>();
                            let busy = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
                            (outs, busy)
                        })
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().expect("mote worker thread")).collect()
            });
            let par_done = stats_on.then(std::time::Instant::now);
            let mut busy_ns: Vec<u64> = Vec::new();
            let mut events_per_worker: Vec<u64> = Vec::new();
            let mut motes_per_worker: Vec<u32> = Vec::new();
            let mut outs: Vec<WindowOut> = Vec::new();
            for (worker_outs, busy) in worker_results {
                if stats_on {
                    busy_ns.push(busy);
                    motes_per_worker.push(worker_outs.len() as u32);
                    events_per_worker
                        .push(worker_outs.iter().map(|r| r.as_ref().map_or(0, |o| o.events)).sum());
                }
                for r in worker_outs {
                    outs.push(r.unwrap_or_else(|(id, msg)| {
                        panic!(
                            "mote {id} panicked in parallel window \
                             [{window_start}, {run_end}): {msg}"
                        )
                    }));
                }
            }

            // Deterministic merge: check motes back in, then apply every
            // cross-window effect in (time, mote, emission) order. The
            // merge buffer is reused window-to-window (drained, not moved).
            self.now = run_end.saturating_sub(1).max(self.now);
            let mut sends = std::mem::take(&mut self.merge_sends);
            // In-window crashes, keyed like sends: `(crash time, mote,
            // emission index at crash)`. Their world-side effects (radio
            // down, reboot schedule) interleave with the send sweep below
            // so the radio sees the identical state sequence — and draws
            // the identical RNG stream — as the sequential stepper.
            let mut crashes: Vec<(u64, MoteId, usize)> = Vec::new();
            for out in outs {
                self.stats.delivered += out.delivered;
                self.stats.cpu_slices += out.cpu_slices;
                self.stats.dropped_in_flight += out.dropped_in_flight;
                self.radio.stats.dropped_in_flight += out.dropped_in_flight;
                if let Some(trace) = self.trace.as_mut() {
                    trace.extend(out.trace);
                }
                if let Some((crash_at, sends_before)) = out.crashed {
                    crashes.push((crash_at, out.id, sends_before));
                }
                for (i, (at, to, packet)) in out.sends.into_iter().enumerate() {
                    sends.push((at, out.id, i, to, packet));
                }
                for at in out.timers_after {
                    self.schedule(at, Fire::Timer { mote: out.id });
                }
                for at in out.cpus_after {
                    self.schedule(at, Fire::Cpu { mote: out.id });
                }
                self.motes[out.id] = out.slot;
            }
            crashes.sort_unstable();
            let mut crashes = crashes.into_iter().peekable();
            sends.sort_unstable_by_key(|a| (a.0, a.1, a.2));
            let cross_sends = sends.len() as u64;
            let mut send_sample: Vec<(u64, u32, u32)> = Vec::new();
            if stats_on {
                send_sample.extend(
                    sends.iter().take(SEND_SAMPLE_CAP).map(|s| (s.0, s.1 as u32, s.3 as u32)),
                );
            }
            for (at, from, i, to, packet) in sends.drain(..) {
                while let Some(&(c_at, c_mote, c_i)) = crashes.peek() {
                    if (c_at, c_mote, c_i) <= (at, from, i) {
                        self.apply_crash_world_effects(c_mote, c_at);
                        crashes.next();
                    } else {
                        break;
                    }
                }
                if let Some(arrival) = self.radio.transmit(at, from, to, &packet) {
                    self.schedule(arrival, Fire::Deliver { to, packet });
                } else {
                    self.stats.lost += 1;
                    self.motes[from].stats.lost += 1;
                }
            }
            for (c_at, c_mote, _) in crashes {
                self.apply_crash_world_effects(c_mote, c_at);
            }
            self.merge_sends = sends;
            if let (Some(run_t0), Some(win_t0), Some(drain_done), Some(par_done)) =
                (run_t0, win_t0, drain_done, par_done)
            {
                let merge_done = std::time::Instant::now();
                let (pushes_1, pops_1) = self.queue.op_counts();
                let events = events_per_worker.iter().sum();
                let motes = motes_per_worker.iter().sum();
                let ps = self.par_stats.as_mut().expect("stats_on");
                ps.record_window(ParWindowStats {
                    index: ps.totals.windows,
                    t_wall_ns: wall_base + win_t0.duration_since(run_t0).as_nanos() as u64,
                    start_us: window_start,
                    end_us: run_end,
                    lookahead_us: lookahead,
                    clipped,
                    threads: threads as u32,
                    workers: busy_ns.len() as u32,
                    motes,
                    events,
                    busy_ns,
                    events_per_worker,
                    motes_per_worker,
                    drain_ns: drain_done.duration_since(win_t0).as_nanos() as u64,
                    par_ns: par_done.duration_since(drain_done).as_nanos() as u64,
                    merge_ns: merge_done.duration_since(par_done).as_nanos() as u64,
                    heap_pushes: pushes_1 - heap_ops_0.0,
                    heap_pops: pops_1 - heap_ops_0.1,
                    cross_sends,
                    send_sample,
                });
            }
        }
        if let (Some(t0), Some(ps)) = (run_t0, self.par_stats.as_mut()) {
            ps.fallback = false;
            ps.wall_ns += t0.elapsed().as_nanos() as u64;
        }
        self.now = self.now.max(deadline);
    }

    /// Runs one backend callback and applies its effects (sends, timer
    /// requests, CPU requests).
    fn with_ctx(&mut self, id: MoteId, f: impl FnOnce(&mut dyn Backend, &mut MoteCtx)) {
        let slot = &mut self.motes[id];
        let skew = slot.skew_ppm;
        let mut backend = std::mem::replace(&mut slot.backend, Box::new(Inert));
        let mut ctx = MoteCtx {
            id,
            now: skewed(self.now, skew),
            leds: &mut slot.leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
            vm_events: Vec::new(),
            failure: None,
        };
        f(backend.as_mut(), &mut ctx);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timer_request = ctx.timer_request;
        let wants_cpu = ctx.wants_cpu;
        let vm_events = std::mem::take(&mut ctx.vm_events);
        let failure = ctx.failure.take();
        self.motes[id].backend = backend;
        {
            let now = self.now;
            let trace = self.trace.as_mut();
            let slot = &mut self.motes[id];
            if let Some(trace) = trace {
                for event in vm_events {
                    slot.trace_seq += 1;
                    trace.push(WorldTraceEvent {
                        world_time_us: now,
                        mote: id,
                        seq: slot.trace_seq,
                        event: event.normalized(),
                    });
                }
            } else {
                // keep the per-mote counter in step with the parallel
                // path, which stamps events before the merge decides
                slot.trace_seq += vm_events.len() as u64;
            }
        }
        if let Some(cause) = failure {
            // graceful degradation: the failing callback's pending effects
            // (sends, timer/CPU requests) die with the mote
            self.crash_mote(id, cause, None);
            return;
        }
        for (to, packet) in outbox {
            self.motes[id].stats.sent += 1;
            if let Some(arrival) = self.radio.transmit(self.now, id, to, &packet) {
                self.schedule(arrival, Fire::Deliver { to, packet });
            } else {
                self.stats.lost += 1;
                self.motes[id].stats.lost += 1;
            }
        }
        if let Some(at) = timer_request {
            // the backend asked in its own (skewed) clock; convert back
            let at = unskew(at, skew).max(self.now);
            let better = match self.motes[id].timer_at {
                Some(t) => at < t,
                None => true,
            };
            if better {
                self.motes[id].timer_at = Some(at);
                self.schedule(at, Fire::Timer { mote: id });
            }
        }
        if wants_cpu && !self.motes[id].cpu_scheduled {
            self.motes[id].cpu_scheduled = true;
            let at = self.now + self.cpu_slice_us;
            self.schedule(at, Fire::Cpu { mote: id });
        }
    }
}

/// What one mote produced during a parallel window ([`World::run_until_parallel`]).
struct WindowOut {
    id: MoteId,
    slot: MoteSlot,
    /// `(emit time, destination, packet)` in emission order; routed
    /// through the radio at merge time.
    sends: Vec<(u64, MoteId, Packet)>,
    /// Timer requests that fall on/after the window boundary.
    timers_after: Vec<u64>,
    /// CPU-slice grants that fall on/after the window boundary.
    cpus_after: Vec<u64>,
    delivered: u64,
    cpu_slices: u64,
    /// Firings popped inside the window, including locally rescheduled
    /// timers/CPU slices (feeds `ceu-par-stats/v1` per-worker loads).
    events: u64,
    /// World-trace events produced inside the window, already stamped
    /// with `(world_time_us, mote, seq)`.
    trace: Vec<WorldTraceEvent>,
    /// The mote crashed inside the window: `(crash time, how many sends
    /// it had emitted first)`. The merge applies the shared-state effects
    /// (radio down, reboot schedule) at exactly that point of the
    /// deterministic `(time, mote, emission)` sweep.
    crashed: Option<(u64, usize)>,
    /// Deliveries discarded inside the window because the mote had
    /// crashed earlier in the same window.
    dropped_in_flight: u64,
}

/// Renders a caught panic payload for re-raising with mote context.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One window's firings for a single mote: `(at, seq, fire)` triples.
type WindowBatch = Vec<(u64, u64, Fire)>;
/// A mote checked out of the world for one window, with its batch.
type WindowWork = (MoteId, MoteSlot, WindowBatch);
/// The backend callback a firing dispatches to inside a window.
type FireFn = fn(&mut dyn Backend, &mut MoteCtx, Option<Packet>);

/// Steps one mote through its window batch, running any timers/CPU slices
/// it schedules for itself *inside* the window in a local mini event
/// loop. Mirrors the effect application of [`World::with_ctx`] exactly,
/// except that packet transmission (which needs the shared radio) is
/// deferred to the merge.
fn run_mote_window(
    id: MoteId,
    mut slot: MoteSlot,
    batch: WindowBatch,
    run_end: u64,
    seq_base: u64,
    cpu_slice_us: u64,
) -> WindowOut {
    let mut queue: EventHeap<Fire> = EventHeap::with_capacity(batch.len());
    for (at, seq, fire) in batch {
        queue.push(at, seq, fire);
    }
    // local events order after the already-queued globals at equal times,
    // exactly as World::schedule's monotone `seq` would have placed them
    let mut seq = seq_base;
    let mut out = WindowOut {
        id,
        slot: MoteSlot::empty(),
        sends: Vec::new(),
        timers_after: Vec::new(),
        cpus_after: Vec::new(),
        delivered: 0,
        cpu_slices: 0,
        events: 0,
        trace: Vec::new(),
        crashed: None,
        dropped_in_flight: 0,
    };
    while let Some((at, _, fire)) = queue.pop() {
        debug_assert!(at < run_end);
        out.events += 1;
        let now = at;
        if !slot.status.is_up() {
            // crashed earlier in this window: deliveries drop in flight,
            // timers/CPU slices vanish (mirrors the sequential stepper)
            if matches!(fire, Fire::Deliver { .. }) {
                out.dropped_in_flight += 1;
                slot.stats.dropped_in_flight += 1;
            }
            continue;
        }
        let (run, packet): (Option<FireFn>, Option<Packet>) = match fire {
            Fire::Deliver { packet, .. } => {
                out.delivered += 1;
                slot.stats.received += 1;
                (
                    Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, p: Option<Packet>| {
                        b.deliver(ctx, p.unwrap())
                    }),
                    Some(packet),
                )
            }
            Fire::Timer { .. } => {
                if slot.timer_at == Some(at) {
                    slot.timer_at = None;
                    slot.stats.timer_firings += 1;
                    (
                        Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, _: Option<Packet>| {
                            b.timer(ctx)
                        }),
                        None,
                    )
                } else {
                    (None, None) // stale
                }
            }
            Fire::Cpu { .. } => {
                out.cpu_slices += 1;
                slot.stats.cpu_slices += 1;
                slot.cpu_scheduled = false;
                (Some(|b: &mut dyn Backend, ctx: &mut MoteCtx, _: Option<Packet>| b.cpu(ctx)), None)
            }
            Fire::Fault { .. } | Fire::Reboot { .. } => {
                unreachable!("world fires never enter a window batch")
            }
        };
        let Some(run) = run else { continue };
        let mut ctx = MoteCtx {
            id,
            now: skewed(now, slot.skew_ppm),
            leds: &mut slot.leds,
            outbox: Vec::new(),
            timer_request: None,
            wants_cpu: false,
            vm_events: Vec::new(),
            failure: None,
        };
        run(slot.backend.as_mut(), &mut ctx, packet);
        let outbox = std::mem::take(&mut ctx.outbox);
        let timer_request = ctx.timer_request;
        let wants_cpu = ctx.wants_cpu;
        let vm_events = std::mem::take(&mut ctx.vm_events);
        let failure = ctx.failure.take();
        for event in vm_events {
            slot.trace_seq += 1;
            out.trace.push(WorldTraceEvent {
                world_time_us: now,
                mote: id,
                seq: slot.trace_seq,
                event: event.normalized(),
            });
        }
        if let Some(cause) = failure {
            // mirror of World::crash_mote, minus the shared state (radio
            // down + reboot scheduling), which the merge applies at this
            // exact point of the (time, mote, emission) sweep
            slot.trace_seq += 1;
            out.trace.push(WorldTraceEvent {
                world_time_us: now,
                mote: id,
                seq: slot.trace_seq,
                event: TraceEvent::MoteCrashed {
                    kind: cause.kind,
                    line: cause.span.line,
                    col: cause.span.col,
                }
                .normalized(),
            });
            slot.status = MoteStatus::Crashed { at: now, cause };
            slot.crashes += 1;
            slot.stats.crashes += 1;
            slot.timer_at = None;
            slot.cpu_scheduled = false;
            out.crashed = Some((now, out.sends.len()));
            continue; // discard this callback's sends / timer / CPU asks
        }
        for (to, packet) in outbox {
            slot.stats.sent += 1;
            out.sends.push((now, to, packet));
        }
        if let Some(req) = timer_request {
            let req = unskew(req, slot.skew_ppm).max(now);
            let better = match slot.timer_at {
                Some(t) => req < t,
                None => true,
            };
            if better {
                slot.timer_at = Some(req);
                if req < run_end {
                    seq += 1;
                    queue.push(req, order_key(id as u64 + 1, seq), Fire::Timer { mote: id });
                } else {
                    out.timers_after.push(req);
                }
            }
        }
        if wants_cpu && !slot.cpu_scheduled {
            slot.cpu_scheduled = true;
            let cat = now + cpu_slice_us;
            if cat < run_end {
                seq += 1;
                queue.push(cat, order_key(id as u64 + 1, seq), Fire::Cpu { mote: id });
            } else {
                out.cpus_after.push(cat);
            }
        }
    }
    out.slot = slot;
    out
}

/// Shared-handle backends: a harness can keep an `Arc<Mutex<B>>` to a
/// mote it adds to the world and read its state (metrics, clock drift)
/// after the run. `Mutex` rather than `RefCell` so the handle stays
/// `Send` and the mote can be stepped on a worker thread.
impl<B: Backend> Backend for std::sync::Arc<std::sync::Mutex<B>> {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().boot(ctx)
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        self.lock().unwrap().deliver(ctx, packet)
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().timer(ctx)
    }
    fn cpu(&mut self, ctx: &mut MoteCtx) {
        self.lock().unwrap().cpu(ctx)
    }
}

/// Placeholder while a backend is checked out during a callback.
struct Inert;

impl Backend for Inert {
    fn boot(&mut self, _: &mut MoteCtx) {}
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, _: &mut MoteCtx) {}
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;

    /// Backend that pings a peer every millisecond.
    struct Pinger {
        peer: MoteId,
        received: u32,
    }

    impl Backend for Pinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            self.received += 1;
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn timers_and_delivery_flow() {
        let mut w = World::new(Radio::ideal(1_000));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert_eq!((a, b), (0, 1));
        w.boot();
        w.run_until(10_500);
        // pings at 1..=10ms, 1ms latency: arrivals at 2..=10ms by 10.5ms
        assert_eq!(w.stats.delivered, 18);
        assert_eq!(w.leds(0).history.len(), 9);
        assert_eq!(w.leds(1).history.len(), 9);
        // per-mote view agrees with the aggregate
        for m in [a, b] {
            assert_eq!(w.mote_stats(m).sent, 10);
            assert_eq!(w.mote_stats(m).received, 9);
            assert_eq!(w.mote_stats(m).lost, 0);
            assert_eq!(w.mote_stats(m).timer_firings, 10);
        }
        assert_eq!(w.radio.stats.attempts, 20);
        assert_eq!(w.radio.stats.delivered, 20, "two arrivals are past the deadline, not lost");
    }

    #[test]
    fn per_mote_losses_attribute_to_the_sender() {
        // mote 0 can reach mote 1 but not vice versa
        let mut w = World::new(Radio::new(crate::radio::Topology::Links(vec![(0, 1)]), 10, 0.0, 1));
        let a = w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        let b = w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(5_000);
        assert_eq!(w.mote_stats(a).lost, 0);
        assert_eq!(w.mote_stats(b).lost, w.mote_stats(b).sent);
        assert_eq!(w.stats.lost, w.mote_stats(b).lost);
        assert_eq!(w.radio.stats.dropped_link, w.stats.lost);
        assert_eq!(w.mote_count(), 2);
    }

    fn pinger_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 2, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 3, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w
    }

    type LedHistory = Vec<(u64, u8, bool)>;

    fn observe(w: &World) -> (Stats, Vec<MoteStats>, Vec<LedHistory>) {
        (
            w.stats,
            (0..w.mote_count()).map(|m| *w.mote_stats(m)).collect(),
            (0..w.mote_count()).map(|m| w.leds(m).history.clone()).collect(),
        )
    }

    #[test]
    fn parallel_stepping_matches_sequential() {
        let mut seq = pinger_world(Radio::ideal(1_000));
        let mut par = pinger_world(Radio::ideal(1_000));
        seq.run_until(50_500);
        par.run_until_parallel(50_500, 4);
        assert_eq!(seq.now(), par.now());
        let (s_stats, s_motes, s_leds) = observe(&seq);
        let (p_stats, p_motes, p_leds) = observe(&par);
        assert_eq!(s_stats.delivered, p_stats.delivered);
        assert_eq!(s_stats.lost, p_stats.lost);
        assert_eq!(s_stats.cpu_slices, p_stats.cpu_slices);
        assert_eq!(s_motes, p_motes);
        assert_eq!(s_leds, p_leds);
    }

    #[test]
    fn parallel_stepping_is_thread_count_invariant() {
        // a lossy medium exercises the deterministic merge order: any
        // thread count must produce the identical run
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = pinger_world(radio());
        base.run_until_parallel(40_000, 2);
        for threads in [3, 4, 8] {
            let mut w = pinger_world(radio());
            w.run_until_parallel(40_000, threads);
            assert_eq!(observe(&base), observe(&w), "threads={threads}");
        }
    }

    /// A pinger that also records a synthetic VM event per callback, so
    /// the unified world trace can be checked without a full Céu machine.
    struct TracingPinger {
        peer: MoteId,
    }

    impl Backend for TracingPinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(-1) });
            ctx.set_timer_at(1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(p.value()) });
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            ctx.vm_events.push(TraceEvent::Terminated { value: Some(ctx.now as i64) });
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, ctx.now as i64));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    fn tracing_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.enable_trace();
        for peer in [1, 2, 3, 0] {
            w.add_mote(Box::new(TracingPinger { peer }));
        }
        w.boot();
        w
    }

    #[test]
    fn world_trace_is_identical_across_thread_counts() {
        // a lossy medium exercises the window merge; the merged stream
        // must be byte-identical for 1 (sequential fallback), 2 and 4
        // worker threads
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.25, 9);
        let mut base = tracing_world(radio());
        base.run_until_parallel(40_000, 1);
        let reference = base.take_trace();
        assert!(!reference.is_empty(), "the pingers must actually trace");
        let jsonl_ref: Vec<String> = reference.iter().map(|e| e.to_json()).collect();
        for threads in [2, 4] {
            let mut w = tracing_world(radio());
            w.run_until_parallel(40_000, threads);
            let trace = w.take_trace();
            assert_eq!(reference, trace, "threads={threads}");
            let jsonl: Vec<String> = trace.iter().map(|e| e.to_json()).collect();
            assert_eq!(jsonl_ref, jsonl, "wire format, threads={threads}");
        }
    }

    #[test]
    fn world_trace_orders_by_time_mote_seq() {
        let mut w = tracing_world(Radio::ideal(1_000));
        w.run_until(5_500);
        let trace = w.take_trace();
        let keys: Vec<_> = trace.iter().map(|e| (e.world_time_us, e.mote, e.seq)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        // per-mote seq is monotone from 1 with no gaps
        for mote in 0..w.mote_count() {
            let seqs: Vec<u64> = trace.iter().filter(|e| e.mote == mote).map(|e| e.seq).collect();
            assert_eq!(seqs, (1..=seqs.len() as u64).collect::<Vec<_>>(), "mote {mote}");
        }
        // taking the trace re-arms collection
        assert!(w.trace_enabled());
        w.run_until(6_500);
        assert!(!w.take_trace().is_empty());
    }

    #[test]
    fn parallel_mote_panics_carry_mote_and_window() {
        struct Bomb;
        impl Backend for Bomb {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(1_000);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, _: &mut MoteCtx) {
                panic!("the backend blew up");
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let mut w = World::new(Radio::ideal(500));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Bomb));
        w.boot();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep the test log quiet
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            w.run_until_parallel(5_000, 2);
        }))
        .expect_err("the mote panic must resurface");
        std::panic::set_hook(prev);
        let msg = err.downcast_ref::<String>().cloned().expect("panic message is a string");
        assert!(msg.contains("mote 1 panicked in parallel window ["), "{msg}");
        assert!(msg.contains("the backend blew up"), "{msg}");
    }

    #[test]
    fn zero_latency_media_fall_back_to_sequential() {
        let mut seq = pinger_world(Radio::ideal(0));
        let mut par = pinger_world(Radio::ideal(0));
        seq.run_until(10_000);
        par.run_until_parallel(10_000, 4);
        assert_eq!(observe(&seq), observe(&par));
    }

    #[test]
    fn led_history_records_on_times() {
        let mut leds = Leds::default();
        leds.toggle(5, 1);
        leds.toggle(10, 1);
        leds.toggle(15, 1);
        assert_eq!(leds.on_times(1), vec![5, 15]);
    }

    /// Pings like `Pinger` but deliberately fails its "machine" during
    /// the first timer callback at/after `fail_at` (one-shot: a reboot
    /// more than 1 ms later does not re-trigger it).
    struct FlakyPinger {
        peer: MoteId,
        fail_at: u64,
    }

    impl Backend for FlakyPinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn deliver(&mut self, ctx: &mut MoteCtx, _p: Packet) {
            ctx.leds.toggle(ctx.now, 0);
        }
        fn timer(&mut self, ctx: &mut MoteCtx) {
            if ctx.now >= self.fail_at && ctx.now < self.fail_at + 1_000 {
                let e = RuntimeError::new(Span::default(), "sensor read of nothing");
                ctx.fail(CrashCause::from_error(&e));
                return;
            }
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, 1));
            ctx.set_timer_at(ctx.now + 1_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }

    #[test]
    fn set_mote_down_validates_ids() {
        let mut w = World::new(Radio::ideal(10));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        assert!(w.set_mote_down(0, true).is_ok());
        assert!(w.radio.is_down(0));
        let err = w.set_mote_down(5, true).unwrap_err();
        assert!(err.contains("mote 5"), "{err}");
        assert!(!w.radio.is_down(5), "rejected ids must not grow the down set");
    }

    #[test]
    fn fault_plans_reject_unknown_motes() {
        let mut w = World::new(Radio::ideal(10));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        let plan = FaultPlan::new().at(5, FaultAction::Crash { mote: 3 });
        assert!(w.set_fault_plan(&plan).unwrap_err().contains("mote 3"));
    }

    #[test]
    fn in_flight_packets_drop_when_the_destination_crashes() {
        // pings every ms with 1 ms latency; crashing mote 1 at 1.5 ms
        // catches exactly one packet (sent at 1 ms, due at 2 ms) mid-air
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(&FaultPlan::new().at(1_500, FaultAction::Crash { mote: 1 })).unwrap();
        w.boot();
        w.run_until(10_000);
        assert_eq!(w.stats.dropped_in_flight, 1);
        assert_eq!(w.mote_stats(1).dropped_in_flight, 1);
        assert_eq!(w.radio.stats.dropped_in_flight, 1);
        assert!(!w.mote_status(1).is_up());
        assert_eq!(w.mote_stats(1).crashes, 1);
        // later pings toward the downed mote die at the radio instead
        assert!(w.radio.stats.dropped_link > 0);
    }

    #[test]
    fn crashed_motes_reboot_and_reconverge() {
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(
            &FaultPlan::new().at(5_500, FaultAction::Reboot { mote: 1, delay_us: 3_000 }),
        )
        .unwrap();
        w.boot();
        w.run_until(30_000);
        assert!(w.mote_status(1).is_up(), "rebooted");
        assert_eq!(w.mote_stats(1).crashes, 1);
        assert_eq!(w.mote_stats(1).reboots, 1);
        // traffic resumed after the reboot: mote 0 kept receiving pings
        // well past the outage window
        let received_after = w.leds(0).history.iter().filter(|(t, _, _)| *t > 12_000).count();
        assert!(received_after > 0, "mote 1's pings resumed after its reboot");
    }

    #[test]
    fn machine_failures_crash_the_mote_not_the_process() {
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 4_000 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.enable_trace();
        w.boot();
        w.run_until(10_000);
        match w.mote_status(0) {
            MoteStatus::Crashed { at, cause } => {
                assert_eq!(*at, 4_000);
                assert_eq!(cause.kind, CrashKind::RuntimeError);
                assert!(cause.message.contains("sensor read of nothing"));
            }
            MoteStatus::Up => panic!("mote 0 should have crashed"),
        }
        // the crash is visible in the world trace
        let trace = w.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.mote == 0 && matches!(e.event, TraceEvent::MoteCrashed { .. })));
        // RebootPolicy::Never: it stays down
        assert_eq!(w.mote_stats(0).reboots, 0);
    }

    #[test]
    fn reboot_policy_revives_machine_crashes() {
        let mut w = World::new(Radio::ideal(1_000));
        w.set_reboot_policy(RebootPolicy::After(2_000));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 4_000 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.boot();
        w.run_until(20_000);
        assert!(w.mote_status(0).is_up());
        assert_eq!(w.mote_stats(0).crashes, 1);
        assert_eq!(w.mote_stats(0).reboots, 1);
    }

    fn chaotic_world(radio: Radio) -> World {
        let mut w = World::new(radio);
        w.enable_trace();
        w.set_reboot_policy(RebootPolicy::After(2_500));
        w.add_mote(Box::new(FlakyPinger { peer: 1, fail_at: 7_300 }));
        for peer in [2, 3, 0] {
            w.add_mote(Box::new(TracingPinger { peer }));
        }
        let plan = FaultPlan::new()
            .at(3_200, FaultAction::ClockSkew { mote: 2, ppm: 300 })
            .at(
                5_100,
                FaultAction::Partition {
                    group_a: vec![0, 1],
                    group_b: vec![2, 3],
                    until_us: 9_000,
                },
            )
            .at(10_400, FaultAction::Reboot { mote: 3, delay_us: 2_000 })
            .at(12_000, FaultAction::LossBurst { from: 1, to: 2, rate: 0.6, until_us: 20_000 })
            .at(15_000, FaultAction::DropInFlight { mote: 2 })
            .at(21_000, FaultAction::Heal);
        w.set_fault_plan(&plan).unwrap();
        w.boot();
        w
    }

    #[test]
    fn fault_injection_is_thread_count_invariant() {
        // the acceptance property: under a plan mixing crashes, reboots,
        // partitions, skew, bursts and in-flight drops — on a lossy
        // medium, with a machine crash mid-run — the world trace and all
        // counters are bit-identical at any thread count
        let radio = || Radio::new(crate::radio::Topology::Full, 700, 0.2, 13);
        let mut seq = chaotic_world(radio());
        seq.run_until(40_000);
        let seq_obs = observe(&seq);
        let seq_trace = seq.take_trace();
        assert!(
            seq_trace.iter().any(|e| matches!(e.event, TraceEvent::MoteCrashed { .. })),
            "somebody must crash for this test to bite"
        );
        assert!(
            seq_trace.iter().any(|e| matches!(e.event, TraceEvent::MoteRebooted { .. })),
            "somebody must reboot for this test to bite"
        );
        for threads in [2, 4] {
            let mut par = chaotic_world(radio());
            par.run_until_parallel(40_000, threads);
            assert_eq!(seq_obs, observe(&par), "threads={threads}");
            assert_eq!(seq_trace, par.take_trace(), "threads={threads}");
        }
    }

    #[test]
    fn clock_skew_stretches_timers_deterministically() {
        // +100000 ppm (10% fast): the mote's local 1 ms period spans only
        // ~0.91 ms of world time, so it fires more timers over the run
        let run = |ppm: i64| {
            let mut w = World::new(Radio::ideal(1_000));
            w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
            w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
            if ppm != 0 {
                w.set_fault_plan(&FaultPlan::new().at(0, FaultAction::ClockSkew { mote: 0, ppm }))
                    .unwrap();
            }
            w.boot();
            w.run_until(50_000);
            w.mote_stats(0).timer_firings
        };
        let straight = run(0);
        let fast = run(100_000);
        assert!(fast > straight, "skewed {fast} vs straight {straight}");
        assert_eq!(fast, run(100_000), "and it is reproducible");
    }

    #[test]
    fn unskew_always_reaches_the_local_deadline() {
        // regression: the plain floor inverse could return a world time
        // whose local view was still short of the deadline (+500 ppm,
        // local 3000 → world 2998, skewed back to only 2999), so the
        // timer gate never fired and the mote re-armed the identical
        // request at the same instant forever
        for &ppm in &[500i64, -400, 300, 777, -777, 100_000, -100_000, 999_999, -999_999] {
            for local in (0..5_000u64).chain([123_456, 10_000_000]) {
                let w = unskew(local, ppm);
                assert!(skewed(w, ppm) >= local, "ppm={ppm} local={local} w={w}");
            }
        }
    }

    #[test]
    fn positive_skew_cannot_livelock_timers() {
        // end-to-end form of the regression above: +500 ppm used to spin
        // at a fixed virtual time instead of reaching the deadline
        let mut w = World::new(Radio::ideal(1_000));
        w.add_mote(Box::new(Pinger { peer: 1, received: 0 }));
        w.add_mote(Box::new(Pinger { peer: 0, received: 0 }));
        w.set_fault_plan(&FaultPlan::new().at(0, FaultAction::ClockSkew { mote: 0, ppm: 500 }))
            .unwrap();
        w.boot();
        w.run_until(50_000);
        assert!(w.mote_stats(0).timer_firings > 40, "the skewed mote must keep ticking");
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut w = World::new(Radio::ideal(0));
        struct Recorder {
            seen: std::sync::Arc<std::sync::Mutex<Vec<u64>>>,
        }
        impl Backend for Recorder {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(500);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, ctx: &mut MoteCtx) {
                self.seen.lock().unwrap().push(ctx.now);
                if ctx.now < 2_000 {
                    ctx.set_timer_at(ctx.now + 500);
                }
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        let seen = std::sync::Arc::new(std::sync::Mutex::new(vec![]));
        w.add_mote(Box::new(Recorder { seen: seen.clone() }));
        w.boot();
        w.run_until(3_000);
        assert_eq!(*seen.lock().unwrap(), vec![500, 1000, 1500, 2000]);
    }
}

//! Parallel-scheduler introspection: per-window stall attribution for
//! [`World::run_until_parallel`](crate::world::World::run_until_parallel).
//!
//! The conservative-PDES stepper advances in lookahead-wide windows:
//! drain the heap into per-mote batches (serial), step the batches on
//! worker threads (parallel), then merge cross-window effects back
//! deterministically (serial). Nothing in that loop used to say *where
//! the wall-clock goes* — which is why BENCH_PR4.json could record a
//! 0.99× "speedup" at 2 threads with no further diagnosis. This module
//! is the instrument panel: when enabled, every window records its span,
//! lookahead, per-worker busy time, merge/drain durations, heap traffic
//! and cross-window send volume into a preallocated collector (zero cost
//! when disabled, bounded memory when enabled), and the whole run can be
//! emitted as the stable JSONL schema **`ceu-par-stats/v2`** for
//! `ceu-trace par-report` and the Perfetto worker-track export.
//!
//! v2 extends v1 **additively** for the sharded scheduler: the run line
//! gains `shards`, per-shard aggregate lines (`kind:"shard"`: mote count,
//! events, busy time, cross-shard sends, channel-wait) follow the run
//! line, and each window line carries its `(shard, worker, busy, events)`
//! placement. Every v1 field keeps its name and meaning; `ceu-trace`
//! reads both versions.
//!
//! ## Stall attribution
//!
//! Wall time is accounted in *thread-time*: a run at `threads = T` has a
//! capacity of `T × wall` nanoseconds, and every window splits its slice
//! of that capacity exactly (integer arithmetic, no residue) into:
//!
//! * **busy** — workers actually stepping motes (`Σ busy_w`);
//! * **imbalance** — active workers waiting on the slowest one
//!   (`workers × max(busy) − Σ busy`);
//! * **lookahead** — threads with *no batch at all* this window because
//!   the lookahead-clipped window held too few motes with events
//!   (`(T − workers) × max(busy)`);
//! * **barrier** — scoped-thread spawn/join overhead around the parallel
//!   phase (`T × (par − max(busy))`);
//! * **merge** — the serial deterministic merge plus the serial heap
//!   drain that brackets every window (`T × (merge + drain)`).
//!
//! The five categories sum to `T × (drain + par + merge)`, the window's
//! wall-clock, by construction — the invariant
//! [`ParWindowStats::attribution`] documents and the tier-1 tests pin.

use std::io::Write;

/// Upper bound on fully-detailed windows kept per [`ParStats`] (the
/// aggregate totals keep counting past it). Bounds enabled-mode memory:
/// a week-long soak cannot OOM the collector.
pub const DEFAULT_WINDOW_CAP: usize = 65_536;

/// Per-window sample cap for cross-window sends (the Perfetto flow-arrow
/// source material); the full count is always in `cross_sends`.
pub const SEND_SAMPLE_CAP: usize = 32;

/// One parallel window, fully attributed. All durations are host
/// nanoseconds; all times suffixed `_us` are virtual microseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParWindowStats {
    /// Window index within the run (0-based).
    pub index: u64,
    /// Host-clock offset of the window start since the run began (ns).
    pub t_wall_ns: u64,
    /// Virtual span: `[start_us, end_us)`.
    pub start_us: u64,
    pub end_us: u64,
    /// The lookahead the stepper computed for this window (today: the
    /// global minimum radio latency — the conservative fallback).
    pub lookahead_us: u64,
    /// The window was clipped short of `start + lookahead` by a pending
    /// world event (fault/reboot barrier) or the run deadline.
    pub clipped: bool,
    /// Requested thread count for the run.
    pub threads: u32,
    /// Workers actually spawned (`min(threads, motes with events)`).
    pub workers: u32,
    /// Motes checked out and stepped this window.
    pub motes: u32,
    /// Events fired inside the window (incl. locally scheduled ones).
    pub events: u64,
    /// Per-worker busy nanoseconds (length = `workers`).
    pub busy_ns: Vec<u64>,
    /// Per-worker events stepped (length = `workers`).
    pub events_per_worker: Vec<u64>,
    /// Per-worker motes stepped (length = `workers`).
    pub motes_per_worker: Vec<u32>,
    /// Serial heap-drain/batching phase (ns).
    pub drain_ns: u64,
    /// Parallel phase wall: scoped-thread spawn → join (ns).
    pub par_ns: u64,
    /// Serial deterministic-merge phase (ns).
    pub merge_ns: u64,
    /// Heap pushes/pops attributed to this window (drain + merge).
    pub heap_pushes: u64,
    pub heap_pops: u64,
    /// Packets emitted inside the window and routed at the merge.
    pub cross_sends: u64,
    /// Bounded sample of those sends as `(emit_us, from, to)` — the
    /// Perfetto exporter draws flow arrows from these.
    pub send_sample: Vec<(u64, u32, u32)>,
    /// Where each shard ran this window: `(shard, worker, busy_ns,
    /// events)`, one entry per shard that had work. The Perfetto exporter
    /// turns these into per-shard tracks; `par-report` reads imbalance
    /// from them.
    pub shard_busy: Vec<(u32, u32, u64, u64)>,
}

/// The exact thread-time split of one window (see the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    pub busy_ns: u64,
    pub imbalance_ns: u64,
    pub lookahead_ns: u64,
    pub barrier_ns: u64,
    pub merge_ns: u64,
}

impl Attribution {
    /// Total thread-time covered (equals `threads × window wall`).
    pub fn total_ns(&self) -> u64 {
        self.busy_ns + self.imbalance_ns + self.lookahead_ns + self.barrier_ns + self.merge_ns
    }

    /// The largest stall category (busy excluded) as `(name, ns)`;
    /// `("none", 0)` when no stall time was recorded. The names match the
    /// `ceu-trace par-report` table rows.
    pub fn dominant_stall(&self) -> (&'static str, u64) {
        let rows = [
            ("imbalance-bound", self.imbalance_ns),
            ("lookahead-bound", self.lookahead_ns),
            ("barrier-bound", self.barrier_ns),
            ("merge-bound", self.merge_ns),
        ];
        let best = rows.into_iter().max_by_key(|&(_, ns)| ns).unwrap_or(("none", 0));
        if best.1 == 0 {
            ("none", 0)
        } else {
            best
        }
    }

    fn add(&mut self, other: &Attribution) {
        self.busy_ns += other.busy_ns;
        self.imbalance_ns += other.imbalance_ns;
        self.lookahead_ns += other.lookahead_ns;
        self.barrier_ns += other.barrier_ns;
        self.merge_ns += other.merge_ns;
    }
}

impl ParWindowStats {
    /// Host wall-clock of the window: serial drain + parallel phase +
    /// serial merge.
    pub fn wall_ns(&self) -> u64 {
        self.drain_ns + self.par_ns + self.merge_ns
    }

    /// Splits `threads × wall_ns` exactly into the five stall categories
    /// (the sum is an identity, not a measurement — tested as such).
    pub fn attribution(&self) -> Attribution {
        let t = self.threads as u64;
        let busy: u64 = self.busy_ns.iter().sum();
        let max_busy = self.busy_ns.iter().copied().max().unwrap_or(0);
        let workers = self.workers as u64;
        // par_ns brackets every worker's busy interval, so this cannot
        // underflow — but a saturating_sub keeps a clock hiccup from
        // panicking an instrumentation path.
        let barrier = t * self.par_ns.saturating_sub(max_busy);
        Attribution {
            busy_ns: busy,
            imbalance_ns: (workers * max_busy).saturating_sub(busy),
            lookahead_ns: (t - workers.min(t)) * max_busy,
            barrier_ns: barrier,
            merge_ns: t * (self.merge_ns + self.drain_ns),
        }
    }
}

/// Aggregate counters over *all* windows, including the ones past the
/// detailed-window cap.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParTotals {
    pub windows: u64,
    pub events: u64,
    pub motes_stepped: u64,
    pub cross_sends: u64,
    pub heap_pushes: u64,
    pub heap_pops: u64,
    /// Σ drain / par / merge over all windows (ns).
    pub drain_ns: u64,
    pub par_ns: u64,
    pub merge_ns: u64,
    /// Σ max-over-workers busy per window: the critical chain through
    /// the parallel phases (ns) — the floor any thread count must walk.
    pub critical_busy_ns: u64,
    pub attribution: Attribution,
}

/// Lifetime aggregates for one shard across every recorded window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ParShardStats {
    pub shard: u32,
    /// Motes the shard held (last observed — resharding may change it).
    pub motes: u32,
    /// Windows in which this shard had work.
    pub windows: u64,
    /// Events the shard fired across those windows.
    pub events: u64,
    /// Wall time workers spent stepping this shard (ns).
    pub busy_ns: u64,
    /// Packets the shard emitted for the merge barrier to route (every
    /// send is merge-routed, local destinations included).
    pub cross_sends: u64,
    /// This shard's share of job-channel wait (its batch's send-to-pickup
    /// latency divided evenly over the batch's shards; ns).
    pub channel_wait_ns: u64,
}

/// A whole `run_until_parallel` call (or several — the collector keeps
/// accumulating until [`World::take_par_stats`](crate::world::World::take_par_stats)).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParStats {
    /// Requested thread count of the (last) run.
    pub threads: u32,
    /// The global-min lookahead of the (last) run (µs).
    pub lookahead_us: u64,
    /// Mote roster size.
    pub motes: u32,
    /// Shard count of the (last) run's plan.
    pub shards: u32,
    /// The run fell back to the sequential stepper (threads ≤ 1, zero
    /// lookahead, or a ≤1-mote world) — no windows were recorded.
    pub fallback: bool,
    /// Host wall-clock of the whole `run_until_parallel` call(s) (ns),
    /// including world-event barriers between windows.
    pub wall_ns: u64,
    /// Detailed windows (capped; see `dropped_windows`).
    pub windows: Vec<ParWindowStats>,
    /// Windows past the cap: counted in `totals`, details discarded.
    pub dropped_windows: u64,
    pub totals: ParTotals,
    /// Per-shard lifetime aggregates, indexed by shard id (never capped:
    /// one small row per shard, not per window).
    pub per_shard: Vec<ParShardStats>,
    pub(crate) cap: usize,
}

impl ParStats {
    pub fn new(cap: usize) -> Self {
        ParStats { cap, ..Default::default() }
    }

    /// Folds one finished window into the collector.
    pub(crate) fn record_window(&mut self, w: ParWindowStats) {
        let a = w.attribution();
        self.totals.windows += 1;
        self.totals.events += w.events;
        self.totals.motes_stepped += w.motes as u64;
        self.totals.cross_sends += w.cross_sends;
        self.totals.heap_pushes += w.heap_pushes;
        self.totals.heap_pops += w.heap_pops;
        self.totals.drain_ns += w.drain_ns;
        self.totals.par_ns += w.par_ns;
        self.totals.merge_ns += w.merge_ns;
        self.totals.critical_busy_ns += w.busy_ns.iter().copied().max().unwrap_or(0);
        self.totals.attribution.add(&a);
        if self.windows.len() < self.cap {
            self.windows.push(w);
        } else {
            self.dropped_windows += 1;
        }
    }

    /// Folds one shard's slice of one window into its lifetime row.
    pub(crate) fn record_shard(
        &mut self,
        shard: u32,
        motes: u32,
        events: u64,
        busy_ns: u64,
        cross_sends: u64,
        channel_wait_ns: u64,
    ) {
        let idx = shard as usize;
        if self.per_shard.len() <= idx {
            self.per_shard.resize_with(idx + 1, ParShardStats::default);
        }
        let row = &mut self.per_shard[idx];
        row.shard = shard;
        row.motes = motes;
        row.windows += 1;
        row.events += events;
        row.busy_ns += busy_ns;
        row.cross_sends += cross_sends;
        row.channel_wait_ns += channel_wait_ns;
    }

    /// Host wall-clock attributed to windows (ns). The remainder of
    /// `wall_ns` is inter-window bookkeeping (world-event barriers).
    pub fn window_wall_ns(&self) -> u64 {
        self.totals.drain_ns + self.totals.par_ns + self.totals.merge_ns
    }

    /// Worker utilization: busy thread-time over total thread-time
    /// capacity, in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        let cap = self.threads as u64 * self.wall_ns;
        if cap == 0 {
            return 0.0;
        }
        self.totals.attribution.busy_ns as f64 / cap as f64
    }

    /// Work/critical-path bound on achievable speedup for this workload
    /// at any thread count: `(Σ busy + serial) / (critical chain + serial)`,
    /// where serial = drain + merge. An upper bound for the *current*
    /// window structure — a reworked scheduler can beat it by changing
    /// the windows themselves.
    pub fn achievable_speedup(&self) -> f64 {
        let serial = self.totals.drain_ns + self.totals.merge_ns;
        let work = self.totals.attribution.busy_ns + serial;
        let critical = self.totals.critical_busy_ns + serial;
        if critical == 0 {
            return 1.0;
        }
        work as f64 / critical as f64
    }
}

// ---- ceu-par-stats/v2 JSONL -------------------------------------------------

fn u64_list(vals: impl Iterator<Item = u64>) -> String {
    let mut s = String::from("[");
    for (i, v) in vals.enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&v.to_string());
    }
    s.push(']');
    s
}

/// One `kind:"run"` JSONL line: the run header + aggregate attribution.
pub fn run_to_json(s: &ParStats) -> String {
    let a = &s.totals.attribution;
    format!(
        concat!(
            "{{\"schema\":\"ceu-par-stats/v2\",\"kind\":\"run\",",
            "\"threads\":{},\"lookahead_us\":{},\"motes\":{},\"shards\":{},\"fallback\":{},",
            "\"wall_ns\":{},\"window_wall_ns\":{},\"windows\":{},\"dropped_windows\":{},",
            "\"events\":{},\"motes_stepped\":{},\"cross_sends\":{},",
            "\"heap_pushes\":{},\"heap_pops\":{},",
            "\"busy_ns\":{},\"imbalance_ns\":{},\"lookahead_ns\":{},",
            "\"barrier_ns\":{},\"merge_ns\":{},\"critical_busy_ns\":{},",
            "\"drain_wall_ns\":{},\"par_wall_ns\":{},\"merge_wall_ns\":{}}}"
        ),
        s.threads,
        s.lookahead_us,
        s.motes,
        s.shards,
        s.fallback,
        s.wall_ns,
        s.window_wall_ns(),
        s.totals.windows,
        s.dropped_windows,
        s.totals.events,
        s.totals.motes_stepped,
        s.totals.cross_sends,
        s.totals.heap_pushes,
        s.totals.heap_pops,
        a.busy_ns,
        a.imbalance_ns,
        a.lookahead_ns,
        a.barrier_ns,
        a.merge_ns,
        s.totals.critical_busy_ns,
        s.totals.drain_ns,
        s.totals.par_ns,
        s.totals.merge_ns,
    )
}

/// One `kind:"shard"` JSONL line: a shard's lifetime aggregates.
pub fn shard_to_json(s: &ParShardStats) -> String {
    format!(
        concat!(
            "{{\"schema\":\"ceu-par-stats/v2\",\"kind\":\"shard\",\"shard\":{},",
            "\"motes\":{},\"windows\":{},\"events\":{},\"busy_ns\":{},",
            "\"cross_sends\":{},\"channel_wait_ns\":{}}}"
        ),
        s.shard, s.motes, s.windows, s.events, s.busy_ns, s.cross_sends, s.channel_wait_ns,
    )
}

/// One `kind:"window"` JSONL line.
pub fn window_to_json(w: &ParWindowStats) -> String {
    let sends = {
        let mut s = String::from("[");
        for (i, (at, from, to)) in w.send_sample.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("{{\"at_us\":{at},\"from\":{from},\"to\":{to}}}"));
        }
        s.push(']');
        s
    };
    let shard_busy = {
        let mut s = String::from("[");
        for (i, (shard, worker, busy, events)) in w.shard_busy.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"shard\":{shard},\"worker\":{worker},\"busy_ns\":{busy},\"events\":{events}}}"
            ));
        }
        s.push(']');
        s
    };
    format!(
        concat!(
            "{{\"schema\":\"ceu-par-stats/v2\",\"kind\":\"window\",\"i\":{},",
            "\"t_wall_ns\":{},\"start_us\":{},\"end_us\":{},\"lookahead_us\":{},",
            "\"clipped\":{},\"threads\":{},\"workers\":{},\"motes\":{},\"events\":{},",
            "\"busy_ns\":{},\"events_per_worker\":{},\"motes_per_worker\":{},",
            "\"drain_ns\":{},\"par_ns\":{},\"merge_ns\":{},\"wall_ns\":{},",
            "\"heap_pushes\":{},\"heap_pops\":{},\"cross_sends\":{},\"sends\":{},",
            "\"shard_busy\":{}}}"
        ),
        w.index,
        w.t_wall_ns,
        w.start_us,
        w.end_us,
        w.lookahead_us,
        w.clipped,
        w.threads,
        w.workers,
        w.motes,
        w.events,
        u64_list(w.busy_ns.iter().copied()),
        u64_list(w.events_per_worker.iter().copied()),
        u64_list(w.motes_per_worker.iter().map(|&m| m as u64)),
        w.drain_ns,
        w.par_ns,
        w.merge_ns,
        w.wall_ns(),
        w.heap_pushes,
        w.heap_pops,
        w.cross_sends,
        sends,
        shard_busy,
    )
}

/// Writes a whole run as `ceu-par-stats/v2` JSONL: the `run` line first,
/// then one `shard` line per shard, then one `window` line per detailed
/// window.
pub fn write_par_stats_jsonl<W: Write>(stats: &ParStats, mut out: W) -> std::io::Result<()> {
    writeln!(out, "{}", run_to_json(stats))?;
    for s in &stats.per_shard {
        writeln!(out, "{}", shard_to_json(s))?;
    }
    for w in &stats.windows {
        writeln!(out, "{}", window_to_json(w))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_window() -> ParWindowStats {
        ParWindowStats {
            index: 3,
            t_wall_ns: 10_000,
            start_us: 2_000,
            end_us: 2_700,
            lookahead_us: 700,
            clipped: false,
            threads: 4,
            workers: 2,
            motes: 3,
            events: 9,
            busy_ns: vec![900, 400],
            events_per_worker: vec![6, 3],
            motes_per_worker: vec![2, 1],
            drain_ns: 150,
            par_ns: 1_200,
            merge_ns: 250,
            heap_pushes: 4,
            heap_pops: 9,
            cross_sends: 3,
            send_sample: vec![(2_100, 0, 1)],
            shard_busy: vec![(0, 0, 900, 6), (2, 1, 400, 3)],
        }
    }

    #[test]
    fn attribution_is_an_exact_partition_of_thread_time() {
        let w = sample_window();
        let a = w.attribution();
        // busy = 1300; imbalance = 2*900-1300 = 500; lookahead = 2*900;
        // barrier = 4*(1200-900); merge = 4*(250+150)
        assert_eq!(a.busy_ns, 1_300);
        assert_eq!(a.imbalance_ns, 500);
        assert_eq!(a.lookahead_ns, 1_800);
        assert_eq!(a.barrier_ns, 1_200);
        assert_eq!(a.merge_ns, 1_600);
        assert_eq!(a.total_ns(), w.threads as u64 * w.wall_ns());
    }

    #[test]
    fn collector_caps_detailed_windows_but_keeps_totals() {
        let mut s = ParStats::new(2);
        s.threads = 4;
        for i in 0..5 {
            let mut w = sample_window();
            w.index = i;
            s.record_window(w);
        }
        assert_eq!(s.windows.len(), 2);
        assert_eq!(s.dropped_windows, 3);
        assert_eq!(s.totals.windows, 5);
        assert_eq!(s.totals.events, 45);
        assert_eq!(s.totals.critical_busy_ns, 5 * 900);
        let w = sample_window();
        assert_eq!(s.totals.attribution.total_ns(), 5 * 4 * w.wall_ns());
    }

    #[test]
    fn jsonl_lines_carry_the_stable_schema() {
        let mut s = ParStats::new(DEFAULT_WINDOW_CAP);
        s.threads = 4;
        s.lookahead_us = 700;
        s.motes = 3;
        s.shards = 2;
        s.wall_ns = 5_000;
        s.record_shard(0, 2, 6, 900, 2, 50);
        s.record_shard(2, 1, 3, 400, 1, 50);
        s.record_window(sample_window());
        let mut buf = Vec::new();
        write_par_stats_jsonl(&s, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5, "run + 3 shard rows (ids 0..=2) + window");
        for line in &lines {
            let v: serde_json::Value = serde_json::from_str(line).expect("valid JSON");
            assert_eq!(v["schema"].as_str(), Some("ceu-par-stats/v2"));
        }
        let run: serde_json::Value = serde_json::from_str(lines[0]).unwrap();
        for key in [
            "kind",
            "threads",
            "lookahead_us",
            "shards",
            "fallback",
            "wall_ns",
            "windows",
            "busy_ns",
            "imbalance_ns",
            "lookahead_ns",
            "barrier_ns",
            "merge_ns",
            "critical_busy_ns",
        ] {
            assert!(run.get(key).is_some(), "run record lost key {key}");
        }
        let shard: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        assert_eq!(shard["kind"].as_str(), Some("shard"));
        for key in
            ["shard", "motes", "windows", "events", "busy_ns", "cross_sends", "channel_wait_ns"]
        {
            assert!(shard.get(key).is_some(), "shard record lost key {key}");
        }
        let win: serde_json::Value = serde_json::from_str(lines[4]).unwrap();
        for key in
            ["start_us", "end_us", "busy_ns", "drain_ns", "par_ns", "merge_ns", "sends", "workers"]
        {
            assert!(win.get(key).is_some(), "window record lost key {key}");
        }
        assert_eq!(win["busy_ns"].as_array().unwrap().len(), 2);
        let sb = win["shard_busy"].as_array().unwrap();
        assert_eq!(sb.len(), 2);
        assert_eq!(sb[1]["shard"].as_u64(), Some(2));
        assert_eq!(sb[1]["worker"].as_u64(), Some(1));
    }

    #[test]
    fn shard_rows_accumulate_across_windows() {
        let mut s = ParStats::new(4);
        s.record_shard(1, 3, 10, 500, 4, 20);
        s.record_shard(1, 3, 8, 300, 2, 30);
        assert_eq!(s.per_shard.len(), 2);
        let row = s.per_shard[1];
        assert_eq!(row.shard, 1);
        assert_eq!(row.motes, 3);
        assert_eq!(row.windows, 2);
        assert_eq!(row.events, 18);
        assert_eq!(row.busy_ns, 800);
        assert_eq!(row.cross_sends, 6);
        assert_eq!(row.channel_wait_ns, 50);
        // the gap row (shard 0) stays zeroed and harmless
        assert_eq!(s.per_shard[0].windows, 0);
    }

    #[test]
    fn utilization_and_speedup_estimates() {
        let mut s = ParStats::new(8);
        s.threads = 2;
        s.wall_ns = 4_000;
        let w = ParWindowStats {
            threads: 2,
            workers: 2,
            busy_ns: vec![1_000, 1_000],
            drain_ns: 0,
            par_ns: 1_000,
            merge_ns: 1_000,
            ..Default::default()
        };
        s.record_window(w);
        // busy 2000 of 2*4000 capacity
        assert!((s.utilization() - 0.25).abs() < 1e-9);
        // work = 2000 + 1000 serial; critical = 1000 + 1000 serial
        assert!((s.achievable_speedup() - 1.5).abs() < 1e-9);
    }
}

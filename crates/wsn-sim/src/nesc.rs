//! nesC-analog event-driven applications — the Table-1 baselines.
//!
//! The paper ports four preexisting nesC applications to Céu and compares
//! memory usage. We reproduce the setup with the same four applications:
//!
//! * **Blink** — three timers toggle three leds (TinyOS's hello world);
//! * **Sense** — periodic sensor sampling displayed on the leds;
//! * **Client** — periodically broadcasts a counter and displays received
//!   counters (RadioCountToLeds-style);
//! * **Server** — answers each request with a processed reply.
//!
//! Each application exists twice: as a runnable event-driven [`Backend`]
//! (split-phase callbacks, manual state machines — the programming model
//! nesC imposes) and as its `nesC`-style source text. The source text is
//! the ROM-analog measurement surface; the explicit state structs are the
//! RAM-analog (16-bit target accounting). The Céu counterparts live in
//! `ceu-bench` and are measured with the same yardstick (generated C bytes
//! / static state bytes).

use crate::radio::Packet;
use crate::world::{Backend, MoteCtx};

/// RAM accounting helper: logical bytes of each field on the 16-bit target.
pub trait NescApp: Backend {
    fn nesc_source(&self) -> &'static str;
    fn ram_bytes(&self) -> u32;
}

// ---- Blink -------------------------------------------------------------------

/// Three independent periods toggling three leds.
pub struct Blink {
    /// Next deadline per virtual timer.
    next: [u64; 3],
    periods: [u64; 3],
}

impl Blink {
    pub fn new() -> Self {
        Blink { next: [0; 3], periods: [250_000, 500_000, 1_000_000] }
    }
}

impl Default for Blink {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for Blink {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        for i in 0..3 {
            self.next[i] = ctx.now + self.periods[i];
            ctx.set_timer_at(self.next[i]);
        }
    }
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, ctx: &mut MoteCtx) {
        for i in 0..3 {
            if self.next[i] <= ctx.now {
                ctx.leds.toggle(ctx.now, i as u8);
                self.next[i] += self.periods[i];
            }
            ctx.set_timer_at(self.next[i]);
        }
    }
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

impl NescApp for Blink {
    fn nesc_source(&self) -> &'static str {
        BLINK_NESC
    }
    fn ram_bytes(&self) -> u32 {
        // three 32-bit deadlines + three 32-bit periods
        3 * 4 + 3 * 4
    }
}

pub const BLINK_NESC: &str = r#"
module BlinkC @safe() {
  uses interface Timer<TMilli> as Timer0;
  uses interface Timer<TMilli> as Timer1;
  uses interface Timer<TMilli> as Timer2;
  uses interface Leds;
  uses interface Boot;
}
implementation {
  event void Boot.booted() {
    call Timer0.startPeriodic(250);
    call Timer1.startPeriodic(500);
    call Timer2.startPeriodic(1000);
  }
  event void Timer0.fired() { call Leds.led0Toggle(); }
  event void Timer1.fired() { call Leds.led1Toggle(); }
  event void Timer2.fired() { call Leds.led2Toggle(); }
}
"#;

// ---- Sense -------------------------------------------------------------------

/// Samples a (synthetic) sensor every 100ms, split-phase, and shows the
/// low bits on the leds.
pub struct Sense {
    next: u64,
    reading: u16,
    /// split-phase flag: a read was requested, readDone pending
    pending: bool,
    samples: u32,
}

impl Sense {
    pub fn new() -> Self {
        Sense { next: 0, reading: 0, pending: false, samples: 0 }
    }

    /// The synthetic photo sensor (deterministic waveform).
    fn sample(&self, now: u64) -> u16 {
        ((now / 1_000) % 1024) as u16
    }
}

impl Default for Sense {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for Sense {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.next = ctx.now + 100_000;
        ctx.set_timer_at(self.next);
    }
    fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
    fn timer(&mut self, ctx: &mut MoteCtx) {
        // split-phase: the timer requests the read; the "readDone" half
        // runs here immediately (the simulated ADC is instantaneous)
        if !self.pending {
            self.pending = true;
            self.reading = self.sample(ctx.now);
            self.pending = false;
            self.samples += 1;
            ctx.leds.set_mask(ctx.now, (self.reading & 0x7) as u8);
        }
        self.next += 100_000;
        ctx.set_timer_at(self.next);
    }
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

impl NescApp for Sense {
    fn nesc_source(&self) -> &'static str {
        SENSE_NESC
    }
    fn ram_bytes(&self) -> u32 {
        4 + 2 + 1 + 4 // next + reading + pending + samples
    }
}

pub const SENSE_NESC: &str = r#"
module SenseC {
  uses { interface Boot; interface Leds;
         interface Timer<TMilli>; interface Read<uint16_t>; }
}
implementation {
  #define SAMPLING_FREQUENCY 100
  event void Boot.booted() {
    call Timer.startPeriodic(SAMPLING_FREQUENCY);
  }
  event void Timer.fired() {
    call Read.read();
  }
  event void Read.readDone(error_t result, uint16_t data) {
    if (result == SUCCESS) {
      uint16_t val = data;
      call Leds.set(val & 0x7);
    }
  }
}
"#;

// ---- Client ------------------------------------------------------------------

/// Broadcasts an incrementing counter every 250ms and displays received
/// counters on the leds (RadioCountToLeds).
pub struct Client {
    counter: u16,
    next: u64,
    /// send-done pending flag (split-phase radio)
    locked: bool,
    peer: usize,
    pub received: u32,
}

impl Client {
    pub fn new(peer: usize) -> Self {
        Client { counter: 0, next: 0, locked: false, peer, received: 0 }
    }
}

impl Backend for Client {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        self.next = ctx.now + 250_000;
        ctx.set_timer_at(self.next);
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
        self.received += 1;
        ctx.leds.set_mask(ctx.now, (p.value() & 0x7) as u8);
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        self.counter += 1;
        if !self.locked {
            // sendDone is delivered instantly in the simulated stack
            self.locked = true;
            ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, self.counter as i64));
            self.locked = false;
        }
        self.next += 250_000;
        ctx.set_timer_at(self.next);
    }
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

impl NescApp for Client {
    fn nesc_source(&self) -> &'static str {
        CLIENT_NESC
    }
    fn ram_bytes(&self) -> u32 {
        2 + 4 + 1 + 2 + 4 + 29 // counter+next+locked+peer+received+message_t buffer
    }
}

pub const CLIENT_NESC: &str = r#"
module RadioCountToLedsC @safe() {
  uses { interface Leds; interface Boot;
         interface Receive; interface AMSend;
         interface Timer<TMilli> as MilliTimer;
         interface SplitControl as AMControl; interface Packet; }
}
implementation {
  message_t packet;
  bool locked;
  uint16_t counter = 0;

  event void Boot.booted() { call AMControl.start(); }
  event void AMControl.startDone(error_t err) {
    if (err == SUCCESS) call MilliTimer.startPeriodic(250);
    else call AMControl.start();
  }
  event void AMControl.stopDone(error_t err) {}
  event void MilliTimer.fired() {
    counter++;
    if (!locked) {
      radio_count_msg_t* rcm =
        (radio_count_msg_t*)call Packet.getPayload(&packet, sizeof(radio_count_msg_t));
      if (rcm == NULL) return;
      rcm->counter = counter;
      if (call AMSend.send(AM_BROADCAST_ADDR, &packet, sizeof(radio_count_msg_t)) == SUCCESS)
        locked = TRUE;
    }
  }
  event message_t* Receive.receive(message_t* bufPtr, void* payload, uint8_t len) {
    if (len == sizeof(radio_count_msg_t)) {
      radio_count_msg_t* rcm = (radio_count_msg_t*)payload;
      call Leds.set(rcm->counter & 0x7);
    }
    return bufPtr;
  }
  event void AMSend.sendDone(message_t* bufPtr, error_t error) {
    if (&packet == bufPtr) locked = FALSE;
  }
}
"#;

// ---- Server ------------------------------------------------------------------

/// Answers each incoming request with `2 * value + 1`, with a split-phase
/// busy flag and a one-deep request queue (BaseStation-style forwarding).
pub struct Server {
    locked: bool,
    queued: Option<Packet>,
    pub served: u32,
}

impl Server {
    pub fn new() -> Self {
        Server { locked: false, queued: None, served: 0 }
    }
}

impl Default for Server {
    fn default() -> Self {
        Self::new()
    }
}

impl Backend for Server {
    fn boot(&mut self, _: &mut MoteCtx) {}
    fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
        if self.locked {
            // one-deep queue, drop beyond it
            if self.queued.is_none() {
                self.queued = Some(p);
            }
            return;
        }
        self.locked = true;
        let reply = 2 * p.value() + 1;
        ctx.send(p.src, Packet::with_value(ctx.id, p.src, reply));
        self.served += 1;
        ctx.leds.set_mask(ctx.now, (reply & 0x7) as u8);
        self.locked = false;
        if let Some(q) = self.queued.take() {
            self.deliver(ctx, q);
        }
    }
    fn timer(&mut self, _: &mut MoteCtx) {}
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

impl NescApp for Server {
    fn nesc_source(&self) -> &'static str {
        SERVER_NESC
    }
    fn ram_bytes(&self) -> u32 {
        1 + 29 + 29 + 4 // locked + rx buffer + queued buffer + served
    }
}

pub const SERVER_NESC: &str = r#"
module ServerC @safe() {
  uses { interface Boot; interface Leds;
         interface Receive; interface AMSend;
         interface SplitControl as AMControl; interface Packet; }
}
implementation {
  message_t reply;
  message_t queued;
  bool locked, has_queued;

  event void Boot.booted() { call AMControl.start(); }
  event void AMControl.startDone(error_t err) {
    if (err != SUCCESS) call AMControl.start();
  }
  event void AMControl.stopDone(error_t err) {}

  void serve(message_t* m, void* payload, uint8_t len) {
    req_msg_t* req = (req_msg_t*)payload;
    rep_msg_t* rep =
      (rep_msg_t*)call Packet.getPayload(&reply, sizeof(rep_msg_t));
    if (rep == NULL) return;
    rep->value = 2 * req->value + 1;
    if (call AMSend.send(req->src, &reply, sizeof(rep_msg_t)) == SUCCESS) {
      locked = TRUE;
      call Leds.set(rep->value & 0x7);
    }
  }
  event message_t* Receive.receive(message_t* bufPtr, void* payload, uint8_t len) {
    if (locked) {
      if (!has_queued) { queued = *bufPtr; has_queued = TRUE; }
      return bufPtr;
    }
    serve(bufPtr, payload, len);
    return bufPtr;
  }
  event void AMSend.sendDone(message_t* bufPtr, error_t error) {
    locked = FALSE;
    if (has_queued) { has_queued = FALSE; serve(&queued, queued.data, 0); }
  }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;
    use crate::world::World;

    #[test]
    fn blink_toggles_three_leds_at_their_periods() {
        let mut w = World::new(Radio::ideal(0));
        w.add_mote(Box::new(Blink::new()));
        w.boot();
        w.run_until(1_000_000);
        assert_eq!(w.leds(0).on_times(0).len(), 2); // 250,(500),750,(1000)
        assert_eq!(w.leds(0).on_times(1).len(), 1); // 500,(1000)
        assert_eq!(w.leds(0).on_times(2).len(), 1); // 1000
    }

    #[test]
    fn sense_samples_periodically() {
        let mut w = World::new(Radio::ideal(0));
        w.add_mote(Box::new(Sense::new()));
        w.boot();
        w.run_until(1_050_000);
        assert!(!w.leds(0).history.is_empty());
    }

    #[test]
    fn client_server_round_trip() {
        let mut w = World::new(Radio::ideal(2_000));
        w.add_mote(Box::new(Client::new(1)));
        w.add_mote(Box::new(Server::new()));
        w.boot();
        w.run_until(2_000_000);
        // client sends at 250ms..2000ms = 8 requests; replies come back
        assert!(w.stats.delivered >= 14, "delivered {}", w.stats.delivered);
        assert!(!w.leds(0).history.is_empty(), "client shows replies");
    }

    #[test]
    fn sources_are_nontrivial_and_radio_apps_are_bigger() {
        // sanity for the ROM-analog: every source is substantial, and the
        // radio applications dwarf the timer-only ones (as in Table 1)
        for s in [BLINK_NESC, SENSE_NESC, CLIENT_NESC, SERVER_NESC] {
            assert!(s.len() > 300);
        }
        assert!(CLIENT_NESC.len() > BLINK_NESC.len() * 2);
        assert!(SERVER_NESC.len() > SENSE_NESC.len() * 2);
    }
}

//! MantisOS-analog: a preemptive multithreaded mote OS, simulated in
//! virtual time.
//!
//! Threads are cooperatively *written* (Rust cannot be preempted safely)
//! but *scheduled* preemptively in the model: each [`ThreadBody::step`]
//! call represents one scheduler quantum; the highest-priority ready
//! thread wins, ties rotate round-robin; `sleep` wakes at
//! `call-time + duration (+ wake-up latency)`, which is exactly the drift
//! source the paper's blink experiment demonstrates (§5): unlike Céu's
//! logical deadlines, a preempted thread re-arms its timer from whenever
//! it actually ran.
//!
//! The same scheduler hosts the occam-analog processes (message passing
//! via channels instead of shared state).

use crate::radio::Packet;
use crate::world::{Backend, MoteCtx};
use std::collections::VecDeque;

/// What a thread did with its quantum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Step {
    /// Used the CPU; wants to keep running.
    Run,
    /// Blocks for the given duration (µs), measured from *now* — the
    /// drift-accumulating sleep of preemptive systems.
    Sleep(u64),
    /// Blocks until a packet arrives in the mote mailbox.
    WaitRecv,
    /// Blocks until the given channel has a message.
    WaitChan(usize),
    /// Thread finished.
    Done,
}

/// Services available to a thread during its quantum.
pub struct ThreadCtx<'a> {
    pub now: u64,
    pub node_id: usize,
    /// Incoming radio mailbox (shared by all threads of the mote).
    pub mailbox: &'a mut VecDeque<Packet>,
    /// occam-analog channels (index-addressed).
    pub channels: &'a mut Vec<VecDeque<i64>>,
    /// Outgoing transmissions, flushed after the quantum.
    pub sends: Vec<(usize, Packet)>,
    /// LED mask writes and toggles, flushed after the quantum.
    pub led_sets: Vec<u8>,
    pub led_toggles: Vec<u8>,
}

impl ThreadCtx<'_> {
    pub fn send(&mut self, dst: usize, p: Packet) {
        self.sends.push((dst, p));
    }

    pub fn chan_send(&mut self, chan: usize, v: i64) {
        if self.channels.len() <= chan {
            self.channels.resize_with(chan + 1, VecDeque::new);
        }
        self.channels[chan].push_back(v);
    }

    pub fn chan_recv(&mut self, chan: usize) -> Option<i64> {
        self.channels.get_mut(chan).and_then(|c| c.pop_front())
    }
}

/// A thread's behaviour: one quantum per call. `Send` so motes can be
/// stepped on worker threads (see [`World::run_until_parallel`]).
pub trait ThreadBody: Send {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step;
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TState {
    Ready,
    Sleeping(u64),
    WaitingRecv,
    WaitingChan(usize),
    Done,
}

struct Thread {
    body: Box<dyn ThreadBody>,
    priority: u8,
    state: TState,
}

/// A mote running the preemptive-thread OS.
pub struct MantisMote {
    node_id: usize,
    threads: Vec<Thread>,
    rr: usize,
    mailbox: VecDeque<Packet>,
    channels: Vec<VecDeque<i64>>,
    /// Mailbox capacity: arrivals beyond it are lost (radio overrun).
    pub mailbox_cap: usize,
    /// Shared loss counter, readable by harnesses after the run.
    pub lost: std::sync::Arc<std::sync::atomic::AtomicU64>,
    /// Fixed context-switch / wake-up latency added to every sleep (µs).
    pub wake_latency_us: u64,
}

impl MantisMote {
    pub fn new(node_id: usize) -> Self {
        MantisMote {
            node_id,
            threads: Vec::new(),
            rr: 0,
            mailbox: VecDeque::new(),
            channels: Vec::new(),
            mailbox_cap: 1,
            lost: std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0)),
            wake_latency_us: 150,
        }
    }

    /// Spawns a thread; higher `priority` preempts lower.
    pub fn spawn(&mut self, priority: u8, body: Box<dyn ThreadBody>) {
        self.threads.push(Thread { body, priority, state: TState::Ready });
    }

    fn runnable(&self, now: u64) -> Option<usize> {
        let mut best: Option<usize> = None;
        let n = self.threads.len();
        for k in 0..n {
            let i = (self.rr + k) % n;
            let t = &self.threads[i];
            let ready = match t.state {
                TState::Ready => true,
                TState::Sleeping(until) => until <= now,
                TState::WaitingRecv => !self.mailbox.is_empty(),
                TState::WaitingChan(c) => {
                    self.channels.get(c).map(|c| !c.is_empty()).unwrap_or(false)
                }
                TState::Done => false,
            };
            if ready {
                match best {
                    Some(b) if self.threads[b].priority >= t.priority => {}
                    _ => best = Some(i),
                }
            }
        }
        best
    }

    /// Earliest wake-up among sleeping threads.
    fn next_wake(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                TState::Sleeping(until) => Some(until),
                _ => None,
            })
            .min()
    }

    fn run_quantum(&mut self, ctx: &mut MoteCtx) {
        let Some(i) = self.runnable(ctx.now) else {
            self.arm(ctx);
            return;
        };
        self.rr = (i + 1) % self.threads.len();
        let mut tctx = ThreadCtx {
            now: ctx.now,
            node_id: self.node_id,
            mailbox: &mut self.mailbox,
            channels: &mut self.channels,
            sends: Vec::new(),
            led_sets: Vec::new(),
            led_toggles: Vec::new(),
        };
        let step = self.threads[i].body.step(&mut tctx);
        let sends = std::mem::take(&mut tctx.sends);
        let led_sets = std::mem::take(&mut tctx.led_sets);
        let led_toggles = std::mem::take(&mut tctx.led_toggles);
        self.threads[i].state = match step {
            Step::Run => TState::Ready,
            // the sleep is measured from the *actual* run instant, plus a
            // wake-up latency: this is where preemptive blinkers drift
            Step::Sleep(us) => TState::Sleeping(ctx.now + us + self.wake_latency_us),
            Step::WaitRecv => TState::WaitingRecv,
            Step::WaitChan(c) => TState::WaitingChan(c),
            Step::Done => TState::Done,
        };
        for (dst, p) in sends {
            ctx.send(dst, p);
        }
        for mask in led_sets {
            ctx.leds.set_mask(ctx.now, mask);
        }
        for led in led_toggles {
            ctx.leds.toggle(ctx.now, led);
        }
        self.arm(ctx);
    }

    /// Requests the world resources the scheduler needs next.
    fn arm(&mut self, ctx: &mut MoteCtx) {
        if self.runnable(ctx.now).is_some() {
            ctx.wants_cpu = true;
        } else if let Some(w) = self.next_wake() {
            ctx.set_timer_at(w);
        }
    }
}

impl Backend for MantisMote {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        ctx.wants_cpu = true;
        self.arm(ctx);
    }

    fn deliver(&mut self, ctx: &mut MoteCtx, packet: Packet) {
        if self.mailbox.len() >= self.mailbox_cap {
            self.lost.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        } else {
            self.mailbox.push_back(packet);
        }
        ctx.wants_cpu = true;
        self.arm(ctx);
    }

    fn timer(&mut self, ctx: &mut MoteCtx) {
        ctx.wants_cpu = true;
        self.arm(ctx);
    }

    fn cpu(&mut self, ctx: &mut MoteCtx) {
        self.run_quantum(ctx);
    }
}

/// A thread that toggles one led forever with a fixed period — the naive
/// preemptive blinker from §5.
pub struct BlinkThread {
    pub led: u8,
    pub period_us: u64,
}

impl ThreadBody for BlinkThread {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
        ctx.led_toggles.push(self.led);
        Step::Sleep(self.period_us)
    }
}

/// occam-analog blinker: a timer process sends ticks over a channel, a
/// guardian process owns the led. Same drift behaviour, no shared state.
pub struct OccamTimerProc {
    pub chan: usize,
    pub period_us: u64,
}

impl ThreadBody for OccamTimerProc {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
        ctx.chan_send(self.chan, 1);
        Step::Sleep(self.period_us)
    }
}

/// Led guardian: toggles its led for every message on its channel.
pub struct OccamLedProc {
    pub chan: usize,
    pub led: u8,
}

impl ThreadBody for OccamLedProc {
    fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
        match ctx.chan_recv(self.chan) {
            Some(_) => {
                ctx.led_toggles.push(self.led);
                Step::WaitChan(self.chan)
            }
            None => Step::WaitChan(self.chan),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radio::Radio;
    use crate::world::World;

    #[test]
    fn preemptive_blinker_drifts() {
        let mut w = World::new(Radio::ideal(0));
        let mut mote = MantisMote::new(0);
        mote.spawn(1, Box::new(BlinkThread { led: 0, period_us: 400_000 }));
        w.add_mote(Box::new(mote));
        w.boot();
        w.run_until(10_000_000);
        let times = w.leds(0).on_times(0);
        assert!(times.len() >= 10, "{times:?}");
        // each iteration adds wake latency: the last switch-on is late
        // compared to the ideal 800ms on-grid (first on at ~0)
        let last = *times.last().unwrap();
        let ideal = (times.len() as u64 - 1) * 800_000;
        assert!(last > ideal + 1_000, "expected drift, got last={last} ideal={ideal}");
    }

    #[test]
    fn higher_priority_thread_preempts() {
        struct Worker {
            pub count: std::sync::Arc<std::sync::Mutex<(u32, u32)>>,
            pub hi: bool,
        }
        impl ThreadBody for Worker {
            fn step(&mut self, _: &mut ThreadCtx) -> Step {
                let mut c = self.count.lock().unwrap();
                if self.hi {
                    c.0 += 1;
                    if c.0 > 5 {
                        return Step::Done;
                    }
                } else {
                    c.1 += 1;
                }
                Step::Run
            }
        }
        let count = std::sync::Arc::new(std::sync::Mutex::new((0u32, 0u32)));
        let mut w = World::new(Radio::ideal(0));
        let mut mote = MantisMote::new(0);
        mote.spawn(1, Box::new(Worker { count: count.clone(), hi: false }));
        mote.spawn(5, Box::new(Worker { count: count.clone(), hi: true }));
        w.add_mote(Box::new(mote));
        w.boot();
        w.run_until(2_000);
        let (hi, lo) = *count.lock().unwrap();
        // the high-priority thread runs to completion before the low one
        assert_eq!(hi, 6);
        assert!(lo > 0, "low-priority thread runs after");
    }

    #[test]
    fn mailbox_overruns_are_lost() {
        struct SlowRecv;
        impl ThreadBody for SlowRecv {
            fn step(&mut self, ctx: &mut ThreadCtx) -> Step {
                if ctx.mailbox.pop_front().is_some() {
                    // pretend processing takes 5ms
                    Step::Sleep(5_000)
                } else {
                    Step::WaitRecv
                }
            }
        }
        let mut w = World::new(Radio::ideal(10));
        let mut mote = MantisMote::new(0);
        mote.mailbox_cap = 1;
        let lost = mote.lost.clone();
        mote.spawn(1, Box::new(SlowRecv));
        w.add_mote(Box::new(mote));

        // a second backend floods mote 0 every millisecond
        struct Flood;
        impl Backend for Flood {
            fn boot(&mut self, ctx: &mut MoteCtx) {
                ctx.set_timer_at(1_000);
            }
            fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
            fn timer(&mut self, ctx: &mut MoteCtx) {
                ctx.send(0, Packet::with_value(1, 0, 1));
                ctx.set_timer_at(ctx.now + 1_000);
            }
            fn cpu(&mut self, _: &mut MoteCtx) {}
        }
        w.add_mote(Box::new(Flood));
        w.boot();
        w.run_until(100_000);
        assert!(w.stats.delivered > 50);
        assert!(
            lost.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "a 5ms-per-message receiver cannot sustain 1ms arrivals"
        );
    }

    #[test]
    fn occam_processes_blink_via_channels() {
        let mut w = World::new(Radio::ideal(0));
        let mut mote = MantisMote::new(0);
        mote.spawn(1, Box::new(OccamTimerProc { chan: 0, period_us: 400_000 }));
        mote.spawn(1, Box::new(OccamLedProc { chan: 0, led: 0 }));
        w.add_mote(Box::new(mote));
        w.boot();
        w.run_until(5_000_000);
        assert!(w.leds(0).history.len() >= 5, "{:?}", w.leds(0).history);
    }
}

//! `wsn-sim` — a discrete-event wireless-sensor-network simulator.
//!
//! This is the substrate standing in for the paper's micaz/TinyOS testbed
//! (see DESIGN.md for the substitution argument). It provides:
//!
//! * a virtual-time [`World`] with motes, timers, CPU slices and radio;
//! * a TinyOS-style Céu binding ([`CeuMote`]) running compiled programs;
//! * an event-driven **nesC-analog** backend (Table 1 baselines);
//! * a preemptive-thread **MantisOS-analog** scheduler (Table 2 baseline,
//!   blink-synchronization experiment);
//! * an **occam-analog** message-passing layer over the same scheduler.

pub mod ceu_mote;
pub mod faults;
pub mod mantis;
pub mod nesc;
pub mod parstats;
mod pool;
pub mod radio;
pub mod sched;
pub mod shard;
pub mod world;

pub use ceu::runtime::{FlightRecord, FlightRecorder, WindowMark};
pub use ceu_mote::{CeuMote, TosHost};
pub use faults::{FaultAction, FaultEntry, FaultPlan, RebootPolicy};
pub use mantis::{
    BlinkThread, MantisMote, OccamLedProc, OccamTimerProc, Step, ThreadBody, ThreadCtx,
};
pub use nesc::NescApp;
pub use parstats::{
    run_to_json, shard_to_json, window_to_json, write_par_stats_jsonl, Attribution, ParShardStats,
    ParStats, ParTotals, ParWindowStats,
};
pub use radio::{LinkLatency, Packet, Radio, RadioStats, Topology};
pub use sched::EventHeap;
pub use shard::{ShardPlan, DEFAULT_TARGET_SHARDS};
pub use world::{
    write_trace_jsonl, Backend, CrashCause, Leds, MoteCtx, MoteId, MoteStats, MoteStatus, World,
    WorldTraceEvent,
};

//! The simulator's event scheduler: a keyed 4-ary min-heap.
//!
//! [`World`](crate::world::World) used to pair a
//! `BinaryHeap<Reverse<(u64, u64, usize)>>` with a side `Vec` of payloads
//! that was never truncated — every scheduled event leaked its `Fire`
//! (packets included) for the lifetime of the world, and each push paid
//! for the `Reverse` indirection. [`EventHeap`] stores the payload inline
//! with its `(at, seq)` key, pops by move (no payload clone), and keeps
//! its buffer so a steady-state simulation stops allocating once the heap
//! has grown to the world's natural event population.
//!
//! A 4-ary layout halves the tree depth of a binary heap: sift-down
//! compares up to four children per level but touches half as many cache
//! lines, which wins for the small keys + payload nodes scheduled here.

/// A min-heap of `(at, seq, payload)` ordered by the `(at, seq)` key.
///
/// `seq` is the scheduler's monotone tie-breaker, so the order popped is
/// exactly the deterministic `(time, insertion order)` the conservative
/// PDES merge relies on. Equal keys cannot occur (seq is unique).
#[derive(Clone, Debug)]
pub struct EventHeap<T> {
    nodes: Vec<Node<T>>,
    /// Lifetime push/pop counters (two `u64` increments per op — cheap
    /// enough to stay always-on). The parallel-scheduler introspection
    /// layer reads deltas of these per window (`ceu-par-stats/v1`).
    pushes: u64,
    pops: u64,
}

#[derive(Clone, Debug)]
struct Node<T> {
    at: u64,
    seq: u64,
    item: T,
}

impl<T> Node<T> {
    #[inline]
    fn key(&self) -> (u64, u64) {
        (self.at, self.seq)
    }
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        EventHeap::new()
    }
}

impl<T> EventHeap<T> {
    pub fn new() -> Self {
        EventHeap { nodes: Vec::new(), pushes: 0, pops: 0 }
    }

    pub fn with_capacity(cap: usize) -> Self {
        EventHeap { nodes: Vec::with_capacity(cap), pushes: 0, pops: 0 }
    }

    /// Lifetime `(pushes, pops)` counters. Monotone; read deltas around a
    /// region to attribute scheduler traffic to it.
    pub fn op_counts(&self) -> (u64, u64) {
        (self.pushes, self.pops)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Removes every event but keeps the buffer.
    pub fn clear(&mut self) {
        self.nodes.clear();
    }

    /// The key of the next event to fire, without removing it.
    pub fn peek_key(&self) -> Option<(u64, u64)> {
        self.nodes.first().map(Node::key)
    }

    /// The next event to fire — key and a borrow of its payload — without
    /// removing it. Lets the world decide whether the head needs special
    /// handling (fault barriers) before committing to a pop.
    pub fn peek(&self) -> Option<(u64, u64, &T)> {
        self.nodes.first().map(|n| (n.at, n.seq, &n.item))
    }

    /// Keeps only the events for which `keep` returns `true`, restoring
    /// the heap invariant afterwards (O(n) heapify). Returns how many
    /// events were removed. Used by fault injection to drop in-flight
    /// deliveries deterministically.
    pub fn retain(&mut self, mut keep: impl FnMut(u64, u64, &T) -> bool) -> usize {
        let before = self.nodes.len();
        self.nodes.retain(|n| keep(n.at, n.seq, &n.item));
        let n = self.nodes.len();
        if n > 1 {
            // heapify from the last parent down (4-ary: parent of i is (i-1)/4)
            for i in (0..=(n - 2) / 4).rev() {
                self.sift_down(i);
            }
        }
        before - n
    }

    /// Empties the heap in arbitrary order, yielding the raw
    /// `(at, seq, payload)` triples. O(n) — no sift costs — for migrating
    /// events between heaps when the world is re-sharded; the destination
    /// heap re-establishes order as the triples are pushed back. Not a
    /// scheduling operation: the `op_counts` pop counter is unaffected.
    pub fn drain_unordered(&mut self) -> impl Iterator<Item = (u64, u64, T)> + '_ {
        self.nodes.drain(..).map(|n| (n.at, n.seq, n.item))
    }

    pub fn push(&mut self, at: u64, seq: u64, item: T) {
        self.pushes += 1;
        self.nodes.push(Node { at, seq, item });
        self.sift_up(self.nodes.len() - 1);
    }

    /// Removes and returns the earliest event as `(at, seq, payload)`.
    pub fn pop(&mut self) -> Option<(u64, u64, T)> {
        let last = self.nodes.len().checked_sub(1)?;
        self.pops += 1;
        self.nodes.swap(0, last);
        let node = self.nodes.pop().expect("non-empty");
        if !self.nodes.is_empty() {
            self.sift_down(0);
        }
        Some((node.at, node.seq, node.item))
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.nodes[i].key() >= self.nodes[parent].key() {
                break;
            }
            self.nodes.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.nodes.len();
        loop {
            let first_child = 4 * i + 1;
            if first_child >= n {
                break;
            }
            let mut best = first_child;
            let end = (first_child + 4).min(n);
            for c in first_child + 1..end {
                if self.nodes[c].key() < self.nodes[best].key() {
                    best = c;
                }
            }
            if self.nodes[best].key() >= self.nodes[i].key() {
                break;
            }
            self.nodes.swap(i, best);
            i = best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut h = EventHeap::new();
        h.push(30, 1, "c");
        h.push(10, 2, "a");
        h.push(20, 3, "b");
        h.push(10, 4, "a2");
        assert_eq!(h.peek_key(), Some((10, 2)));
        assert_eq!(h.pop(), Some((10, 2, "a")));
        assert_eq!(h.pop(), Some((10, 4, "a2")));
        assert_eq!(h.pop(), Some((20, 3, "b")));
        assert_eq!(h.pop(), Some((30, 1, "c")));
        assert_eq!(h.pop(), None);
        assert!(h.is_empty());
    }

    #[test]
    fn matches_a_reference_sort_on_a_large_mixed_workload() {
        // deterministic pseudo-random interleaving of pushes and pops
        let mut h = EventHeap::new();
        let mut reference: Vec<(u64, u64)> = Vec::new();
        let mut popped: Vec<(u64, u64)> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        for seq in 0..10_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let at = state >> 40; // small-ish times, plenty of collisions
            h.push(at, seq, at ^ seq);
            reference.push((at, seq));
            if state & 3 == 0 {
                let (at, seq, item) = h.pop().unwrap();
                assert_eq!(item, at ^ seq);
                popped.push((at, seq));
            }
        }
        while let Some((at, seq, _)) = h.pop() {
            popped.push((at, seq));
        }
        // every event came out exactly once...
        let mut seen = popped.clone();
        seen.sort_unstable();
        reference.sort_unstable();
        assert_eq!(seen, reference);
        // ...and within any uninterrupted drain the order is sorted; the
        // full final drain covers the interesting case
        let tail = &popped[popped.len() - 5_000..];
        assert!(tail.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn retain_filters_and_restores_heap_order() {
        let mut h = EventHeap::new();
        let mut state = 0xdeadbeefcafef00du64;
        for seq in 0..1_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            h.push(state >> 48, seq, seq);
        }
        assert_eq!(h.peek().map(|(at, seq, _)| (at, seq)), h.peek_key());
        let removed = h.retain(|_, _, item| item % 3 != 0);
        assert_eq!(removed, 334, "seqs 0,3,…,999");
        let mut drained = Vec::new();
        while let Some((at, seq, item)) = h.pop() {
            assert_ne!(item % 3, 0);
            drained.push((at, seq));
        }
        assert_eq!(drained.len(), 666);
        assert!(drained.windows(2).all(|w| w[0] < w[1]), "still pops in key order");
    }

    #[test]
    fn op_counts_track_pushes_and_pops() {
        let mut h = EventHeap::new();
        assert_eq!(h.op_counts(), (0, 0));
        for i in 0..5 {
            h.push(i, i, i);
        }
        assert_eq!(h.op_counts(), (5, 0));
        h.pop();
        h.pop();
        assert_eq!(h.op_counts(), (5, 2));
        h.pop();
        h.pop();
        h.pop();
        assert_eq!(h.pop(), None, "empty pops do not count");
        assert_eq!(h.op_counts(), (5, 5));
    }

    #[test]
    fn drain_unordered_moves_every_event_once() {
        let mut h = EventHeap::new();
        for i in 0..100u64 {
            h.push(1_000 - i, i, i * 2);
        }
        let (pushes, pops) = h.op_counts();
        let mut drained: Vec<_> = h.drain_unordered().collect();
        assert!(h.is_empty());
        assert_eq!(h.op_counts(), (pushes, pops), "migration is not a scheduling op");
        drained.sort_unstable();
        let expect: Vec<_> = (0..100u64).map(|i| (1_000 - i, i, i * 2)).collect();
        let mut expect = expect;
        expect.sort_unstable();
        assert_eq!(drained, expect);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut h = EventHeap::with_capacity(64);
        for i in 0..50 {
            h.push(i, i, i);
        }
        let cap = h.nodes.capacity();
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.nodes.capacity(), cap);
    }
}

//! Deterministic fault injection for the WSN simulator.
//!
//! A [`FaultPlan`] is a time-ordered schedule of [`FaultAction`]s that the
//! [`World`](crate::world::World) applies at exact virtual times through
//! its event heap, so [`run_until`](crate::world::World::run_until) and
//! [`run_until_parallel`](crate::world::World::run_until_parallel) observe
//! identical fault timing at any thread count (the chaos harness in
//! `crates/bench` pins this bit-for-bit on the merged world trace).
//!
//! In the sharded engine, fault and reboot events live on the world queue
//! (lane 0), not on any shard heap: each one is a **global barrier**. No
//! shard window is allowed to span a pending world event, so a fault's
//! topology/loss/skew side effects are visible to every shard from the
//! exact virtual instant it fires, regardless of shard count or thread
//! count.
//!
//! Plans can be built in code ([`FaultPlan::at`]), parsed from the text
//! format below ([`FaultPlan::parse`]), or generated from a seed
//! ([`FaultPlan::randomized`] — same seed, same plan, on any host).
//!
//! ## Text format
//!
//! One directive per line; `#` starts a comment. Durations use the Céu
//! time grammar (`10ms`, `1s500ms`, `250us`, or a bare µs count).
//!
//! ```text
//! seed = 42                          # optional, informational
//! at 10ms   crash 1                  # power mote 1 off
//! at 20ms   reboot 1 after 5ms       # crash now, restart 5ms later
//! at 30ms   partition 0,1 | 2,3 until 60ms
//! at 45ms   loss 2->3 rate 0.5 until 90ms
//! at 50ms   skew 4 ppm -200          # mote 4's clock drifts -200 ppm
//! at 60ms   heal                     # clear partitions + loss bursts
//! at 95ms   drop-in-flight 3         # discard packets flying toward 3
//! ```

use crate::world::MoteId;
use ceu::ast::TimeSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injectable fault.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Power the mote off. It stays down unless the world's reboot policy
    /// (or a later [`FaultAction::Reboot`]) brings it back.
    Crash { mote: MoteId },
    /// Crash the mote now and restart it `delay_us` later (fresh machine,
    /// full state loss), regardless of the world's reboot policy.
    Reboot { mote: MoteId, delay_us: u64 },
    /// Split the network: no traffic between `group_a` and `group_b`
    /// until `until_us`.
    Partition { group_a: Vec<MoteId>, group_b: Vec<MoteId>, until_us: u64 },
    /// Clear every active partition and loss burst.
    Heal,
    /// Elevated loss probability on one directed link until `until_us`.
    LossBurst { from: MoteId, to: MoteId, rate: f64, until_us: u64 },
    /// Skew the mote's local clock by `ppm` parts per million from here
    /// on (callbacks see a drifted `now`; timers stretch accordingly).
    ClockSkew { mote: MoteId, ppm: i64 },
    /// Discard every delivery currently in flight toward the mote.
    DropInFlight { mote: MoteId },
}

impl FaultAction {
    /// The mote the action targets, when it targets exactly one.
    pub fn mote(&self) -> Option<MoteId> {
        match self {
            FaultAction::Crash { mote }
            | FaultAction::Reboot { mote, .. }
            | FaultAction::ClockSkew { mote, .. }
            | FaultAction::DropInFlight { mote } => Some(*mote),
            _ => None,
        }
    }

    /// Every mote id the action references (plan validation).
    fn motes(&self) -> Vec<MoteId> {
        match self {
            FaultAction::Partition { group_a, group_b, .. } => {
                group_a.iter().chain(group_b).copied().collect()
            }
            FaultAction::LossBurst { from, to, .. } => vec![*from, *to],
            FaultAction::Heal => Vec::new(),
            other => other.mote().into_iter().collect(),
        }
    }
}

/// One scheduled fault: what happens and when (virtual µs).
#[derive(Clone, Debug, PartialEq)]
pub struct FaultEntry {
    pub at_us: u64,
    pub action: FaultAction,
}

/// When (and whether) the world restarts a crashed mote that the fault
/// plan itself doesn't explicitly reboot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RebootPolicy {
    /// Crashed motes stay down.
    #[default]
    Never,
    /// Restart a fixed delay (µs) after every crash.
    After(u64),
    /// Exponential backoff: `base * 2^(n-1)` µs after the `n`-th crash,
    /// capped at `max`.
    Backoff { base_us: u64, max_us: u64 },
}

impl RebootPolicy {
    /// Reboot delay after this mote's `nth` crash (1-based), or `None`
    /// to leave it down.
    pub fn delay_for(&self, nth_crash: u32) -> Option<u64> {
        match *self {
            RebootPolicy::Never => None,
            RebootPolicy::After(d) => Some(d),
            RebootPolicy::Backoff { base_us, max_us } => {
                let shift = nth_crash.saturating_sub(1).min(63);
                // Clamp to ≥ 1 µs: with `base_us: 0` every delay would be
                // zero and a crash-looping node could hot-spin through
                // restarts forever — backoff must always back off. (The
                // world additionally clamps to its lookahead; direct
                // consumers like the session service rely on this floor.)
                Some(base_us.saturating_mul(1u64 << shift).min(max_us).max(1))
            }
        }
    }
}

/// A deterministic, time-ordered fault schedule.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed a randomized plan was generated from (informational;
    /// round-trips through the text format).
    pub seed: Option<u64>,
    entries: Vec<FaultEntry>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builder-style: appends an action at `at_us`. Entries at equal
    /// times apply in insertion order.
    pub fn at(mut self, at_us: u64, action: FaultAction) -> Self {
        self.entries.push(FaultEntry { at_us, action });
        self
    }

    pub fn entries(&self) -> &[FaultEntry] {
        &self.entries
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The largest mote id any entry references, for roster validation.
    pub fn max_mote(&self) -> Option<MoteId> {
        self.entries.iter().flat_map(|e| e.action.motes()).max()
    }

    /// Parses the text format (see the module docs). Line numbers in
    /// errors are 1-based.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fail = |msg: &str| format!("fault plan line {}: {msg}", i + 1);
            if let Some(rest) = line.strip_prefix("seed") {
                let v = rest.trim_start().strip_prefix('=').ok_or_else(|| fail("expected `=`"))?;
                plan.seed = Some(v.trim().parse().map_err(|_| fail("bad seed"))?);
                continue;
            }
            let rest = line.strip_prefix("at").ok_or_else(|| fail("expected `at <time> …`"))?;
            let mut words = rest.split_whitespace();
            let at_us = parse_time(words.next().ok_or_else(|| fail("missing time"))?)
                .ok_or_else(|| fail("bad time"))?;
            let verb = words.next().ok_or_else(|| fail("missing action"))?;
            let words: Vec<&str> = words.collect();
            let action = parse_action(verb, &words).map_err(|m| fail(&m))?;
            plan.entries.push(FaultEntry { at_us, action });
        }
        Ok(plan)
    }

    /// Serialises back to the text format (`parse` round-trips it).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        if let Some(seed) = self.seed {
            out.push_str(&format!("seed = {seed}\n"));
        }
        for e in &self.entries {
            let at = e.at_us;
            let line = match &e.action {
                FaultAction::Crash { mote } => format!("at {at}us crash {mote}"),
                FaultAction::Reboot { mote, delay_us } => {
                    format!("at {at}us reboot {mote} after {delay_us}us")
                }
                FaultAction::Partition { group_a, group_b, until_us } => format!(
                    "at {at}us partition {} | {} until {until_us}us",
                    ids(group_a),
                    ids(group_b)
                ),
                FaultAction::Heal => format!("at {at}us heal"),
                FaultAction::LossBurst { from, to, rate, until_us } => {
                    format!("at {at}us loss {from}->{to} rate {rate} until {until_us}us")
                }
                FaultAction::ClockSkew { mote, ppm } => {
                    format!("at {at}us skew {mote} ppm {ppm}")
                }
                FaultAction::DropInFlight { mote } => format!("at {at}us drop-in-flight {mote}"),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// A randomized-but-seeded plan over `motes` motes within
    /// `[horizon_us/8, horizon_us)`: a mix of crashes, reboots,
    /// partitions, heals, loss bursts, clock skews and in-flight drops.
    /// The same seed always yields the same plan.
    pub fn randomized(seed: u64, motes: usize, horizon_us: u64) -> FaultPlan {
        assert!(motes >= 2, "need at least two motes to fault meaningfully");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan { seed: Some(seed), entries: Vec::new() };
        let n = 3 + rng.gen_range(0usize..5);
        let lo = (horizon_us / 8).max(1);
        for _ in 0..n {
            let at_us = rng.gen_range(lo..horizon_us.max(lo + 1));
            let mote = rng.gen_range(0usize..motes);
            let action = match rng.gen_range(0u32..8) {
                0 => FaultAction::Crash { mote },
                1 | 2 => FaultAction::Reboot {
                    mote,
                    delay_us: rng.gen_range(horizon_us / 20..horizon_us / 4 + 2),
                },
                3 => {
                    // split the roster at a random pivot
                    let pivot = rng.gen_range(1usize..motes);
                    FaultAction::Partition {
                        group_a: (0..pivot).collect(),
                        group_b: (pivot..motes).collect(),
                        until_us: at_us + rng.gen_range(horizon_us / 10..horizon_us / 3 + 2),
                    }
                }
                4 => FaultAction::Heal,
                5 => {
                    let to = (mote + 1 + rng.gen_range(0usize..motes - 1)) % motes;
                    FaultAction::LossBurst {
                        from: mote,
                        to,
                        rate: rng.gen_range(0.3f64..0.9),
                        until_us: at_us + rng.gen_range(horizon_us / 10..horizon_us / 3 + 2),
                    }
                }
                6 => FaultAction::ClockSkew { mote, ppm: rng.gen_range(-500i64..500) },
                _ => FaultAction::DropInFlight { mote },
            };
            plan.entries.push(FaultEntry { at_us, action });
        }
        // time-ordered for readability; equal times keep generation order
        plan.entries.sort_by_key(|e| e.at_us);
        plan
    }
}

/// `10ms`-style Céu duration, or a bare µs count.
fn parse_time(text: &str) -> Option<u64> {
    TimeSpec::parse(text).map(|t| t.us).or_else(|| text.parse().ok())
}

fn parse_mote(text: &str) -> Result<MoteId, String> {
    text.parse().map_err(|_| format!("bad mote id `{text}`"))
}

fn parse_group(text: &str) -> Result<Vec<MoteId>, String> {
    text.split(',').filter(|s| !s.is_empty()).map(parse_mote).collect()
}

fn ids(group: &[MoteId]) -> String {
    group.iter().map(|m| m.to_string()).collect::<Vec<_>>().join(",")
}

fn parse_action(verb: &str, words: &[&str]) -> Result<FaultAction, String> {
    let time_arg = |w: Option<&&str>, what: &str| -> Result<u64, String> {
        w.and_then(|t| parse_time(t)).ok_or(format!("bad or missing {what}"))
    };
    match verb {
        "crash" => {
            Ok(FaultAction::Crash { mote: parse_mote(words.first().ok_or("missing mote")?)? })
        }
        "reboot" => {
            let mote = parse_mote(words.first().ok_or("missing mote")?)?;
            if words.get(1) != Some(&"after") {
                return Err("expected `reboot <mote> after <delay>`".into());
            }
            Ok(FaultAction::Reboot { mote, delay_us: time_arg(words.get(2), "delay")? })
        }
        "partition" => {
            // partition 0,1 | 2,3 until 60ms
            let bar = words.iter().position(|w| *w == "|").ok_or("expected `|`")?;
            let until = words.iter().position(|w| *w == "until").ok_or("expected `until`")?;
            if bar == 0 || until != words.len() - 2 || bar + 1 == until {
                return Err("expected `partition A | B until <time>`".into());
            }
            let join = |ws: &[&str]| ws.concat();
            Ok(FaultAction::Partition {
                group_a: parse_group(&join(&words[..bar]))?,
                group_b: parse_group(&join(&words[bar + 1..until]))?,
                until_us: time_arg(words.get(until + 1), "until time")?,
            })
        }
        "heal" => Ok(FaultAction::Heal),
        "loss" => {
            // loss 2->3 rate 0.5 until 90ms
            let link = words.first().ok_or("missing link")?;
            let (from, to) = link.split_once("->").ok_or("expected `from->to`")?;
            if words.get(1) != Some(&"rate") || words.get(3) != Some(&"until") {
                return Err("expected `loss F->T rate R until <time>`".into());
            }
            let rate: f64 = words.get(2).and_then(|r| r.parse().ok()).ok_or("bad rate")?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} outside [0, 1]"));
            }
            Ok(FaultAction::LossBurst {
                from: parse_mote(from)?,
                to: parse_mote(to)?,
                rate,
                until_us: time_arg(words.get(4), "until time")?,
            })
        }
        "skew" => {
            let mote = parse_mote(words.first().ok_or("missing mote")?)?;
            if words.get(1) != Some(&"ppm") {
                return Err("expected `skew <mote> ppm <n>`".into());
            }
            let ppm: i64 = words.get(2).and_then(|p| p.parse().ok()).ok_or("bad ppm")?;
            Ok(FaultAction::ClockSkew { mote, ppm })
        }
        "drop-in-flight" => Ok(FaultAction::DropInFlight {
            mote: parse_mote(words.first().ok_or("missing mote")?)?,
        }),
        other => Err(format!("unknown fault action `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_action_and_round_trips() {
        let text = "\
            # a chaotic afternoon\n\
            seed = 7\n\
            at 10ms crash 1\n\
            at 20ms reboot 1 after 5ms\n\
            at 30ms partition 0,1 | 2,3 until 60ms\n\
            at 45ms loss 2->3 rate 0.5 until 90ms\n\
            at 50ms skew 4 ppm -200\n\
            at 60ms heal\n\
            at 95ms drop-in-flight 3\n";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.seed, Some(7));
        assert_eq!(plan.len(), 7);
        assert_eq!(
            plan.entries()[0],
            FaultEntry { at_us: 10_000, action: FaultAction::Crash { mote: 1 } }
        );
        assert_eq!(
            plan.entries()[2],
            FaultEntry {
                at_us: 30_000,
                action: FaultAction::Partition {
                    group_a: vec![0, 1],
                    group_b: vec![2, 3],
                    until_us: 60_000,
                },
            }
        );
        assert_eq!(plan.max_mote(), Some(4));
        // round trip: text → plan → text → identical plan
        let again = FaultPlan::parse(&plan.to_text()).expect("round-trips");
        assert_eq!(plan, again);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = FaultPlan::parse("at 10ms crash 1\nat nope crash 2").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = FaultPlan::parse("at 5ms explode 1").unwrap_err();
        assert!(err.contains("unknown fault action"), "{err}");
        let err = FaultPlan::parse("at 5ms loss 0->1 rate 1.5 until 9ms").unwrap_err();
        assert!(err.contains("outside"), "{err}");
    }

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let a = FaultPlan::randomized(99, 6, 1_000_000);
        let b = FaultPlan::randomized(99, 6, 1_000_000);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        assert!(a.entries().windows(2).all(|w| w[0].at_us <= w[1].at_us), "time-ordered");
        assert!(a.max_mote().is_none_or(|m| m < 6));
        let c = FaultPlan::randomized(100, 6, 1_000_000);
        assert_ne!(a, c, "different seed, different plan");
        // and the text format carries the whole thing
        assert_eq!(FaultPlan::parse(&a.to_text()).unwrap(), a);
    }

    #[test]
    fn reboot_policies_compute_delays() {
        assert_eq!(RebootPolicy::Never.delay_for(1), None);
        assert_eq!(RebootPolicy::After(500).delay_for(3), Some(500));
        let b = RebootPolicy::Backoff { base_us: 100, max_us: 1_000 };
        assert_eq!(b.delay_for(1), Some(100));
        assert_eq!(b.delay_for(2), Some(200));
        assert_eq!(b.delay_for(3), Some(400));
        assert_eq!(b.delay_for(10), Some(1_000), "capped");
    }
}

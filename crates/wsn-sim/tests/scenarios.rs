//! Larger WSN scenarios across backends: multi-hop collection, mixed
//! Céu/nesC networks, loss injection, and long-computation interference.

use ceu::Compiler;
use wsn_sim::mantis::{MantisMote, Step, ThreadBody, ThreadCtx};
use wsn_sim::nesc::{Client, Server};
use wsn_sim::{Backend, CeuMote, MoteCtx, Packet, Radio, Topology, World};

/// A line network: each relay forwards towards mote 0, adding one hop.
const RELAY: &str = r#"
    input _message_t* Radio_receive;
    pure _Radio_getPayload;
    loop do
       _message_t* msg = await Radio_receive;
       int* hops = _Radio_getPayload(msg);
       *hops = *hops + 1;
       if _TOS_NODE_ID > 0 then
          _Radio_send(_TOS_NODE_ID - 1, msg);
       else
          _Leds_set(*hops);
       end
    end
"#;

/// A leaf sensor: sends a reading towards the sink every second.
const LEAF: &str = r#"
    input _message_t* Radio_receive;
    pure _Radio_getPayload;
    loop do
       _message_t msg;
       int* hops = _Radio_getPayload(&msg);
       *hops = 0;
       _Radio_send(_TOS_NODE_ID - 1, &msg)
       await 1s;
    end
"#;

#[test]
fn multi_hop_collection_reaches_the_sink() {
    let relay = Compiler::new().compile(RELAY).unwrap();
    let leaf = Compiler::new().compile(LEAF).unwrap();
    // chain: 0 (sink) ← 1 ← 2 ← 3 (leaf)
    let links = Topology::Links(vec![(3, 2), (2, 1), (1, 0)]);
    let mut w = World::new(Radio::new(links, 1_000, 0.0, 3));
    for id in 0..3 {
        w.add_mote(Box::new(CeuMote::new(relay.clone(), id)));
    }
    w.add_mote(Box::new(CeuMote::new(leaf, 3)));
    w.boot();
    w.run_until(5_500_000);
    // each reading gains 3 hops by the time it reaches the sink
    assert_eq!(w.leds(0).state & 0x7, 3, "hop count displayed at the sink");
    // 6 readings (t=0..5s) × 3 hops
    assert_eq!(w.stats.delivered, 18);
}

#[test]
fn lossy_links_lose_some_but_not_all() {
    let relay = Compiler::new().compile(RELAY).unwrap();
    let leaf = Compiler::new().compile(LEAF).unwrap();
    let mut w = World::new(Radio::new(Topology::Links(vec![(1, 0)]), 1_000, 0.3, 99));
    w.add_mote(Box::new(CeuMote::new(relay, 0)));
    w.add_mote(Box::new(CeuMote::new(leaf, 1)));
    w.boot();
    w.run_until(60_000_000);
    assert!(w.stats.lost > 5, "30% loss must bite: {:?}", w.stats);
    assert!(w.stats.delivered > 20, "most messages still arrive");
}

#[test]
fn ceu_and_nesc_motes_interoperate() {
    // a nesC-analog Client talks to a Céu echo server and vice versa
    let echo = Compiler::new()
        .compile(
            r#"
            input _message_t* Radio_receive;
            pure _Radio_getPayload;
            loop do
               _message_t* req = await Radio_receive;
               int* p = _Radio_getPayload(req);
               *p = 2 * *p + 1;
               _Leds_set(*p & 7);
               _Radio_send(_Radio_source(req), req);
            end
        "#,
        )
        .unwrap();
    let mut w = World::new(Radio::ideal(2_000));
    let ceu_server = w.add_mote(Box::new(CeuMote::new(echo, 0)));
    let nesc_client = w.add_mote(Box::new(Client::new(0)));
    assert_eq!((ceu_server, nesc_client), (0, 1));
    w.boot();
    w.run_until(3_000_000);
    // the client broadcasts every 250ms and displays the doubled replies
    assert!(!w.leds(1).history.is_empty(), "client shows Céu replies");
    assert!(w.stats.delivered >= 20);
}

#[test]
fn nesc_client_server_pair_still_works_with_latency_jitter() {
    let mut w = World::new(Radio::new(Topology::Full, 5_000, 0.0, 5));
    w.add_mote(Box::new(Client::new(1)));
    w.add_mote(Box::new(Server::new()));
    w.boot();
    w.run_until(5_000_000);
    assert!(w.stats.delivered >= 30);
}

#[test]
fn long_computations_do_not_starve_ceu_reception() {
    // a Céu mote with 5 infinite asyncs still handles every delivery the
    // moment it arrives (synchronous side priority) — the table-2 property
    // as a plain unit test
    let mut src = String::from(
        "input _message_t* Radio_receive;\npure _Radio_getPayload;\npar do\n loop do\n  _message_t* m = await Radio_receive;\n  _Leds_set(*_Radio_getPayload(m));\n end\n",
    );
    for _ in 0..5 {
        src.push_str("with\n async do\n  int i = 0;\n  loop do\n   i = i + 1;\n  end\n  return i;\n end\n await forever;\n");
    }
    src.push_str("end");
    let prog = Compiler::new().compile(&src).unwrap();
    let mut w = World::new(Radio::ideal(100));
    w.add_mote(Box::new(CeuMote::new(prog, 0)));

    struct Pinger {
        n: i64,
    }
    impl Backend for Pinger {
        fn boot(&mut self, ctx: &mut MoteCtx) {
            ctx.set_timer_at(5_000);
        }
        fn deliver(&mut self, _: &mut MoteCtx, _: Packet) {}
        fn timer(&mut self, ctx: &mut MoteCtx) {
            self.n += 1;
            ctx.send(0, Packet::with_value(1, 0, self.n));
            ctx.set_timer_at(ctx.now + 5_000);
        }
        fn cpu(&mut self, _: &mut MoteCtx) {}
    }
    w.add_mote(Box::new(Pinger { n: 0 }));
    w.boot();
    w.run_until(500_000);
    // ~99 pings got displayed; the asyncs burned cpu slices in between
    assert!(w.leds(0).history.len() >= 90, "{}", w.leds(0).history.len());
    assert!(w.stats.cpu_slices > 100, "the asyncs did run: {:?}", w.stats);
}

#[test]
fn mantis_round_robin_is_fair_among_equals() {
    struct Counter {
        c: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl ThreadBody for Counter {
        fn step(&mut self, _: &mut ThreadCtx) -> Step {
            self.c.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Step::Run
        }
    }
    let mut w = World::new(Radio::ideal(0));
    let mut mote = MantisMote::new(0);
    let counters: Vec<_> =
        (0..4).map(|_| std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0))).collect();
    for c in &counters {
        mote.spawn(1, Box::new(Counter { c: c.clone() }));
    }
    w.add_mote(Box::new(mote));
    w.boot();
    w.run_until(100_000);
    let counts: Vec<u64> =
        counters.iter().map(|c| c.load(std::sync::atomic::Ordering::Relaxed)).collect();
    let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
    assert!(max - min <= 1, "round-robin fairness: {counts:?}");
    // the paper asserted "both implementations performed a fair scheduling
    // among long computations" — this is the MantisOS half; the Céu half is
    // go_async's round robin, covered in the runtime tests
}

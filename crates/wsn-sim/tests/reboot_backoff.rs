//! Property tests for [`RebootPolicy::Backoff`] delay growth: after
//! hundreds of crash-reboot cycles the schedule must saturate cleanly at
//! `max_us` — no overflow wraparound, no zero-delay livelock — because
//! both the WSN world and the session service (`ceu-serve`) feed
//! unbounded crash counters straight into `delay_for`.

use proptest::prelude::*;
use wsn_sim::RebootPolicy;

proptest! {
    /// No panic, no overflow, and the cap holds for arbitrary crash
    /// counts — including the degenerate counts (0, u32::MAX) a
    /// crash-looping session can reach.
    #[test]
    fn backoff_never_overflows_and_respects_cap(
        base_us in 0u64..u64::MAX / 2,
        max_us in 1u64..u64::MAX / 2,
        nth in 0u32..u32::MAX,
    ) {
        let p = RebootPolicy::Backoff { base_us, max_us };
        let d = p.delay_for(nth).expect("Backoff always reboots");
        prop_assert!(d <= max_us.max(1), "delay {d} exceeds cap {max_us}");
    }

    /// The livelock fix: even a zero base (or a zero cap) yields a
    /// strictly positive delay, so back-to-back restarts always wait.
    #[test]
    fn backoff_delay_is_never_zero(
        base_us in 0u64..1_000u64,
        max_us in 0u64..1_000u64,
        nth in 0u32..1_000u32,
    ) {
        let p = RebootPolicy::Backoff { base_us, max_us };
        prop_assert!(p.delay_for(nth).unwrap() >= 1);
    }

    /// Delays grow monotonically with the crash count until the cap, so a
    /// repeat offender always waits at least as long as last time.
    #[test]
    fn backoff_is_monotone_nondecreasing(
        base_us in 1u64..1_000_000u64,
        max_us in 1u64..1_000_000_000u64,
        nth in 1u32..500u32,
    ) {
        let p = RebootPolicy::Backoff { base_us, max_us };
        let a = p.delay_for(nth).unwrap();
        let b = p.delay_for(nth + 1).unwrap();
        prop_assert!(b >= a, "delay shrank: crash {nth} → {a}, crash {} → {b}", nth + 1);
    }
}

/// Simulates hundreds of crash-reboot cycles the way a supervisor drives
/// the policy: the accumulated schedule must saturate (constant at the
/// cap) instead of wrapping back down, and total wait stays finite.
#[test]
fn hundreds_of_cycles_saturate_at_cap() {
    let p = RebootPolicy::Backoff { base_us: 250, max_us: 60_000_000 };
    let mut prev = 0u64;
    let mut saturated_at = None;
    for crash in 1..=500u32 {
        let d = p.delay_for(crash).unwrap();
        assert!(d >= prev, "crash {crash}: delay {d} < previous {prev} (wrapped?)");
        assert!(d <= 60_000_000);
        if d == 60_000_000 && saturated_at.is_none() {
            saturated_at = Some(crash);
        }
        prev = d;
    }
    let at = saturated_at.expect("schedule must reach the cap");
    // base 250 µs doubles past 60 s within 19 crashes; every later crash
    // stays pinned at the cap.
    assert!(at <= 19, "saturated too late (crash {at})");
    assert_eq!(p.delay_for(u32::MAX), Some(60_000_000));
}

/// The shift is clamped before the multiply: crash counts beyond 64 must
/// not change the (saturated) result even when `base * 2^shift` would
/// overflow u64.
#[test]
fn huge_crash_counts_equal_the_saturated_delay() {
    let p = RebootPolicy::Backoff { base_us: u64::MAX / 2, max_us: u64::MAX / 3 };
    let at_64 = p.delay_for(64);
    for nth in [65u32, 100, 1_000, u32::MAX] {
        assert_eq!(p.delay_for(nth), at_64);
    }
}

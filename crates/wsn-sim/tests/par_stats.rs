//! `ceu-par-stats/v2` acceptance: schema stability, non-interference
//! with the deterministic parallel stepper, and the exact stall-
//! attribution identity — the three properties `ceu-trace par-report`
//! and the bench snapshots rely on.

use ceu::runtime::TraceEvent;
use wsn_sim::{write_par_stats_jsonl, Backend, MoteCtx, MoteId, Packet, Radio, Topology, World};

/// A mote that pings its peer every millisecond and traces one event per
/// callback, so runs produce both cross-window sends and a world trace.
struct Pinger {
    peer: MoteId,
}

impl Backend for Pinger {
    fn boot(&mut self, ctx: &mut MoteCtx) {
        ctx.vm_events.push(TraceEvent::Terminated { value: Some(-1) });
        ctx.set_timer_at(1_000);
    }
    fn deliver(&mut self, ctx: &mut MoteCtx, p: Packet) {
        ctx.vm_events.push(TraceEvent::Terminated { value: Some(p.value()) });
        ctx.leds.toggle(ctx.now, (p.value() % 3) as u8);
    }
    fn timer(&mut self, ctx: &mut MoteCtx) {
        ctx.vm_events.push(TraceEvent::Terminated { value: Some(ctx.now as i64) });
        ctx.send(self.peer, Packet::with_value(ctx.id, self.peer, ctx.now as i64));
        ctx.set_timer_at(ctx.now + 1_000);
        ctx.wants_cpu = true;
    }
    fn cpu(&mut self, _: &mut MoteCtx) {}
}

/// Lossy full-mesh medium: exercises the merge order and in-flight drops.
fn lossy_world() -> World {
    let mut w = World::new(Radio::new(Topology::Full, 700, 0.25, 9));
    w.enable_trace();
    for peer in [1, 2, 3, 0] {
        w.add_mote(Box::new(Pinger { peer }));
    }
    w.boot();
    w
}

#[test]
fn stats_collection_preserves_trace_bit_identity_across_thread_counts() {
    // reference: sequential fallback (threads=1) *with stats enabled*
    let mut base = lossy_world();
    base.enable_par_stats();
    base.run_until_parallel(40_000, 1);
    let stats = base.par_stats().expect("enabled");
    assert!(stats.fallback, "threads=1 falls back to the sequential stepper");
    assert!(stats.wall_ns > 0);
    let reference: Vec<String> = base.take_trace().iter().map(|e| e.to_json()).collect();
    assert!(!reference.is_empty());

    for threads in [2, 4] {
        let mut w = lossy_world();
        w.enable_par_stats();
        w.run_until_parallel(40_000, threads);
        let jsonl: Vec<String> = w.take_trace().iter().map(|e| e.to_json()).collect();
        assert_eq!(reference, jsonl, "threads={threads}: stats must not perturb the run");
        let stats = w.take_par_stats().expect("enabled");
        assert!(!stats.fallback);
        assert_eq!(stats.threads, threads as u32);
        assert!(stats.totals.windows > 0, "windows were recorded");
        assert_eq!(stats.totals.windows, stats.windows.len() as u64 + stats.dropped_windows);
        assert!(stats.totals.events > 0);
        assert!(stats.totals.cross_sends > 0, "pingers send across windows");
    }
}

#[test]
fn stall_attribution_sums_to_thread_time_per_window() {
    let mut w = lossy_world();
    w.enable_par_stats();
    w.run_until_parallel(40_000, 2);
    let stats = w.par_stats().expect("enabled");
    assert!(!stats.windows.is_empty());
    let mut agg = 0u64;
    for win in &stats.windows {
        let a = win.attribution();
        assert_eq!(
            a.total_ns(),
            win.threads as u64 * win.wall_ns(),
            "window {}: busy+imbalance+lookahead+barrier+merge must equal \
             threads x wall exactly",
            win.index
        );
        assert_eq!(win.threads, 2);
        assert_eq!(win.busy_ns.len(), win.workers as usize);
        assert_eq!(win.events_per_worker.len(), win.workers as usize);
        assert!(win.workers <= win.threads);
        assert_eq!(win.events, win.events_per_worker.iter().sum::<u64>());
        assert_eq!(win.motes, win.motes_per_worker.iter().sum::<u32>());
        assert!(win.start_us < win.end_us);
        agg += a.total_ns();
    }
    if stats.dropped_windows == 0 {
        // the run-level aggregate is the same identity, window-summed
        assert_eq!(agg, stats.totals.attribution.total_ns());
        assert_eq!(agg, 2 * stats.window_wall_ns());
    }
    // windows never account for more than the measured run wall-clock
    assert!(stats.window_wall_ns() <= stats.wall_ns);
    let u = stats.utilization();
    assert!((0.0..=1.0).contains(&u), "utilization {u} out of range");
    assert!(stats.achievable_speedup() >= 1.0);
}

#[test]
fn jsonl_export_is_schema_stable_golden() {
    let mut w = lossy_world();
    w.enable_par_stats();
    w.run_until_parallel(20_000, 2);
    let stats = w.take_par_stats().expect("enabled");
    let mut buf = Vec::new();
    write_par_stats_jsonl(&stats, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let mut lines = text.lines();

    let run: serde_json::Value = serde_json::from_str(lines.next().expect("run line")).unwrap();
    assert_eq!(run["schema"].as_str(), Some("ceu-par-stats/v2"));
    assert_eq!(run["kind"].as_str(), Some("run"));
    // the golden key set: additions are fine, removals/renames are a
    // schema break and must bump /v2
    for key in [
        "threads",
        "lookahead_us",
        "motes",
        "shards",
        "fallback",
        "wall_ns",
        "window_wall_ns",
        "windows",
        "dropped_windows",
        "events",
        "motes_stepped",
        "cross_sends",
        "heap_pushes",
        "heap_pops",
        "busy_ns",
        "imbalance_ns",
        "lookahead_ns",
        "barrier_ns",
        "merge_ns",
        "critical_busy_ns",
        "drain_wall_ns",
        "par_wall_ns",
        "merge_wall_ns",
    ] {
        assert!(run.get(key).is_some(), "run line lost key {key}");
    }
    let mut windows = 0u64;
    let mut shards = 0u64;
    for line in lines {
        let rec: serde_json::Value = serde_json::from_str(line).unwrap();
        assert_eq!(rec["schema"].as_str(), Some("ceu-par-stats/v2"));
        if rec["kind"].as_str() == Some("shard") {
            for key in
                ["shard", "motes", "windows", "events", "busy_ns", "cross_sends", "channel_wait_ns"]
            {
                assert!(rec.get(key).is_some(), "shard line lost key {key}");
            }
            assert_eq!(rec["shard"].as_u64(), Some(shards), "shard rows come in id order");
            shards += 1;
            continue;
        }
        let win = rec;
        assert_eq!(win["kind"].as_str(), Some("window"));
        for key in [
            "i",
            "t_wall_ns",
            "start_us",
            "end_us",
            "lookahead_us",
            "clipped",
            "threads",
            "workers",
            "motes",
            "events",
            "busy_ns",
            "events_per_worker",
            "motes_per_worker",
            "drain_ns",
            "par_ns",
            "merge_ns",
            "wall_ns",
            "heap_pushes",
            "heap_pops",
            "cross_sends",
            "sends",
            "shard_busy",
        ] {
            assert!(win.get(key).is_some(), "window line lost key {key}");
        }
        let wall = win["drain_ns"].as_u64().unwrap()
            + win["par_ns"].as_u64().unwrap()
            + win["merge_ns"].as_u64().unwrap();
        assert_eq!(win["wall_ns"].as_u64(), Some(wall));
        windows += 1;
    }
    assert_eq!(run["windows"].as_u64(), Some(windows));
    assert_eq!(run["shards"].as_u64(), Some(shards), "one shard line per shard");
    assert!(shards >= 2, "the 4-mote full mesh splits into multiple shards");
}

//! Flight-recorder semantics at the world level: recorded content is
//! bit-identical between the sequential and parallel steppers (faults
//! on), survives resharding, and crash dumps fire automatically.

use wsn_sim::{CeuMote, FaultPlan, Radio, RebootPolicy, Topology, World};

/// Three motes passing a counter around a ring; each kicks its own first
/// packet at boot, so traffic flows from time zero.
const RING: &str = r#"
    input _message_t* Radio_receive;
    par do
       loop do
          _message_t* msg = await Radio_receive;
          int* cnt = _Radio_getPayload(msg);
          _Leds_set(*cnt);
          *cnt = *cnt + 1;
          _Radio_send((_TOS_NODE_ID+1)%3, msg);
       end
    with
       _message_t msg;
       int* cnt = _Radio_getPayload(&msg);
       *cnt = _TOS_NODE_ID;
       _Radio_send((_TOS_NODE_ID+1)%3, &msg);
       await forever;
    end
"#;

/// A faulty world: ring traffic plus an injected crash/reboot cycle.
fn build(capacity: usize) -> World {
    let prog = ceu::Compiler::new().compile(RING).unwrap();
    let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 7));
    w.set_reboot_policy(RebootPolicy::After(2_000));
    for id in 0..3 {
        let mut mote = CeuMote::new(prog.clone(), id);
        mote.enable_trace();
        w.add_mote(Box::new(mote));
    }
    let plan = FaultPlan::parse("at 5000 crash 1\nat 12000 crash 2").unwrap();
    w.enable_flight_recorder(capacity);
    w.boot();
    w.set_fault_plan(&plan).unwrap();
    w
}

#[test]
fn recorded_content_is_bit_identical_seq_vs_parallel() {
    let mut seq = build(256);
    seq.run_until(30_000);
    let baseline = seq.flight_records();
    assert!(!baseline.is_empty(), "ring traffic must leave records");
    assert!(
        baseline.iter().any(|r| matches!(r.event, ceu::runtime::TraceEvent::MoteCrashed { .. })),
        "the fault plan's crash must be on the record"
    );
    for threads in [1, 2, 4] {
        let mut par = build(256);
        par.run_until_parallel(30_000, threads);
        assert_eq!(
            baseline,
            par.flight_records(),
            "recorder content diverged at {threads} thread(s)"
        );
    }
}

#[test]
fn tiny_rings_drop_identically_across_steppers() {
    // capacity small enough that every shard wraps: the *kept* suffix and
    // the drop counters must still agree between steppers, because each
    // ring consumes the identical per-shard stream
    let mut seq = build(8);
    seq.run_until(30_000);
    let (live, cap, dropped) = seq.flight_recorder_stats().expect("recorder on");
    assert!(dropped > 0, "capacity 8 must overflow on a 30ms ring run");
    assert!(live <= cap);
    let baseline = seq.flight_records();
    for threads in [2, 4] {
        let mut par = build(8);
        par.run_until_parallel(30_000, threads);
        assert_eq!(baseline, par.flight_records(), "wrapped rings diverged at {threads} threads");
        assert_eq!(seq.flight_recorder_stats(), par.flight_recorder_stats());
    }
}

#[test]
fn records_survive_resharding() {
    let mut w = build(256);
    w.run_until(8_000);
    let before = w.flight_records();
    assert!(!before.is_empty());
    // re-partition mid-run: rings are rebuilt and records re-routed to
    // their motes' new shards
    w.set_target_shards(3);
    w.run_until(9_000);
    let after = w.flight_records();
    assert!(
        after.len() >= before.len(),
        "resharding lost records: {} -> {}",
        before.len(),
        after.len()
    );
    assert_eq!(
        &after[..before.len()],
        &before[..],
        "surviving records must be unchanged and in canonical order"
    );
}

#[test]
fn crash_dump_fires_automatically_and_is_self_describing() {
    let dir = std::env::temp_dir().join(format!("ceu-blackbox-test-{}", std::process::id()));
    let path = dir.join("blackbox.jsonl");
    let mut w = build(64);
    w.set_blackbox_out(&path);
    w.run_until(30_000);
    let dump = std::fs::read_to_string(&path).expect("crash must have produced a dump");
    let mut lines = dump.lines();
    let header = lines.next().expect("dump has a header");
    assert!(header.contains("\"schema\":\"ceu-blackbox/v1\""), "{header}");
    assert!(header.contains("\"reason\":\"mote-crashed\""), "{header}");
    assert!(header.contains("\"kind\":\"fault-injected\""), "{header}");
    let rest: Vec<&str> = lines.collect();
    assert!(rest.iter().any(|l| l.starts_with("{\"blackbox\":\"shard\"")), "shard stats present");
    assert!(rest.iter().any(|l| l.starts_with("{\"blackbox\":\"mote\"")), "mote stats present");
    assert!(
        rest.iter().any(|l| l.starts_with("{\"t_us\":") && l.contains("\"ev\":{")),
        "ring records present in world-trace wire shape"
    );
    // explicit dumps work without a crash, to any path
    let manual = dir.join("manual.jsonl");
    w.write_blackbox_to(&manual, "operator-requested", None).unwrap();
    assert!(std::fs::read_to_string(&manual).unwrap().contains("operator-requested"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recorder_off_worlds_have_no_recorder_surface() {
    let prog = ceu::Compiler::new().compile(RING).unwrap();
    let mut w = World::new(Radio::new(Topology::Full, 1_000, 0.0, 7));
    for id in 0..3 {
        w.add_mote(Box::new(CeuMote::new(prog.clone(), id)));
    }
    w.boot();
    w.run_until(5_000);
    assert!(!w.flight_recorder_enabled());
    assert!(w.flight_records().is_empty());
    assert_eq!(w.flight_recorder_stats(), None);
}

//! Behavioural equivalence between the Céu Table-1 applications and their
//! nesC-analog counterparts: same observable LED behaviour on the same
//! virtual timeline — the premise of the paper's memory comparison ("by
//! using preexisting applications … we intend not to choose specific
//! scenarios that favor one language or the other").

use ceu::runtime::{HostResult, Value};
use ceu::Compiler;
use wsn_sim::nesc;
use wsn_sim::{CeuMote, Radio, World};

/// Blink in Céu (the bench corpus version, duplicated here to keep the
/// test self-contained).
const BLINK_CEU: &str = r#"
    deterministic _Leds_led0Toggle, _Leds_led1Toggle, _Leds_led2Toggle;
    par do
       loop do
          _Leds_led0Toggle();
          await 250ms;
       end
    with
       loop do
          _Leds_led1Toggle();
          await 500ms;
       end
    with
       loop do
          _Leds_led2Toggle();
          await 1s;
       end
    end
"#;

#[test]
fn blink_ceu_and_nesc_toggle_identically() {
    // Céu mote
    let prog = Compiler::new().compile(BLINK_CEU).unwrap();
    let mut w_ceu = World::new(Radio::ideal(0));
    w_ceu.add_mote(Box::new(CeuMote::new(prog, 0)));
    w_ceu.boot();
    w_ceu.run_until(10_000_000);

    // nesC mote
    let mut w_nesc = World::new(Radio::ideal(0));
    w_nesc.add_mote(Box::new(nesc::Blink::new()));
    w_nesc.boot();
    w_nesc.run_until(10_000_000);

    // same toggle grids per led — modulo the boot toggle: Céu toggles at
    // t=0 then every period; the nesC app starts its periodic timer at
    // boot, first fire after one period. Compare the *periods*.
    for led in 0..3u8 {
        let ts_ceu: Vec<u64> = w_ceu
            .leds(0)
            .history
            .iter()
            .filter(|(_, l, _)| *l == led)
            .map(|(t, _, _)| *t)
            .collect();
        let ts_nesc: Vec<u64> = w_nesc
            .leds(0)
            .history
            .iter()
            .filter(|(_, l, _)| *l == led)
            .map(|(t, _, _)| *t)
            .collect();
        let per_ceu: Vec<u64> = ts_ceu.windows(2).map(|w| w[1] - w[0]).collect();
        let per_nesc: Vec<u64> = ts_nesc.windows(2).map(|w| w[1] - w[0]).collect();
        let n = per_ceu.len().min(per_nesc.len());
        assert!(n >= 5, "led {led}: too few toggles");
        assert_eq!(per_ceu[..n], per_nesc[..n], "led {led} cadence differs");
    }
}

#[test]
fn sense_ceu_matches_nesc_readings() {
    // the Céu Sense app reads the same synthetic sensor through a host
    // hook; both implementations must display the same values over time
    const SENSE_CEU: &str = r#"
        loop do
           int v = _Read_read();
           _Leds_set(v & 7);
           await 100ms;
        end
    "#;
    let prog = Compiler::new().compile(SENSE_CEU).unwrap();
    let mut mote = CeuMote::new(prog, 0);
    // the same waveform the nesC-analog Sense samples, phase-shifted to
    // its own read instants
    let now = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
    {
        let now = now.clone();
        mote.host_mut().extra.insert(
            "Read_read".into(),
            Box::new(move |_args: &[Value]| -> Value {
                Value::Int(((now.load(std::sync::atomic::Ordering::Relaxed) / 1_000) % 1024) as i64)
            }),
        );
    }
    // track the clock for the closure via a wrapper backend
    struct Clocked {
        inner: CeuMote,
        now: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }
    impl wsn_sim::Backend for Clocked {
        fn boot(&mut self, ctx: &mut wsn_sim::MoteCtx) {
            self.now.store(ctx.now, std::sync::atomic::Ordering::Relaxed);
            self.inner.boot(ctx);
        }
        fn deliver(&mut self, ctx: &mut wsn_sim::MoteCtx, p: wsn_sim::Packet) {
            self.now.store(ctx.now, std::sync::atomic::Ordering::Relaxed);
            self.inner.deliver(ctx, p);
        }
        fn timer(&mut self, ctx: &mut wsn_sim::MoteCtx) {
            self.now.store(ctx.now, std::sync::atomic::Ordering::Relaxed);
            self.inner.timer(ctx);
        }
        fn cpu(&mut self, ctx: &mut wsn_sim::MoteCtx) {
            self.now.store(ctx.now, std::sync::atomic::Ordering::Relaxed);
            self.inner.cpu(ctx);
        }
    }
    let mut w_ceu = World::new(Radio::ideal(0));
    w_ceu.add_mote(Box::new(Clocked { inner: mote, now }));
    w_ceu.boot();
    w_ceu.run_until(2_000_000);

    let mut w_nesc = World::new(Radio::ideal(0));
    w_nesc.add_mote(Box::new(nesc::Sense::new()));
    w_nesc.boot();
    w_nesc.run_until(2_000_000);

    // the Céu app samples at t=0,100ms,…; the nesC app at t=100ms,200ms,…
    // — align on the shared instants and require identical masks
    let masks = |w: &World| -> std::collections::BTreeMap<u64, u8> {
        let mut out = std::collections::BTreeMap::new();
        let mut state = 0u8;
        for &(t, led, on) in &w.leds(0).history {
            if on {
                state |= 1 << led;
            } else {
                state &= !(1 << led);
            }
            out.insert(t, state);
        }
        out
    };
    let ceu = masks(&w_ceu);
    let nesc_m = masks(&w_nesc);
    let mut compared = 0;
    for (t, m) in &nesc_m {
        if let Some(cm) = ceu.get(t) {
            assert_eq!(cm, m, "t={t}");
            compared += 1;
        }
    }
    assert!(compared >= 5, "enough shared instants compared: {compared}");
}

/// `HostResult` is imported to keep the closure signature explicit above.
#[allow(dead_code)]
fn _sig(_: HostResult<()>) {}

//! Golden-shape tests: the compiled artifacts of the paper's §4 guiding
//! example match the structures the implementation section describes.

use ceu_codegen::{compile_source, GateKind, Op, Term};

const GUIDING: &str = r#"
    input int A, B;
    input void C;
    int ret;
    loop do
       par/or do
          int a = await A;
          int b = await B;
          ret = a + b;
          break;
       with
          par/and do
             await C;
          with
             await A;
          end
       end
    end
    _after();
"#;

#[test]
fn four_gates_in_declaration_order() {
    // §4.3: "there is one gate for each of the four await statements",
    // and "when the event A occurs, its list of two gates is traversed"
    let p = compile_source(GUIDING).unwrap();
    assert_eq!(p.gates.len(), 4);
    let a = p.events.lookup("A").unwrap();
    let b = p.events.lookup("B").unwrap();
    let c = p.events.lookup("C").unwrap();
    assert_eq!(p.gates_of_event(a).count(), 2, "A has two gates");
    assert_eq!(p.gates_of_event(b).count(), 1);
    assert_eq!(p.gates_of_event(c).count(), 1);
}

#[test]
fn memory_reuses_loop_slots_after_it() {
    // §4.2: "the code following the loop reuses all memory from the loop";
    // locals a and b of the first trail need temporary slots
    let p = compile_source(GUIDING).unwrap();
    let a = p.slots.iter().find(|s| s.name.starts_with("a#")).unwrap();
    let b = p.slots.iter().find(|s| s.name.starts_with("b#")).unwrap();
    let ret = p.slots.iter().find(|s| s.name.starts_with("ret#")).unwrap();
    // ret is declared in the outer block, before the loop → slot 0; the
    // trail locals live inside the loop, after it
    assert_eq!(ret.slot, 0);
    assert!(a.slot >= 1 && b.slot >= 1);
    assert_ne!(a.slot, b.slot, "a and b coexist within the trail");
    // the par/and flags of the second arm coexist with the first arm
    assert!(p.slots.iter().any(|s| s.name.starts_with("#flag")));
}

#[test]
fn await_sequence_splits_into_three_parts() {
    // §4.4: "the generated code must be split in three parts: before
    // awaiting A, before awaiting B, and finally performing the addition"
    let p =
        compile_source("input int A, B;\nint a, b, ret;\na = await A;\nb = await B;\nret = a + b;")
            .unwrap();
    // part 1 (boot) arms gate A and halts
    let boot = p.block(p.boot);
    assert!(matches!(boot.instrs.last().unwrap().op, Op::ActivateEvt { .. }));
    assert_eq!(boot.term, Term::Halt);
    // part 2 stores A's value and arms gate B
    let aft_a = p.block(p.gate(0).cont);
    assert!(aft_a.instrs.iter().any(|i| matches!(i.op, Op::Assign { .. })));
    assert!(aft_a.instrs.iter().any(|i| matches!(i.op, Op::ActivateEvt { gate: 1 })));
    assert_eq!(aft_a.term, Term::Halt);
    // part 3 performs the addition and ends the program
    let aft_b = p.block(p.gate(1).cont);
    assert!(aft_b.instrs.iter().any(|i| matches!(i.op, Op::Assign { .. })));
    assert!(matches!(aft_b.term, Term::TerminateProgram { .. }));
}

#[test]
fn par_region_is_killable_with_one_range() {
    // §4.3: "gates in parallel trails use consecutive memory slots, hence,
    // destroying trails in parallel is as easy as setting the respective
    // range of gate slots to zero"
    let p = compile_source(GUIDING).unwrap();
    let par_or = p.regions.iter().find(|r| r.label == "par/or").unwrap();
    assert_eq!((par_or.lo, par_or.hi), (0, 4), "the par/or owns all four gates");
    let looped = p.regions.iter().find(|r| r.label == "loop").unwrap();
    assert!(looped.lo <= par_or.lo && par_or.hi <= looped.hi, "regions nest");
}

#[test]
fn timer_gates_carry_their_kind() {
    let p = compile_source("await 10ms;\nawait 1s;").unwrap();
    assert!(p.gates.iter().all(|g| g.kind == GateKind::Timer));
    // activations carry constant µs amounts
    let mut consts = vec![];
    for b in &p.blocks {
        for i in &b.instrs {
            if let Op::ActivateTime { us: ceu_codegen::TimeAmount::Const(c), .. } = &i.op {
                consts.push(*c);
            }
        }
    }
    assert_eq!(consts, vec![10_000, 1_000_000]);
}

#[test]
fn ir_display_is_readable() {
    let p = compile_source("input void A;\nawait A;").unwrap();
    let dump = p.to_string();
    assert!(dump.contains("boot"), "{dump}");
    assert!(dump.contains("ActivateEvt"), "{dump}");
    assert!(dump.contains("=> Halt"), "{dump}");
}

#[test]
fn instruction_count_is_stable_for_the_guiding_example() {
    // a coarse golden value: large refactors that change code size for the
    // same source will trip this (update deliberately when they do)
    let p = compile_source(GUIDING).unwrap();
    let instrs = p.instr_count();
    assert!((20..=60).contains(&instrs), "guiding example instruction count drifted: {instrs}");
}

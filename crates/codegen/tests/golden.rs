//! Golden-snapshot tests for the two source backends.
//!
//! Both `emit_c` and `emit_rust` must be byte-stable functions of the
//! `CompiledProgram` — the native-corpus build script and the committed
//! generated-crate harness rely on it. These tests pin the exact emitted
//! text for a pair of small representative programs so an accidental
//! formatting or ordering change in either backend shows up as a diff,
//! not as a mystery rebuild of `crates/native-corpus`.
//!
//! Snapshots live in `tests/golden/` and are committed. To regenerate
//! after an intentional backend change:
//!
//! ```text
//! UPDATE_SNAPSHOTS=1 cargo test -p ceu-codegen --test golden
//! ```
//!
//! Programs are compiled with `compile_source` (no optimizer) so the
//! snapshots track the backends alone, not the optimizer's rewrites.

use std::fs;
use std::path::PathBuf;

/// Small programs chosen to exercise the interesting emission paths:
/// `await_pair` is the paper's §4.4 example (gate activation, event
/// dispatch, straight-line arithmetic — the i64 fast path in the Rust
/// backend); `par_or_kill` adds regions (memset kill in C,
/// `ClearRegion` trap in Rust) and spawn ranking.
const GOLDEN_PROGRAMS: &[(&str, &str)] = &[
    ("await_pair", "input int A, B;\nint a, b, ret;\na = await A;\nb = await B;\nret = a + b;"),
    ("par_or_kill", "input void A, B;\npar/or do\n await A;\nwith\n await B;\nend\nawait B;"),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden")
}

fn check(name: &str, ext: &str, actual: &str) {
    let path = golden_dir().join(format!("{name}.{ext}"));
    if std::env::var_os("UPDATE_SNAPSHOTS").is_some() {
        fs::create_dir_all(golden_dir()).unwrap();
        fs::write(&path, actual).unwrap();
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); regenerate with \
             UPDATE_SNAPSHOTS=1 cargo test -p ceu-codegen --test golden",
            path.display()
        )
    });
    assert_eq!(
        expected, actual,
        "{name}.{ext} drifted from its golden snapshot; if the backend \
         change is intentional, regenerate with \
         UPDATE_SNAPSHOTS=1 cargo test -p ceu-codegen --test golden"
    );
}

#[test]
fn emitted_c_matches_the_goldens() {
    for (name, src) in GOLDEN_PROGRAMS {
        let p = ceu_codegen::compile_source(src).unwrap();
        check(name, "c", &ceu_codegen::cbackend::emit_c(&p));
    }
}

#[test]
fn emitted_rust_matches_the_goldens() {
    for (name, src) in GOLDEN_PROGRAMS {
        let p = ceu_codegen::compile_source(src).unwrap();
        check(name, "rs", &ceu_codegen::rsbackend::emit_rust(&p));
    }
}

#[test]
fn emission_is_deterministic_across_calls() {
    // The unit test in rsbackend pins two successive emissions equal;
    // this integration-level version covers both backends over the
    // golden programs, guarding against map-iteration-order leaks.
    for (name, src) in GOLDEN_PROGRAMS {
        let p = ceu_codegen::compile_source(src).unwrap();
        assert_eq!(
            ceu_codegen::cbackend::emit_c(&p),
            ceu_codegen::cbackend::emit_c(&p),
            "{name}: emit_c must be deterministic"
        );
        assert_eq!(
            ceu_codegen::rsbackend::emit_rust(&p),
            ceu_codegen::rsbackend::emit_rust(&p),
            "{name}: emit_rust must be deterministic"
        );
    }
}

//! Flat (postfix) expression code — the compile-time half of the
//! table-driven kernel (§4 of the paper).
//!
//! [`lower`](crate::lower) interns every [`Rv`] expression tree that an
//! instruction embeds into a [`FlatPool`]: a single linear `Vec<FlatOp>`
//! shared by the whole program, addressed per expression by [`ExprId`].
//! The runtime evaluates an expression by walking its contiguous op
//! range with an explicit value stack — no per-node recursion, no `Box`
//! chasing, and no allocation for the common paths.
//!
//! The original trees are kept side-by-side in
//! [`CompiledProgram::exprs`](crate::ir::CompiledProgram::exprs): the C
//! backend and the determinism analysis still walk them, and the runtime
//! exposes a tree-walking evaluator as an ablation so the two forms can
//! be differentially tested against each other.
//!
//! Encoding notes:
//! * operands are pushed left-to-right; an operator pops its arity;
//! * `a && b` / `a || b` keep C short-circuit semantics via
//!   [`FlatOp::ShortAnd`]/[`FlatOp::ShortOr`] — pop the left value and
//!   either push the decided result and skip the right-hand ops, or fall
//!   through into them (a trailing [`FlatOp::Truthy`] coerces the
//!   right-hand value to 0/1);
//! * `sizeof<T>` and casts are resolved at flatten time: the size is a
//!   constant and numeric casts are value-preserving at runtime.

use crate::ir::{ExprId, Rv, SlotId};
use ceu_ast::{BinOp, EventId, UnOp};
use std::sync::Arc;

/// One postfix op. Strings are `Arc<str>` so evaluating them is a
/// refcount bump, not an allocation, and the pool stays `Send + Sync`.
#[derive(Clone, Debug, PartialEq)]
pub enum FlatOp {
    /// Push an integer constant (also `sizeof`, resolved at compile time).
    Const(i64),
    /// Push a string constant.
    Str(Arc<str>),
    /// Push `null`.
    Null,
    /// Push the value of a data slot.
    Slot(SlotId),
    /// Push the address of a data slot (array decay / `&v`).
    AddrOf(SlotId),
    /// Push the last value carried by an event.
    EventVal(EventId),
    /// Push a C global, via the host.
    CGlobal(Arc<str>),
    /// Pop one, apply a unary operator, push the result.
    Un(UnOp),
    /// Pop two (right on top), apply a binary operator, push the result.
    Bin(BinOp),
    /// `&&` short-circuit: pop the left value; if falsy, push `0` and
    /// skip the next `n` ops (the right operand); else fall through.
    ShortAnd(u32),
    /// `||` short-circuit: pop the left value; if truthy, push `1` and
    /// skip the next `n` ops; else fall through.
    ShortOr(u32),
    /// Pop one, push its C truth value (0/1).
    Truthy,
    /// Pop index then base, push `base[idx]`.
    Index,
    /// Pop the top `argc` values (in push order) and call into the host.
    CCall { name: Arc<str>, argc: u32 },
    /// Pop a pointer, push the pointee.
    Deref,
    /// Pop a host value, push `base.f` / `base->f`.
    Field { name: Arc<str>, arrow: bool },
}

/// The program-wide flat code pool. One contiguous `code` vector; each
/// interned expression owns the half-open range `ranges[id]`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FlatPool {
    pub code: Vec<FlatOp>,
    /// Per-[`ExprId`] `[start, end)` ranges into `code`.
    pub ranges: Vec<(u32, u32)>,
    /// Per-[`ExprId`] maximum operand-stack depth, precomputed at intern
    /// time so the runtime can size its eval stack without ever probing.
    pub depths: Vec<u32>,
    /// Maximum of `depths`: the operand-stack reserve that makes every
    /// expression in the program evaluable without reallocation.
    pub max_stack: u32,
}

impl FlatPool {
    /// Flattens one tree into the pool and returns its id. The caller
    /// (the lowerer) keeps the tree itself in `CompiledProgram::exprs`
    /// at the same index.
    pub fn intern(&mut self, rv: &Rv) -> ExprId {
        let start = self.code.len() as u32;
        flatten(rv, &mut self.code);
        let id = self.ranges.len() as ExprId;
        self.ranges.push((start, self.code.len() as u32));
        let depth = stack_depth(&self.code[start as usize..]);
        self.depths.push(depth);
        self.max_stack = self.max_stack.max(depth);
        id
    }

    /// The postfix code of one expression.
    #[inline]
    pub fn code_of(&self, id: ExprId) -> &[FlatOp] {
        let (lo, hi) = self.ranges[id as usize];
        &self.code[lo as usize..hi as usize]
    }

    /// Number of interned expressions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// Maximum operand-stack depth reached while evaluating `code`.
///
/// A linear walk is exact: the only jumps are `ShortAnd`/`ShortOr` skips,
/// and the skipped (decided) path ends at the same depth as the
/// fall-through path while never exceeding it.
fn stack_depth(code: &[FlatOp]) -> u32 {
    let mut depth: i64 = 0;
    let mut max: i64 = 0;
    for op in code {
        depth += match op {
            FlatOp::Const(_)
            | FlatOp::Str(_)
            | FlatOp::Null
            | FlatOp::Slot(_)
            | FlatOp::AddrOf(_)
            | FlatOp::EventVal(_)
            | FlatOp::CGlobal(_) => 1,
            FlatOp::Un(_) | FlatOp::Truthy | FlatOp::Deref | FlatOp::Field { .. } => 0,
            FlatOp::Bin(_) | FlatOp::Index | FlatOp::ShortAnd(_) | FlatOp::ShortOr(_) => -1,
            FlatOp::CCall { argc, .. } => 1 - *argc as i64,
        };
        max = max.max(depth);
    }
    max as u32
}

/// Appends the postfix form of `rv` to `code`.
fn flatten(rv: &Rv, code: &mut Vec<FlatOp>) {
    match rv {
        Rv::Const(n) => code.push(FlatOp::Const(*n)),
        Rv::Str(s) => code.push(FlatOp::Str(Arc::from(s.as_str()))),
        Rv::Null => code.push(FlatOp::Null),
        Rv::Slot(s) => code.push(FlatOp::Slot(*s)),
        Rv::AddrOf(s) => code.push(FlatOp::AddrOf(*s)),
        Rv::EventVal(e) => code.push(FlatOp::EventVal(*e)),
        Rv::CGlobal(n) => code.push(FlatOp::CGlobal(Arc::from(n.as_str()))),
        Rv::Un(op, a) => {
            flatten(a, code);
            code.push(FlatOp::Un(*op));
        }
        Rv::Bin(op @ (BinOp::And | BinOp::Or), a, b) => {
            flatten(a, code);
            let patch = code.len();
            // placeholder skip count, patched once the right side is laid out
            code.push(if *op == BinOp::And { FlatOp::ShortAnd(0) } else { FlatOp::ShortOr(0) });
            flatten(b, code);
            code.push(FlatOp::Truthy);
            let skip = (code.len() - patch - 1) as u32;
            code[patch] = match op {
                BinOp::And => FlatOp::ShortAnd(skip),
                _ => FlatOp::ShortOr(skip),
            };
        }
        Rv::Bin(op, a, b) => {
            flatten(a, code);
            flatten(b, code);
            code.push(FlatOp::Bin(*op));
        }
        Rv::Index(base, idx) => {
            flatten(base, code);
            flatten(idx, code);
            code.push(FlatOp::Index);
        }
        Rv::CCall(name, args) => {
            for a in args {
                flatten(a, code);
            }
            code.push(FlatOp::CCall { name: Arc::from(name.as_str()), argc: args.len() as u32 });
        }
        Rv::Deref(p) => {
            flatten(p, code);
            code.push(FlatOp::Deref);
        }
        Rv::SizeOf(n) => code.push(FlatOp::Const(*n as i64)),
        Rv::Field(base, name, arrow) => {
            flatten(base, code);
            code.push(FlatOp::Field { name: Arc::from(name.as_str()), arrow: *arrow });
        }
        Rv::Cast(a) => flatten(a, code), // value-preserving at runtime
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool_of(rv: &Rv) -> Vec<FlatOp> {
        let mut p = FlatPool::default();
        let id = p.intern(rv);
        p.code_of(id).to_vec()
    }

    #[test]
    fn postfix_order_left_to_right() {
        let rv = Rv::Bin(
            BinOp::Add,
            Box::new(Rv::Slot(0)),
            Box::new(Rv::Bin(BinOp::Mul, Box::new(Rv::Const(2)), Box::new(Rv::Slot(1)))),
        );
        assert_eq!(
            pool_of(&rv),
            vec![
                FlatOp::Slot(0),
                FlatOp::Const(2),
                FlatOp::Slot(1),
                FlatOp::Bin(BinOp::Mul),
                FlatOp::Bin(BinOp::Add),
            ]
        );
    }

    #[test]
    fn short_circuit_and_skips_right_operand() {
        let rv = Rv::Bin(BinOp::And, Box::new(Rv::Slot(0)), Box::new(Rv::Slot(1)));
        let code = pool_of(&rv);
        // Slot(0) ShortAnd(2) Slot(1) Truthy — the skip jumps past both
        // the right operand and its coercion
        assert_eq!(
            code,
            vec![FlatOp::Slot(0), FlatOp::ShortAnd(2), FlatOp::Slot(1), FlatOp::Truthy]
        );
    }

    #[test]
    fn sizeof_and_cast_resolve_at_flatten_time() {
        let rv = Rv::Cast(Box::new(Rv::SizeOf(2)));
        assert_eq!(pool_of(&rv), vec![FlatOp::Const(2)]);
    }

    #[test]
    fn stack_depths_are_precomputed_per_expression() {
        let mut p = FlatPool::default();
        // a + b*c: operands stack up to 3 deep before the Mul pops
        let deep = Rv::Bin(
            BinOp::Add,
            Box::new(Rv::Slot(0)),
            Box::new(Rv::Bin(BinOp::Mul, Box::new(Rv::Slot(1)), Box::new(Rv::Slot(2)))),
        );
        let a = p.intern(&Rv::Const(7));
        let b = p.intern(&deep);
        assert_eq!(p.depths[a as usize], 1);
        assert_eq!(p.depths[b as usize], 3);
        assert_eq!(p.max_stack, 3);
    }

    #[test]
    fn short_circuit_depth_counts_the_fallthrough_path() {
        // a && b: ShortAnd pops the lhs, so the rhs peaks at depth 1 again
        let mut p = FlatPool::default();
        let id = p.intern(&Rv::Bin(BinOp::And, Box::new(Rv::Slot(0)), Box::new(Rv::Slot(1))));
        assert_eq!(p.depths[id as usize], 1);
    }

    #[test]
    fn ccall_depth_accounts_for_arguments() {
        let mut p = FlatPool::default();
        let id = p.intern(&Rv::CCall("f".into(), vec![Rv::Const(1), Rv::Const(2), Rv::Const(3)]));
        assert_eq!(p.depths[id as usize], 3);
    }

    #[test]
    fn ranges_are_contiguous_per_expression() {
        let mut p = FlatPool::default();
        let a = p.intern(&Rv::Const(1));
        let b = p.intern(&Rv::Un(UnOp::Neg, Box::new(Rv::Const(2))));
        assert_eq!(p.code_of(a), &[FlatOp::Const(1)]);
        assert_eq!(p.code_of(b), &[FlatOp::Const(2), FlatOp::Un(UnOp::Neg)]);
        assert_eq!(p.len(), 2);
    }
}

//! AST → track/gate IR lowering (§4.4).
//!
//! The generated-code shape follows the paper: every `await` splits the
//! current track; parallel compositions enqueue one track per arm and
//! halt; `par/or` and loop terminations go through low-priority *escape*
//! blocks that clear the composition's gate region and then continue.

use crate::flat::FlatPool;
use crate::ir::*;
use crate::layout::{self, Layout};
use ceu_ast::{AssignRhs, Block, Expr, ExprKind, ParKind, Resolved, Span, Stmt, StmtKind, UnOp};
use std::fmt;

/// A lowering error (constructs the runtime cannot express).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    pub span: Span,
    pub message: String,
}

impl CompileError {
    fn new(span: Span, message: impl Into<String>) -> Self {
        CompileError { span, message: message.into() }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for CompileError {}

type Result<T> = std::result::Result<T, CompileError>;

/// Where `return` goes.
#[derive(Clone)]
enum Ret {
    /// Top level: terminate the program.
    Program,
    /// Inside an `async` body: terminate the async.
    Async,
    /// Inside a value block: store to `result`, escape through `esc`.
    Value { result: SlotId, esc: BlockId },
}

/// Control-flow targets live while lowering a statement sequence.
#[derive(Clone)]
struct Flow {
    loop_esc: Option<BlockId>,
    ret: Ret,
}

struct Lower<'a> {
    resolved: &'a Resolved,
    layout: &'a Layout,
    blocks: Vec<BBlock>,
    gates: Vec<GateInfo>,
    regions: Vec<RegionInfo>,
    asyncs: Vec<AsyncBlock>,
    suspends: Vec<SuspendInfo>,
    c_code: String,
    /// Interned expression trees (indexed by `ExprId`).
    exprs: Vec<Rv>,
    /// Postfix code for the same expressions.
    flat: FlatPool,
    region_stack: Vec<RegionId>,
    /// Nesting depth of rank-carrying constructs (loops, par/or, value blocks).
    depth: u8,
    in_async: bool,
}

/// Compiles a resolved program into the track/gate IR.
pub fn compile(resolved: &Resolved) -> Result<CompiledProgram> {
    let layout = layout::layout(&resolved.program, &resolved.vars);
    compile_with_layout(resolved, &layout)
}

/// Like [`compile`] but reuses a precomputed layout.
pub fn compile_with_layout(resolved: &Resolved, layout: &Layout) -> Result<CompiledProgram> {
    let mut lw = Lower {
        resolved,
        layout,
        blocks: Vec::new(),
        gates: Vec::new(),
        regions: Vec::new(),
        asyncs: Vec::new(),
        suspends: Vec::new(),
        c_code: String::new(),
        exprs: Vec::new(),
        flat: FlatPool::default(),
        region_stack: Vec::new(),
        depth: 0,
        in_async: false,
    };
    let boot = lw.new_block("boot", 0);
    let flow = Flow { loop_esc: None, ret: Ret::Program };
    let end = lw.lower_seq(&resolved.program.block.stmts, boot, &flow)?;
    if let Some(b) = end {
        lw.blocks[b as usize].term = Term::TerminateProgram { value: None };
    }
    let dispatch =
        Dispatch::build(&lw.gates, &lw.regions, &lw.suspends, &layout.slots, resolved.events.len());
    let debug = DebugMap::build(&lw.blocks);
    Ok(CompiledProgram {
        blocks: lw.blocks,
        boot,
        gates: lw.gates,
        regions: lw.regions,
        events: resolved.events.clone(),
        slots: layout.slots.clone(),
        data_len: layout.data_len,
        annotations: resolved.annotations.clone(),
        asyncs: lw.asyncs,
        suspends: lw.suspends,
        c_code: lw.c_code,
        exprs: lw.exprs,
        flat: lw.flat,
        dispatch,
        debug,
    })
}

impl<'a> Lower<'a> {
    fn new_block(&mut self, label: impl Into<String>, rank: u8) -> BlockId {
        let id = self.blocks.len() as BlockId;
        self.blocks.push(BBlock {
            label: label.into(),
            instrs: Vec::new(),
            term: Term::Halt,
            rank,
            regions: if self.in_async { Vec::new() } else { self.region_stack.clone() },
        });
        id
    }

    fn push(&mut self, b: BlockId, span: Span, op: Op) {
        self.blocks[b as usize].instrs.push(Instr { span, op });
    }

    fn term(&mut self, b: BlockId, t: Term) {
        self.blocks[b as usize].term = t;
    }

    fn new_gate(&mut self, kind: GateKind, cont: BlockId, span: Span) -> GateId {
        let id = self.gates.len() as GateId;
        self.gates.push(GateInfo { kind, cont, span });
        id
    }

    /// Interns a lowered expression: keeps the tree and flattens it into
    /// the postfix pool under the same id.
    fn intern(&mut self, rv: Rv) -> ExprId {
        let id = self.flat.intern(&rv);
        debug_assert_eq!(id as usize, self.exprs.len());
        self.exprs.push(rv);
        id
    }

    /// Lowers an AST expression and interns it in one step.
    fn lower_rv(&mut self, e: &Expr) -> Result<ExprId> {
        let rv = self.lower_expr(e)?;
        Ok(self.intern(rv))
    }

    /// Rank for an escape block at the current depth: outer constructs get
    /// *higher* numbers and run later (paper: "the outer, the lower
    /// [priority]").
    fn esc_rank(&self) -> u8 {
        255u8.saturating_sub(self.depth)
    }

    fn open_region(&mut self, label: impl Into<String>) -> RegionId {
        let id = self.regions.len() as RegionId;
        self.regions.push(RegionInfo {
            lo: self.gates.len() as GateId,
            hi: self.gates.len() as GateId,
            label: label.into(),
        });
        self.region_stack.push(id);
        id
    }

    fn close_region(&mut self, id: RegionId) {
        self.regions[id as usize].hi = self.gates.len() as GateId;
        let popped = self.region_stack.pop();
        debug_assert_eq!(popped, Some(id));
    }

    fn lower_seq(
        &mut self,
        stmts: &[Stmt],
        mut cur: BlockId,
        flow: &Flow,
    ) -> Result<Option<BlockId>> {
        for stmt in stmts {
            match self.lower_stmt(stmt, cur, flow)? {
                Some(next) => cur = next,
                // control never falls through; the rest of the sequence is
                // unreachable (e.g. code after `await forever`)
                None => return Ok(None),
            }
        }
        Ok(Some(cur))
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: BlockId, flow: &Flow) -> Result<Option<BlockId>> {
        let span = stmt.span;
        match &stmt.kind {
            StmtKind::Nothing
            | StmtKind::InputDecl { .. }
            | StmtKind::InternalDecl { .. }
            | StmtKind::OutputDecl { .. }
            | StmtKind::VarDecl { .. }
            | StmtKind::Pure { .. }
            | StmtKind::Deterministic { .. } => Ok(Some(cur)),

            StmtKind::CBlock { code } => {
                self.c_code.push_str(code);
                self.c_code.push('\n');
                Ok(Some(cur))
            }

            StmtKind::AwaitEvt { name } => {
                let cont = self.await_event(cur, name, span)?;
                Ok(Some(cont))
            }
            StmtKind::AwaitTime { time } => {
                Ok(Some(self.await_time(cur, TimeAmount::Const(time.us), span)))
            }
            StmtKind::AwaitExpr { us } => {
                let amount = TimeAmount::Dyn(self.lower_rv(us)?);
                Ok(Some(self.await_time(cur, amount, span)))
            }
            StmtKind::AwaitForever => {
                let gate = self.new_gate(GateKind::Never, cur, span);
                self.push(cur, span, Op::ActivateNever { gate });
                self.term(cur, Term::Halt);
                Ok(None)
            }

            StmtKind::EmitEvt { name, value } => {
                let eid = self.resolved.events.lookup(name).expect("resolved event");
                let value = value.as_ref().map(|v| self.lower_rv(v)).transpose()?;
                let kind = self.resolved.events.get(eid).kind;
                if kind == ceu_ast::EventKind::Output {
                    self.push(cur, span, Op::EmitOut { event: eid, value });
                    Ok(Some(cur))
                } else if kind == ceu_ast::EventKind::Input {
                    self.push(cur, span, Op::EmitExt { event: eid, value });
                    Ok(Some(cur))
                } else {
                    // an internal emit suspends the emitter until the
                    // awakened trails finish reacting (stack policy) — keep
                    // it as the last instruction of its track so the
                    // temporal analysis can model the suspension
                    self.push(cur, span, Op::EmitInt { event: eid, value });
                    let cont = self.new_block(format!("aft.emit.{name}"), 0);
                    self.term(cur, Term::Goto(cont));
                    Ok(Some(cont))
                }
            }
            StmtKind::EmitTime { time } => {
                self.push(cur, span, Op::EmitTime(TimeAmount::Const(time.us)));
                Ok(Some(cur))
            }

            StmtKind::If { cond, then_blk, else_blk } => {
                let cond = self.lower_rv(cond)?;
                let then_b = self.new_block("if.then", 0);
                let else_b = self.new_block("if.else", 0);
                self.term(cur, Term::If { cond, then_b, else_b });
                let t_end = self.lower_seq(&then_blk.stmts, then_b, flow)?;
                let e_end = match else_blk {
                    Some(e) => self.lower_seq(&e.stmts, else_b, flow)?,
                    None => Some(else_b),
                };
                match (t_end, e_end) {
                    (None, None) => Ok(None),
                    _ => {
                        let merge = self.new_block("if.end", 0);
                        if let Some(b) = t_end {
                            self.term(b, Term::Goto(merge));
                        }
                        if let Some(b) = e_end {
                            self.term(b, Term::Goto(merge));
                        }
                        Ok(Some(merge))
                    }
                }
            }

            StmtKind::Loop { body } => self.lower_loop(body, cur, flow),

            StmtKind::Break => {
                let Some(esc) = flow.loop_esc else {
                    return Err(CompileError::new(span, "`break` outside of a loop"));
                };
                if self.in_async {
                    self.term(cur, Term::Goto(esc));
                } else {
                    self.push(cur, span, Op::Spawn(esc));
                    self.term(cur, Term::Halt);
                }
                Ok(None)
            }

            StmtKind::Par { kind, arms } => self.lower_par(stmt, *kind, arms, cur, flow, None),

            StmtKind::Call { expr } => {
                let rv = self.lower_rv(expr)?;
                self.push(cur, span, Op::Eval(rv));
                Ok(Some(cur))
            }

            StmtKind::Assign { lhs, rhs } => self.lower_assign(stmt, lhs, rhs, cur, flow),

            StmtKind::Return { value } => {
                let value = value.as_ref().map(|v| self.lower_rv(v)).transpose()?;
                match &flow.ret {
                    Ret::Program => self.term(cur, Term::TerminateProgram { value }),
                    Ret::Async => self.term(cur, Term::TerminateAsync { value }),
                    Ret::Value { result, esc } => {
                        if let Some(v) = value {
                            self.push(cur, span, Op::Assign { dst: Place::Slot(*result), src: v });
                        }
                        if self.in_async {
                            self.term(cur, Term::Goto(*esc));
                        } else {
                            self.push(cur, span, Op::Spawn(*esc));
                            self.term(cur, Term::Halt);
                        }
                    }
                }
                Ok(None)
            }

            StmtKind::DoBlock { body } => self.lower_seq(&body.stmts, cur, flow),

            StmtKind::Suspend { event, body } => {
                if self.in_async {
                    return Err(CompileError::new(span, "`suspend` inside `async`"));
                }
                let eid = self.resolved.events.lookup(event).ok_or_else(|| {
                    CompileError::new(span, format!("undeclared event `{event}`"))
                })?;
                // the body's gates form a region the runtime can gate on
                let region = self.open_region("suspend");
                let end = self.lower_seq(&body.stmts, cur, flow)?;
                self.close_region(region);
                self.suspends.push(SuspendInfo { event: eid, region });
                Ok(end)
            }

            StmtKind::Async { body } => {
                let cont = self.lower_async(body, None, cur, span)?;
                Ok(Some(cont))
            }
        }
    }

    fn await_event(&mut self, cur: BlockId, name: &str, span: Span) -> Result<BlockId> {
        let eid = self
            .resolved
            .events
            .lookup(name)
            .ok_or_else(|| CompileError::new(span, format!("undeclared event `{name}`")))?;
        let cont = self.new_block(format!("aft.{name}"), 0);
        let gate = self.new_gate(GateKind::Evt(eid), cont, span);
        self.push(cur, span, Op::ActivateEvt { gate });
        self.term(cur, Term::Halt);
        Ok(cont)
    }

    fn await_time(&mut self, cur: BlockId, us: TimeAmount, span: Span) -> BlockId {
        let cont = self.new_block("aft.time", 0);
        let gate = self.new_gate(GateKind::Timer, cont, span);
        self.push(cur, span, Op::ActivateTime { gate, us });
        self.term(cur, Term::Halt);
        cont
    }

    fn lower_loop(&mut self, body: &Block, cur: BlockId, flow: &Flow) -> Result<Option<BlockId>> {
        let after = self.new_block("loop.end", 0);
        let esc = self.new_block("loop.esc", self.esc_rank());
        let region = self.open_region("loop");
        self.depth += 1;
        let entry = self.new_block("loop", 0);
        self.term(cur, Term::Goto(entry));
        let flow = Flow { loop_esc: Some(esc), ret: flow.ret.clone() };
        let body_end = self.lower_seq(&body.stmts, entry, &flow)?;
        if let Some(b) = body_end {
            self.term(b, Term::Goto(entry));
        }
        self.depth -= 1;
        self.close_region(region);
        self.push_front(esc, Op::ClearRegion(region));
        self.term(esc, Term::Goto(after));
        Ok(Some(after))
    }

    fn push_front(&mut self, b: BlockId, op: Op) {
        let span = Span::default();
        self.blocks[b as usize].instrs.insert(0, Instr { span, op });
    }

    fn lower_par(
        &mut self,
        stmt: &Stmt,
        kind: ParKind,
        arms: &[Block],
        cur: BlockId,
        flow: &Flow,
        value: Option<(&Expr, SlotId)>,
    ) -> Result<Option<BlockId>> {
        let span = stmt.span;
        if self.in_async {
            return Err(CompileError::new(span, "parallel compositions inside `async`"));
        }
        let hidden = self.layout.hidden.get(&stmt.id).copied().unwrap_or_default();
        let after = self.new_block("par.end", 0);

        // escape block: used by `return` inside value blocks, by arm
        // completion in par/or, and as the par/and rejoin continuation for
        // value-position par/ands
        let needs_esc = kind == ParKind::Or || value.is_some();
        let esc = if needs_esc { Some(self.new_block("par.esc", self.esc_rank())) } else { None };

        let region = self.open_region(kind.keyword());
        self.depth += 1;

        // fork: reset flags, zero the result, spawn one track per arm
        if let Some((lo, n)) = hidden.flags {
            self.push(cur, span, Op::ClearFlags { lo, hi: lo + n });
        }
        if let Some((_, result)) = value {
            let zero = self.intern(Rv::Const(0));
            self.push(cur, span, Op::Assign { dst: Place::Slot(result), src: zero });
        }
        let entries: Vec<BlockId> =
            (0..arms.len()).map(|i| self.new_block(format!("par.arm{i}"), 0)).collect();
        for &e in &entries {
            self.push(cur, span, Op::Spawn(e));
        }
        self.term(cur, Term::Halt);

        let inner_ret = match (&value, esc) {
            (Some((_, result)), Some(esc)) => Ret::Value { result: *result, esc },
            _ => flow.ret.clone(),
        };
        let inner_flow = Flow { loop_esc: flow.loop_esc, ret: inner_ret };

        for (i, arm) in arms.iter().enumerate() {
            let end = self.lower_seq(&arm.stmts, entries[i], &inner_flow)?;
            if let Some(b) = end {
                match kind {
                    ParKind::Par => self.term(b, Term::Halt),
                    ParKind::Or => {
                        self.push(b, span, Op::Spawn(esc.expect("or has esc")));
                        self.term(b, Term::Halt);
                    }
                    ParKind::And => {
                        let (lo, n) = hidden.flags.expect("and has flags");
                        self.push(b, span, Op::SetFlag(lo + i as u32));
                        let cont = match esc {
                            Some(esc) => esc,
                            None => after,
                        };
                        self.term(b, Term::JoinAnd { lo, hi: lo + n, cont });
                    }
                }
            }
        }

        self.depth -= 1;
        self.close_region(region);

        if let Some(esc) = esc {
            self.push(esc, span, Op::ClearRegion(region));
            if let Some((lhs, result)) = value {
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::Slot(result));
                self.push(esc, span, Op::Assign { dst, src });
            }
            self.term(esc, Term::Goto(after));
        }

        match kind {
            // a statement-position `par` never rejoins
            ParKind::Par if value.is_none() => Ok(None),
            _ => Ok(Some(after)),
        }
    }

    fn lower_assign(
        &mut self,
        stmt: &Stmt,
        lhs: &Expr,
        rhs: &AssignRhs,
        cur: BlockId,
        flow: &Flow,
    ) -> Result<Option<BlockId>> {
        let span = stmt.span;
        match rhs {
            AssignRhs::Expr(e) => {
                let src = self.lower_rv(e)?;
                let dst = self.lower_place(lhs)?;
                self.push(cur, span, Op::Assign { dst, src });
                Ok(Some(cur))
            }
            AssignRhs::AwaitEvt(name) => {
                let eid = self.resolved.events.lookup(name).expect("resolved event");
                let cont = self.await_event(cur, name, span)?;
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::EventVal(eid));
                self.push(cont, span, Op::Assign { dst, src });
                Ok(Some(cont))
            }
            AssignRhs::AwaitTime(t) => {
                let cont = self.await_time(cur, TimeAmount::Const(t.us), span);
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::Const(0));
                self.push(cont, span, Op::Assign { dst, src });
                Ok(Some(cont))
            }
            AssignRhs::AwaitExpr(e) => {
                let amount = TimeAmount::Dyn(self.lower_rv(e)?);
                let cont = self.await_time(cur, amount, span);
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::Const(0));
                self.push(cont, span, Op::Assign { dst, src });
                Ok(Some(cont))
            }
            AssignRhs::Par(kind, arms) => {
                let result = self
                    .layout
                    .hidden
                    .get(&stmt.id)
                    .and_then(|h| h.result)
                    .expect("layout allocated result slot");
                self.lower_par(stmt, *kind, arms, cur, flow, Some((lhs, result)))
            }
            AssignRhs::Do(body) => {
                let result = self
                    .layout
                    .hidden
                    .get(&stmt.id)
                    .and_then(|h| h.result)
                    .expect("layout allocated result slot");
                let after = self.new_block("do.end", 0);
                let esc = self.new_block("do.esc", self.esc_rank());
                let region = self.open_region("do");
                self.depth += 1;
                let zero = self.intern(Rv::Const(0));
                self.push(cur, span, Op::Assign { dst: Place::Slot(result), src: zero });
                let inner = Flow { loop_esc: flow.loop_esc, ret: Ret::Value { result, esc } };
                let end = self.lower_seq(&body.stmts, cur, &inner)?;
                if let Some(b) = end {
                    self.term(b, Term::Goto(esc));
                }
                self.depth -= 1;
                self.close_region(region);
                self.push(esc, span, Op::ClearRegion(region));
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::Slot(result));
                self.push(esc, span, Op::Assign { dst, src });
                self.term(esc, Term::Goto(after));
                Ok(Some(after))
            }
            AssignRhs::Async(body) => {
                let result = self
                    .layout
                    .hidden
                    .get(&stmt.id)
                    .and_then(|h| h.result)
                    .expect("layout allocated result slot");
                let cont = self.lower_async(body, Some(result), cur, span)?;
                let dst = self.lower_place(lhs)?;
                let src = self.intern(Rv::Slot(result));
                self.push(cont, span, Op::Assign { dst, src });
                Ok(Some(cont))
            }
        }
    }

    /// Compiles an async body and the synchronous await-site around it.
    /// Returns the continuation block (entered when the async completes).
    fn lower_async(
        &mut self,
        body: &Block,
        result: Option<SlotId>,
        cur: BlockId,
        span: Span,
    ) -> Result<BlockId> {
        let async_id = self.asyncs.len() as AsyncId;
        let cont = self.new_block(format!("aft.async{async_id}"), 0);
        let gate = self.new_gate(GateKind::AsyncDone(async_id), cont, span);

        let was_async = std::mem::replace(&mut self.in_async, true);
        let entry = self.new_block(format!("async{async_id}"), 0);
        let flow = Flow { loop_esc: None, ret: Ret::Async };
        let end = self.lower_seq(&body.stmts, entry, &flow)?;
        if let Some(b) = end {
            self.term(b, Term::TerminateAsync { value: None });
        }
        self.in_async = was_async;

        self.asyncs.push(AsyncBlock { entry, result, done_gate: gate });
        self.push(cur, span, Op::ActivateAsync { gate, async_id });
        self.term(cur, Term::Halt);
        Ok(cont)
    }

    // ---- expressions ------------------------------------------------------

    fn lower_place(&mut self, lhs: &Expr) -> Result<Place> {
        match &lhs.kind {
            ExprKind::Var(unique) => {
                let (slot, is_array) = self.var_slot(unique, lhs.span)?;
                if is_array {
                    return Err(CompileError::new(lhs.span, "cannot assign to a whole array"));
                }
                Ok(Place::Slot(slot))
            }
            ExprKind::Index(base, idx) => {
                let idx = self.lower_expr(idx)?;
                match &base.kind {
                    ExprKind::Var(unique) => {
                        let (slot, is_array) = self.var_slot(unique, base.span)?;
                        if is_array {
                            Ok(Place::Index(slot, self.intern(idx)))
                        } else {
                            // indexing through a pointer variable
                            let addr = Rv::Bin(
                                ceu_ast::BinOp::Add,
                                Box::new(Rv::Slot(slot)),
                                Box::new(idx),
                            );
                            Ok(Place::Deref(self.intern(addr)))
                        }
                    }
                    _ => {
                        let base = self.lower_expr(base)?;
                        let addr = Rv::Bin(ceu_ast::BinOp::Add, Box::new(base), Box::new(idx));
                        Ok(Place::Deref(self.intern(addr)))
                    }
                }
            }
            ExprKind::Unop(UnOp::Deref, p) => {
                let rv = self.lower_expr(p)?;
                Ok(Place::Deref(self.intern(rv)))
            }
            _ => Err(CompileError::new(lhs.span, "unsupported assignment target")),
        }
    }

    fn var_slot(&self, unique: &str, span: Span) -> Result<(SlotId, bool)> {
        self.layout
            .var(unique)
            .ok_or_else(|| CompileError::new(span, format!("no slot for variable `{unique}`")))
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<Rv> {
        Ok(match &e.kind {
            ExprKind::Num(n) => Rv::Const(*n),
            ExprKind::Chr(c) => Rv::Const(*c as i64),
            ExprKind::Str(s) => Rv::Str(s.clone()),
            ExprKind::Null => Rv::Null,
            ExprKind::Var(unique) => {
                let (slot, is_array) = self.var_slot(unique, e.span)?;
                if is_array {
                    Rv::AddrOf(slot) // array-to-pointer decay
                } else {
                    Rv::Slot(slot)
                }
            }
            ExprKind::CSym(name) => Rv::CGlobal(name.clone()),
            ExprKind::Unop(UnOp::Addr, inner) => match &inner.kind {
                ExprKind::Var(unique) => {
                    let (slot, _) = self.var_slot(unique, inner.span)?;
                    Rv::AddrOf(slot)
                }
                ExprKind::Index(base, idx) => {
                    if let ExprKind::Var(unique) = &base.kind {
                        let (slot, is_array) = self.var_slot(unique, base.span)?;
                        if is_array {
                            let idx = self.lower_expr(idx)?;
                            return Ok(Rv::Bin(
                                ceu_ast::BinOp::Add,
                                Box::new(Rv::AddrOf(slot)),
                                Box::new(idx),
                            ));
                        }
                    }
                    return Err(CompileError::new(
                        e.span,
                        "cannot take the address of this expression",
                    ));
                }
                _ => {
                    return Err(CompileError::new(
                        e.span,
                        "cannot take the address of this expression",
                    ))
                }
            },
            ExprKind::Unop(UnOp::Deref, inner) => Rv::Deref(Box::new(self.lower_expr(inner)?)),
            ExprKind::Unop(op, inner) => Rv::Un(*op, Box::new(self.lower_expr(inner)?)),
            ExprKind::Binop(op, a, b) => {
                Rv::Bin(*op, Box::new(self.lower_expr(a)?), Box::new(self.lower_expr(b)?))
            }
            ExprKind::Index(base, idx) => {
                Rv::Index(Box::new(self.lower_expr(base)?), Box::new(self.lower_expr(idx)?))
            }
            ExprKind::Call(callee, args) => {
                let name = flatten_callee(callee).ok_or_else(|| {
                    CompileError::new(e.span, "only C functions (`_name`) can be called")
                })?;
                let args = args.iter().map(|a| self.lower_expr(a)).collect::<Result<Vec<_>>>()?;
                Rv::CCall(name, args)
            }
            ExprKind::Cast(_, inner) => Rv::Cast(Box::new(self.lower_expr(inner)?)),
            ExprKind::SizeOf(ty) => Rv::SizeOf(layout::target_size(ty)),
            ExprKind::Field(base, name, arrow) => {
                Rv::Field(Box::new(self.lower_expr(base)?), name.clone(), *arrow)
            }
        })
    }
}

/// Flattens a callee expression to a host-call name:
/// `_f` → `"f"`, `_lcd.setCursor` → `"lcd.setCursor"`.
fn flatten_callee(e: &Expr) -> Option<String> {
    match &e.kind {
        ExprKind::CSym(name) => Some(name.clone()),
        ExprKind::Field(base, field, _) => {
            let mut prefix = flatten_callee(base)?;
            prefix.push('.');
            prefix.push_str(field);
            Some(prefix)
        }
        _ => None,
    }
}

//! Céu compiler back end: static memory layout (§4.2), gate allocation
//! (§4.3), track generation (§4.4), and the C source backend.
//!
//! The input is a [`ceu_ast::Resolved`] program (desugared and
//! alpha-renamed); the output is a [`CompiledProgram`] executed by
//! `ceu-runtime` and printable as C by [`cbackend::emit_c`].

pub mod cbackend;
pub mod flat;
pub mod ir;
pub mod layout;
pub mod lower;
pub mod opt;
pub mod report;
pub mod rsbackend;

pub use flat::{FlatOp, FlatPool};
pub use ir::*;
pub use layout::{layout, Layout};
pub use lower::{compile, CompileError};
pub use opt::{optimize, OptStats};
pub use report::{memory_report, MemoryReport};

/// Convenience used by tests and benches: parse → desugar → resolve →
/// compile in one call.
pub fn compile_source(src: &str) -> Result<CompiledProgram, String> {
    let mut p = ceu_parser::parse(src).map_err(|e| e.to_string())?;
    ceu_ast::desugar(&mut p);
    ceu_ast::number(&mut p);
    let resolved = ceu_ast::resolve::resolve(p).map_err(|e| e.to_string())?;
    compile(&resolved).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{GateKind, Op, Term};

    fn compile_ok(src: &str) -> CompiledProgram {
        compile_source(src).unwrap_or_else(|e| panic!("compile failed: {e}"))
    }

    #[test]
    fn simple_await_splits_tracks() {
        // the paper's §4.4 example: two awaits in sequence split the code
        // into three parts
        let p =
            compile_ok("input int A, B;\nint a, b, ret;\na = await A;\nb = await B;\nret = a + b;");
        assert_eq!(p.gates.len(), 2);
        // boot + aft.A + aft.B
        assert!(p.blocks.len() >= 3);
        // boot arms gate 0 and halts
        let boot = p.block(p.boot);
        assert!(matches!(boot.instrs.last().unwrap().op, Op::ActivateEvt { gate: 0 }));
        assert_eq!(boot.term, Term::Halt);
        // final track terminates the program (fallthrough)
        assert!(p.blocks.iter().any(|b| matches!(b.term, Term::TerminateProgram { .. })));
    }

    #[test]
    fn par_spawns_one_track_per_arm() {
        let p = compile_ok(
            "input void A, B;\npar do\n await A;\nwith\n await B;\nwith\n await forever;\nend",
        );
        let boot = p.block(p.boot);
        let spawns = boot.instrs.iter().filter(|i| matches!(i.op, Op::Spawn(_))).count();
        assert_eq!(spawns, 3);
        assert_eq!(boot.term, Term::Halt);
    }

    #[test]
    fn par_or_gates_form_contiguous_region() {
        let p = compile_ok(
            "input void A, B;\nloop do\n par/or do\n  await A;\n with\n  await B;\n end\nend",
        );
        // two regions: the loop and the par/or; the par/or region nests
        // within the loop's range
        assert_eq!(p.regions.len(), 2);
        let (outer, inner) = (&p.regions[0], &p.regions[1]);
        assert!(outer.lo <= inner.lo && inner.hi <= outer.hi);
        assert_eq!(inner.hi - inner.lo, 2, "par/or owns both gates");
    }

    #[test]
    fn par_or_escape_outranks_normal_tracks() {
        let p =
            compile_ok("input void A, B;\npar/or do\n await A;\nwith\n await B;\nend\nawait A;");
        let esc = p.blocks.iter().find(|b| b.label == "par.esc").unwrap();
        assert!(esc.rank > 0, "escape blocks must run after normal tracks");
        assert!(esc.instrs.iter().any(|i| matches!(i.op, Op::ClearRegion(_))));
    }

    #[test]
    fn nested_escapes_rank_inner_before_outer() {
        let p = compile_ok(
            "input void A, B;\npar/or do\n par/or do\n  await A;\n with\n  await B;\n end\nwith\n await B;\nend",
        );
        let escs: Vec<u8> =
            p.blocks.iter().filter(|b| b.label == "par.esc").map(|b| b.rank).collect();
        assert_eq!(escs.len(), 2);
        // first created is the outer one
        assert!(escs[0] > escs[1], "outer esc must run later: {escs:?}");
    }

    #[test]
    fn par_and_uses_flags_and_join() {
        let p = compile_ok("input void A, B;\npar/and do\n await A;\nwith\n await B;\nend");
        let boot = p.block(p.boot);
        assert!(boot.instrs.iter().any(|i| matches!(i.op, Op::ClearFlags { .. })));
        let joins = p.blocks.iter().filter(|b| matches!(b.term, Term::JoinAnd { .. })).count();
        assert_eq!(joins, 2);
    }

    #[test]
    fn loop_back_edge_and_break_escape() {
        let p = compile_ok("input void A;\nloop do\n await A;\n break;\nend\nawait A;");
        let esc = p.blocks.iter().find(|b| b.label == "loop.esc").unwrap();
        assert!(esc.instrs.iter().any(|i| matches!(i.op, Op::ClearRegion(_))));
        // the break spawns the escape and halts
        let breaker = p
            .blocks
            .iter()
            .find(|b| {
                b.instrs.iter().any(|i| matches!(i.op, Op::Spawn(_)))
                    && b.term == Term::Halt
                    && b.label.starts_with("aft.")
            })
            .expect("break block");
        assert!(breaker.label.contains("aft.A"));
    }

    #[test]
    fn value_par_assigns_through_result_slot() {
        let p = compile_ok(
            "input void Key;\nint v;\nv = par do\n await Key;\n return 1;\nwith\n await forever;\nend;",
        );
        let esc = p.blocks.iter().find(|b| b.label == "par.esc").unwrap();
        // esc: clear region, copy result into v
        assert!(matches!(esc.instrs[0].op, Op::ClearRegion(_)));
        assert!(matches!(esc.instrs[1].op, Op::Assign { .. }));
    }

    #[test]
    fn async_is_compiled_with_done_gate() {
        let p = compile_ok(
            "int ret;\nret = async do\n int i;\n i = 0;\n loop do\n  if i == 10 then break; end\n  i = i + 1;\n end\n return i;\nend;",
        );
        assert_eq!(p.asyncs.len(), 1);
        let a = &p.asyncs[0];
        assert!(a.result.is_some());
        assert_eq!(p.gate(a.done_gate).kind, GateKind::AsyncDone(0));
        // async bodies terminate with TerminateAsync
        assert!(p.blocks.iter().any(|b| matches!(b.term, Term::TerminateAsync { .. })));
    }

    #[test]
    fn async_break_uses_goto_not_spawn() {
        let p = compile_ok("int r;\nr = async do\n loop do\n  break;\n end\n return 1;\nend;");
        // no Spawn instruction inside the async entry chain other than the
        // sync-side fork; async loops compile to direct gotos
        let async_entry = p.asyncs[0].entry as usize;
        let b = &p.blocks[async_entry];
        assert!(matches!(b.term, Term::Goto(_)));
    }

    #[test]
    fn emit_internal_vs_external() {
        let p = compile_ok(
            "input int Start;\ninternal void tick;\npar/or do\n emit tick;\n await forever;\nwith\n async do\n  emit Start = 1;\n end\nend",
        );
        let has_int =
            p.blocks.iter().flat_map(|b| &b.instrs).any(|i| matches!(i.op, Op::EmitInt { .. }));
        let has_ext =
            p.blocks.iter().flat_map(|b| &b.instrs).any(|i| matches!(i.op, Op::EmitExt { .. }));
        assert!(has_int && has_ext);
    }

    #[test]
    fn timer_awaits_compile_to_timer_gates() {
        let p = compile_ok("await 10ms;\nawait 1ms;");
        let timers = p.gates.iter().filter(|g| g.kind == GateKind::Timer).count();
        assert_eq!(timers, 2);
    }

    #[test]
    fn c_backend_paper_shape_across_corpus() {
        // One corpus-driven smoke covering what three near-identical
        // per-program tests used to: every corpus program emits C with
        // the paper's §4.4 shape, and any program with regions kills
        // them with a memset. (Exact emitted text is pinned by the
        // golden snapshots in tests/golden.rs.)
        let corpus = ceu_corpus::all_programs()
            .into_iter()
            .chain(std::iter::once(("ring_demo", RING_DEMO.to_string())));
        for (name, src) in corpus {
            let p = compile_ok(&src);
            let c = cbackend::emit_c(&p);
            assert!(c.contains("_SWITCH:"), "{name}: goto label per the paper");
            assert!(c.contains("switch (track)"), "{name}: track dispatch");
            assert!(c.contains("GATES["), "{name}: static gate table");
            assert!(c.contains("void ceu_go_event"), "{name}: four-function API");
            for (i, e) in p.events.iter() {
                assert!(c.contains(&format!("EVT_{} {}", e.name, i.0)), "{name}: event constants");
            }
            let kills_regions =
                p.blocks.iter().flat_map(|b| &b.instrs).any(|i| matches!(i.op, Op::ClearRegion(_)));
            if kills_regions {
                assert!(c.contains("memset(GATES +"), "{name}: region kill must be a memset");
            }
        }
    }

    #[test]
    fn memory_report_scales_with_program() {
        let small = memory_report(&compile_ok("input void A;\nawait A;"));
        let big = memory_report(&compile_ok(
            "input void A, B, C;\npar do\n loop do await A; end\nwith\n loop do await B; end\nwith\n loop do await C; end\nend",
        ));
        assert!(big.rom_bytes > small.rom_bytes);
        assert!(big.ram_bytes > small.ram_bytes);
        assert!(big.gates > small.gates);
    }

    #[test]
    fn rejects_call_through_variable() {
        assert!(compile_source("int f;\nf(1);").is_err());
    }

    #[test]
    fn rejects_whole_array_assignment() {
        assert!(compile_source("int[4] a;\nint b;\na = b;").is_err());
    }

    // The PPoPP ring demo: FFI-heavy, not part of `ceu_corpus` (it needs
    // host symbols), so it rides the corpus-driven smoke via a chain.
    const RING_DEMO: &str = r#"
            input _message_t* Radio_receive;
            internal void retry;
            par do
               loop do
                  _message_t* msg = await Radio_receive;
                  int* cnt = _Radio_getPayload(msg);
                  _Leds_set(*cnt);
                  await 1s;
                  *cnt = *cnt + 1;
                  _Radio_send((_TOS_NODE_ID+1)%3, msg);
               end
            with
               loop do
                  par/or do
                     await 5s;
                     par do
                        loop do
                           emit retry;
                           await 10s;
                        end
                     with
                        _Leds_set(0);
                        loop do
                           _Leds_led0Toggle();
                           await 500ms;
                        end
                     end
                  with
                     await Radio_receive;
                  end
               end
            with
               if _TOS_NODE_ID == 0 then
                  loop do
                     _message_t msg;
                     int* cnt = _Radio_getPayload(&msg);
                     *cnt = 1;
                     _Radio_send(1, &msg)
                     await retry;
                  end
               else
                  await forever;
               end
            end
        "#;

    #[test]
    fn ring_demo_compiles() {
        let p = compile_ok(RING_DEMO);
        assert!(p.gates.len() >= 7);
    }
}

//! Memory accounting for the Table-1 experiment.
//!
//! The paper reports avr-gcc ROM/RAM for micaz binaries; we cannot run
//! avr-gcc, so both Céu programs and the event-driven baselines are
//! measured with one consistent yardstick (see DESIGN.md):
//!
//! * **ROM-analog** — bytes of generated C source (runtime preamble +
//!   tracks + tables). Handwritten baselines are measured as the bytes of
//!   their (equivalent, handwritten) C source.
//! * **RAM-analog** — bytes of statically allocated state on the 16-bit
//!   reference target: data slots, gates, timer deadlines, event values,
//!   the track queue, and a small fixed block of runtime globals.

use crate::cbackend;
use crate::ir::{CompiledProgram, GateKind};

/// Fixed runtime globals (queue counters, current time, status flags).
pub const RUNTIME_FIXED_RAM: u32 = 16;

/// Memory usage of one compiled program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryReport {
    /// Bytes of generated C (ROM-analog).
    pub rom_bytes: u32,
    /// Bytes of statically allocated state (RAM-analog).
    pub ram_bytes: u32,
    pub data_slots: u32,
    pub gates: u32,
    pub tracks: u32,
    pub instrs: u32,
}

/// Computes the memory report for a compiled program.
pub fn memory_report(p: &CompiledProgram) -> MemoryReport {
    let rom_bytes = cbackend::emit_c(p).len() as u32;
    let data_bytes: u32 = p.slots.iter().map(|s| s.target_bytes).sum();
    let gate_bytes = p.gates.len() as u32 * 2; // uint16_t per gate
    let timer_bytes = p.gates.iter().filter(|g| g.kind == GateKind::Timer).count() as u32 * 4;
    let evtval_bytes = p.events.len() as u32 * 2;
    // the queue must hold every simultaneously spawnable track; bounded by
    // the gate count + arms of the widest fork — we use the static block
    // count as the safe upper bound the compiler would emit
    let queue_bytes = p.blocks.len() as u32 * 3; // id (2) + rank (1)
    MemoryReport {
        rom_bytes,
        ram_bytes: data_bytes
            + gate_bytes
            + timer_bytes
            + evtval_bytes
            + queue_bytes
            + RUNTIME_FIXED_RAM,
        data_slots: p.data_len,
        gates: p.gates.len() as u32,
        tracks: p.blocks.len() as u32,
        instrs: p.instr_count() as u32,
    }
}

//! The track/gate intermediate representation (§4.4 of the paper).
//!
//! A compiled program is a set of *basic blocks* ("tracks"), a set of
//! *gates* (one per `await`), *regions* (contiguous gate ranges owned by
//! `par/or`s, loops and value blocks, killable with one range-clear — the
//! paper's `memset`), and statically laid-out *data slots* (§4.2).
//!
//! Control transfers:
//! * `Spawn` enqueues a block in the scheduler's rank-ordered track queue;
//! * gates hold the block to spawn when their event fires;
//! * the block terminator covers straight-line flow (goto / branch / halt).
//!
//! Expressions are lowered to [`Rv`] with variable references resolved to
//! slot indices, so the runtime never does name lookups. Instructions do
//! not embed expression trees: every expression is interned at lower time
//! and referenced by [`ExprId`] — the tree lives in
//! [`CompiledProgram::exprs`] (for the C backend, the analyses, and the
//! runtime's tree-eval ablation) and its postfix form in
//! [`CompiledProgram::flat`] (the runtime's hot path).

use crate::flat::FlatPool;
use ceu_ast::{BinOp, EventId, EventTable, Span, UnOp};
use std::collections::HashMap;
use std::fmt;

pub type BlockId = u32;
pub type GateId = u32;
pub type RegionId = u32;
pub type SlotId = u32;
pub type AsyncId = u32;
/// Index of an interned expression: `CompiledProgram::exprs[id]` is the
/// tree, `CompiledProgram::flat.code_of(id)` its postfix code.
pub type ExprId = u32;

/// A lowered r-value expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Rv {
    Const(i64),
    Str(String),
    Null,
    /// Read a data slot (scalar variable).
    Slot(SlotId),
    /// Address of a data slot (`&v`, also array base decay).
    AddrOf(SlotId),
    /// Value carried by the most recent occurrence of an event.
    EventVal(EventId),
    /// Read a C global (`_X`).
    CGlobal(String),
    Un(UnOp, Box<Rv>),
    Bin(BinOp, Box<Rv>, Box<Rv>),
    /// `base[idx]` where `base` evaluates to a pointer.
    Index(Box<Rv>, Box<Rv>),
    /// Call into the C world. Method-style calls are flattened
    /// (`_lcd.setCursor(…)` → name `"lcd.setCursor"`).
    CCall(String, Vec<Rv>),
    /// `*p`
    Deref(Box<Rv>),
    /// `sizeof<T>` — byte size on the 16-bit reference target.
    SizeOf(u32),
    /// `base.f` / `base->f` on a host value.
    Field(Box<Rv>, String, bool),
    /// `<T> e` — numeric casts are value-preserving at runtime.
    Cast(Box<Rv>),
}

/// A lowered l-value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Place {
    /// A scalar slot.
    Slot(SlotId),
    /// `arr[idx]` where `arr` is a Céu array starting at the given slot.
    Index(SlotId, ExprId),
    /// `*p = …` — store through a pointer (data or host).
    Deref(ExprId),
}

/// A timer duration: compile-time constant or computed (µs).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TimeAmount {
    Const(u64),
    Dyn(ExprId),
}

/// One instruction.
#[derive(Clone, Debug, PartialEq)]
pub struct Instr {
    pub span: Span,
    pub op: Op,
}

#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    Assign {
        dst: Place,
        src: ExprId,
    },
    /// Evaluate for side effects (a statement-position C call).
    Eval(ExprId),
    /// Arm an event gate (`GATES[g] = cont` in the paper).
    ActivateEvt {
        gate: GateId,
    },
    /// Arm a timer gate; the deadline is `logical now + us`.
    ActivateTime {
        gate: GateId,
        us: TimeAmount,
    },
    /// Arm an `await forever` gate (keeps the trail alive, never fires).
    ActivateNever {
        gate: GateId,
    },
    /// Start asynchronous block `async_id`; its completion fires `gate`.
    ActivateAsync {
        gate: GateId,
        async_id: AsyncId,
    },
    /// Kill every trail of a region: deactivate its gate range and abort
    /// asyncs hanging off gates in the range.
    ClearRegion(RegionId),
    /// Enqueue a block in the track queue (at the block's rank).
    Spawn(BlockId),
    /// Emit an internal event — runs the awakened trails as a nested
    /// reaction (stack policy, §2.2) before the next instruction.
    EmitInt {
        event: EventId,
        value: Option<ExprId>,
    },
    /// Emit an input event from an `async` (simulation, §2.8).
    EmitExt {
        event: EventId,
        value: Option<ExprId>,
    },
    /// Emit an output event towards the environment (future-work
    /// extension: multi-process GALS composition).
    EmitOut {
        event: EventId,
        value: Option<ExprId>,
    },
    /// Emit the passage of wall-clock time from an `async`.
    EmitTime(TimeAmount),
    /// Set a par/and completion flag.
    SetFlag(SlotId),
    /// Reset the completion flags `[lo, hi)` of a par/and at fork time.
    ClearFlags {
        lo: SlotId,
        hi: SlotId,
    },
}

/// Block terminator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Term {
    /// Yield to the scheduler (the paper's `halt`).
    Halt,
    Goto(BlockId),
    If {
        cond: ExprId,
        then_b: BlockId,
        else_b: BlockId,
    },
    /// par/and rejoin: proceed to `cont` iff all flags in `[lo, hi)` are set.
    JoinAnd {
        lo: SlotId,
        hi: SlotId,
        cont: BlockId,
    },
    /// Top-level `return` / program end.
    TerminateProgram {
        value: Option<ExprId>,
    },
    /// `return` inside an `async` / async body end.
    TerminateAsync {
        value: Option<ExprId>,
    },
}

/// A basic block ("track").
#[derive(Clone, Debug, PartialEq)]
pub struct BBlock {
    pub label: String,
    pub instrs: Vec<Instr>,
    pub term: Term,
    /// Scheduling rank: 0 = highest priority; rejoin/escape blocks get
    /// higher numbers, the outer the higher (run later — glitch avoidance).
    pub rank: u8,
    /// Enclosing regions, innermost last (used to detect a trail killed
    /// while it was mid-emit).
    pub regions: Vec<RegionId>,
}

/// What fires a gate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GateKind {
    /// External or internal event.
    Evt(EventId),
    /// Wall-clock timer.
    Timer,
    /// `await forever`.
    Never,
    /// Completion of an async block.
    AsyncDone(AsyncId),
}

/// One gate: what fires it and which block resumes the trail.
#[derive(Clone, Debug)]
pub struct GateInfo {
    pub kind: GateKind,
    pub cont: BlockId,
    pub span: Span,
}

/// A contiguous killable gate range `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct RegionInfo {
    pub lo: GateId,
    pub hi: GateId,
    pub label: String,
}

/// One `suspend e do … end` construct (extension): while the guard event's
/// last value is truthy, no gate in `region` fires and its timers freeze.
#[derive(Clone, Debug)]
pub struct SuspendInfo {
    pub event: EventId,
    pub region: RegionId,
}

/// One compiled `async` body. `Copy`, so the runtime's completion path
/// reads it without touching the heap.
#[derive(Clone, Copy, Debug)]
pub struct AsyncBlock {
    pub entry: BlockId,
    /// Slot receiving the `return` value, for value-position asyncs.
    pub result: Option<SlotId>,
    /// The gate fired on completion.
    pub done_gate: GateId,
}

/// One laid-out variable (for reports and debugging).
#[derive(Clone, Debug)]
pub struct SlotInfo {
    /// Unique (alpha-renamed) name; hidden slots use `#`-prefixed labels.
    pub name: String,
    pub slot: SlotId,
    /// Number of slots (1 for scalars, n for arrays).
    pub len: u32,
    /// Size in bytes on the 16-bit reference target (for the RAM report).
    pub target_bytes: u32,
}

/// Precomputed dispatch tables (§4.3's static gate tables, generalised):
/// everything the runtime would otherwise derive by scanning `gates`,
/// `suspends` or `slots` on a hot path, computed once at compile time.
#[derive(Clone, Debug, Default)]
pub struct Dispatch {
    /// Gates awaiting each event, indexed by `EventId` (ascending gate order).
    pub event_gates: Vec<Vec<GateId>>,
    /// All timer gates, in ascending order.
    pub timer_gates: Vec<GateId>,
    /// For each gate, the indices into `suspends` whose region covers it.
    pub gate_suspends: Vec<Vec<u32>>,
    /// For each event, the indices into `suspends` guarded by it.
    pub event_suspends: Vec<Vec<u32>>,
    /// Unique (alpha-renamed) variable name → first slot.
    pub slot_by_name: HashMap<String, SlotId>,
}

impl Dispatch {
    /// Builds the tables from the raw program structures.
    pub fn build(
        gates: &[GateInfo],
        regions: &[RegionInfo],
        suspends: &[SuspendInfo],
        slots: &[SlotInfo],
        n_events: usize,
    ) -> Self {
        let mut event_gates = vec![Vec::new(); n_events];
        let mut timer_gates = Vec::new();
        for (g, info) in gates.iter().enumerate() {
            match info.kind {
                GateKind::Evt(e) => event_gates[e.index()].push(g as GateId),
                GateKind::Timer => timer_gates.push(g as GateId),
                GateKind::Never | GateKind::AsyncDone(_) => {}
            }
        }
        let mut gate_suspends = vec![Vec::new(); gates.len()];
        let mut event_suspends = vec![Vec::new(); n_events];
        for (i, s) in suspends.iter().enumerate() {
            let r = &regions[s.region as usize];
            for g in r.lo..r.hi {
                gate_suspends[g as usize].push(i as u32);
            }
            event_suspends[s.event.index()].push(i as u32);
        }
        let slot_by_name =
            slots.iter().map(|s| (s.name.clone(), s.slot)).collect::<HashMap<_, _>>();
        Dispatch { event_gates, timer_gates, gate_suspends, event_suspends, slot_by_name }
    }
}

/// Block-level debug info: maps each `BlockId` back to the source span of
/// its first spanned instruction (falling back to the gate/terminator
/// span the lowering recorded, or `0:0` for synthetic glue blocks). This
/// is what lets per-block profiles and traces render as "hot statements"
/// against the original `.ceu` source.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct DebugMap {
    /// Indexed by `BlockId`; `line == 0` means "no source location".
    pub block_spans: Vec<Span>,
}

impl DebugMap {
    /// Builds the map from lowered blocks: a block's span is the span of
    /// its first instruction that carries one.
    pub fn build(blocks: &[BBlock]) -> Self {
        let block_spans = blocks
            .iter()
            .map(|b| b.instrs.iter().map(|i| i.span).find(|s| s.line > 0).unwrap_or_default())
            .collect();
        DebugMap { block_spans }
    }

    /// Source span of a block (`0:0` when unknown).
    pub fn block_span(&self, block: BlockId) -> Span {
        self.block_spans.get(block as usize).copied().unwrap_or_default()
    }
}

/// A fully compiled program, executable by `ceu-runtime` and printable by
/// the C backend.
///
/// This is the *shareable execution artifact*: everything in it is
/// immutable after compilation and `Send + Sync` (enforced below), so one
/// `Arc<CompiledProgram>` can back any number of concurrently running
/// machine instances — all mutable state lives in the machine.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    pub blocks: Vec<BBlock>,
    pub boot: BlockId,
    pub gates: Vec<GateInfo>,
    pub regions: Vec<RegionInfo>,
    pub events: EventTable,
    pub slots: Vec<SlotInfo>,
    /// Total data slots.
    pub data_len: u32,
    pub annotations: ceu_ast::CAnnotations,
    pub asyncs: Vec<AsyncBlock>,
    /// `suspend` constructs (extension), in source order.
    pub suspends: Vec<SuspendInfo>,
    /// Concatenated `C do … end` code, passed through to the C backend.
    pub c_code: String,
    /// Interned expression trees, indexed by [`ExprId`] (C backend,
    /// analyses, tree-eval ablation).
    pub exprs: Vec<Rv>,
    /// Postfix code for the same expressions (the runtime's hot path).
    pub flat: FlatPool,
    /// Precomputed runtime dispatch tables.
    pub dispatch: Dispatch,
    /// Block → source-span debug info (profiling, trace attribution).
    pub debug: DebugMap,
}

// The whole point of the artifact: compile once, share across threads.
// A build error here means a non-thread-safe type leaked into the
// compiled form.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CompiledProgram>();
};

impl CompiledProgram {
    pub fn block(&self, id: BlockId) -> &BBlock {
        &self.blocks[id as usize]
    }

    pub fn gate(&self, id: GateId) -> &GateInfo {
        &self.gates[id as usize]
    }

    pub fn region(&self, id: RegionId) -> &RegionInfo {
        &self.regions[id as usize]
    }

    /// The tree form of an interned expression.
    #[inline]
    pub fn expr(&self, id: ExprId) -> &Rv {
        &self.exprs[id as usize]
    }

    /// Gates that await the given event (precomputed table).
    pub fn gates_of_event(&self, event: EventId) -> impl Iterator<Item = GateId> + '_ {
        self.dispatch.event_gates.get(event.index()).into_iter().flatten().copied()
    }

    /// Total instruction count (ROM-analog building block).
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len() + 1).sum()
    }

    /// Stable identity of this artifact: an FNV-1a hash over a canonical
    /// dump of everything that affects execution. The Rust backend bakes
    /// it into emitted code and `Machine::set_native` refuses a native
    /// program whose fingerprint does not match — catching stale
    /// emissions and optimizer drift (raw and optimized artifacts hash
    /// differently because the flat pool is included).
    ///
    /// Only deterministically ordered structures are hashed — never the
    /// `dispatch.slot_by_name` HashMap.
    pub fn fingerprint(&self) -> u64 {
        struct Fnv(u64);
        impl fmt::Write for Fnv {
            fn write_str(&mut self, s: &str) -> fmt::Result {
                for b in s.as_bytes() {
                    self.0 ^= *b as u64;
                    self.0 = self.0.wrapping_mul(0x100000001b3);
                }
                Ok(())
            }
        }
        use fmt::Write;
        let mut h = Fnv(0xcbf29ce484222325);
        let w = &mut h;
        let _ = write!(w, "data:{};boot:{};", self.data_len, self.boot);
        for b in &self.blocks {
            let _ = write!(w, "blk:{}:{:?}:{:?}:{:?};", b.rank, b.instrs, b.term, b.regions);
        }
        for g in &self.gates {
            let _ = write!(w, "gate:{:?}:{};", g.kind, g.cont);
        }
        for r in &self.regions {
            let _ = write!(w, "region:{}:{};", r.lo, r.hi);
        }
        for a in &self.asyncs {
            let _ = write!(w, "async:{}:{:?}:{};", a.entry, a.result, a.done_gate);
        }
        for s in &self.suspends {
            let _ = write!(w, "susp:{:?}:{};", s.event, s.region);
        }
        for (_, e) in self.events.iter() {
            let _ = write!(w, "evt:{};", e.name);
        }
        let _ = write!(w, "flat:{:?}:{:?};", self.flat.code, self.flat.ranges);
        h.0
    }
}

impl fmt::Display for CompiledProgram {
    /// Human-readable IR dump, for tests and debugging.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; data: {} slots, {} gates, {} regions",
            self.data_len,
            self.gates.len(),
            self.regions.len()
        )?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "{i}: {} (rank {})", b.label, b.rank)?;
            for instr in &b.instrs {
                writeln!(f, "    {:?}", instr.op)?;
            }
            writeln!(f, "    => {:?}", b.term)?;
        }
        Ok(())
    }
}

impl Rv {
    /// Walks the r-value tree bottom-up.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Rv)) {
        match self {
            Rv::Un(_, a) | Rv::Deref(a) | Rv::Cast(a) | Rv::Field(a, _, _) => a.walk(f),
            Rv::Bin(_, a, b) | Rv::Index(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            Rv::CCall(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            _ => {}
        }
        f(self);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rv_walk_visits_nested() {
        let rv = Rv::Bin(
            BinOp::Add,
            Box::new(Rv::Slot(0)),
            Box::new(Rv::CCall("f".into(), vec![Rv::Const(1), Rv::Deref(Box::new(Rv::Slot(2)))])),
        );
        let mut slots = vec![];
        rv.walk(&mut |r| {
            if let Rv::Slot(s) = r {
                slots.push(*s);
            }
        });
        assert_eq!(slots, vec![0, 2]);
    }
}

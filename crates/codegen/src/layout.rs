//! Static memory layout (§4.2).
//!
//! Céu allocates no per-trail stacks: all variables (and the hidden
//! bookkeeping values: par/and completion flags, value-block results) live
//! in one statically sized slot vector. Memory of trails *in parallel* must
//! coexist, while statements *in sequence* reuse the same offsets — an
//! overlay allocation:
//!
//! * declarations in a block accumulate (they live to the block's end);
//! * sibling `par` arms are stacked after one another;
//! * sequential composite statements (two loops in sequence, `if` branches)
//!   share the same base offset.
//!
//! One slot holds one runtime `Value`; the *target-byte* accounting (what
//! Table 1 reports) assumes the paper's 16-bit reference platform: 2 bytes
//! per scalar, 1 byte per flag.

use crate::ir::{SlotId, SlotInfo};
use ceu_ast::{AssignRhs, Block, NodeId, ParKind, Stmt, StmtKind, Type};
use std::collections::HashMap;

/// Hidden bookkeeping slots attached to a statement.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hidden {
    /// par/and completion flags: base slot + arm count.
    pub flags: Option<(SlotId, u32)>,
    /// Result slot of a value block (`x = par/do/async … end`).
    pub result: Option<SlotId>,
}

/// Computed layout for a resolved program.
#[derive(Clone, Debug, Default)]
pub struct Layout {
    slot_of_var: HashMap<String, (SlotId, bool)>,
    pub hidden: HashMap<NodeId, Hidden>,
    pub slots: Vec<SlotInfo>,
    pub data_len: u32,
}

impl Layout {
    /// Slot and array-ness of a unique variable name.
    pub fn var(&self, unique: &str) -> Option<(SlotId, bool)> {
        self.slot_of_var.get(unique).copied()
    }

    /// Total data size in target bytes (the RAM-report contribution of
    /// variables; gates/queues are added by the report module).
    pub fn target_bytes(&self) -> u32 {
        self.slots.iter().map(|s| s.target_bytes).sum()
    }
}

/// Bytes one value of `ty` occupies on the 16-bit reference target.
pub fn target_size(ty: &Type) -> u32 {
    if ty.ptr > 0 {
        return 2;
    }
    match ty.name.as_str() {
        "void" => 0,
        "u8" => 1,
        "u32" => 4,
        // `int` and unknown C types: one machine word
        _ => 2,
    }
}

/// Runs the overlay allocation over a resolved (alpha-renamed, desugared)
/// program.
pub fn layout(program: &ceu_ast::Program, vars: &[ceu_ast::VarInfo]) -> Layout {
    let mut l = Layout::default();
    let by_unique: HashMap<&str, &ceu_ast::VarInfo> =
        vars.iter().map(|v| (v.unique.as_str(), v)).collect();
    let end = layout_block(&program.block, 0, &mut l, &by_unique);
    l.data_len = end;
    l
}

fn layout_block(
    block: &Block,
    base: u32,
    l: &mut Layout,
    vars: &HashMap<&str, &ceu_ast::VarInfo>,
) -> u32 {
    let mut cur = base;
    let mut max_end = base;
    for stmt in &block.stmts {
        match &stmt.kind {
            StmtKind::VarDecl { ty, vars: defs } => {
                for d in defs {
                    let len = d.array.unwrap_or(1);
                    let info = vars.get(d.name.as_str());
                    let elem_bytes =
                        info.map(|v| target_size(&v.ty)).unwrap_or_else(|| target_size(ty));
                    l.slot_of_var.insert(d.name.clone(), (cur, d.array.is_some()));
                    l.slots.push(SlotInfo {
                        name: d.name.clone(),
                        slot: cur,
                        len,
                        target_bytes: elem_bytes * len,
                    });
                    cur += len;
                    max_end = max_end.max(cur);
                }
            }
            StmtKind::If { then_blk, else_blk, .. } => {
                let e1 = layout_block(then_blk, cur, l, vars);
                let e2 = else_blk.as_ref().map(|b| layout_block(b, cur, l, vars)).unwrap_or(cur);
                max_end = max_end.max(e1).max(e2);
            }
            StmtKind::Loop { body }
            | StmtKind::DoBlock { body }
            | StmtKind::Async { body }
            | StmtKind::Suspend { body, .. } => {
                let e = layout_block(body, cur, l, vars);
                max_end = max_end.max(e);
            }
            StmtKind::Par { kind, arms } => {
                let e = layout_par(stmt.id, *kind, arms, cur, None, l, vars);
                max_end = max_end.max(e);
            }
            StmtKind::Assign { rhs, .. } => match rhs {
                AssignRhs::Par(kind, arms) => {
                    let result = alloc_hidden(l, &mut cur, stmt, "#result");
                    let e = layout_par(stmt.id, *kind, arms, cur, Some(result), l, vars);
                    max_end = max_end.max(e);
                }
                AssignRhs::Do(b) | AssignRhs::Async(b) => {
                    let result = alloc_hidden(l, &mut cur, stmt, "#result");
                    l.hidden.entry(stmt.id).or_default().result = Some(result);
                    let e = layout_block(b, cur, l, vars);
                    max_end = max_end.max(e).max(cur);
                }
                _ => {}
            },
            _ => {}
        }
    }
    max_end
}

fn layout_par(
    id: NodeId,
    kind: ParKind,
    arms: &[Block],
    base: u32,
    result: Option<SlotId>,
    l: &mut Layout,
    vars: &HashMap<&str, &ceu_ast::VarInfo>,
) -> u32 {
    let mut cur = base;
    let hidden = l.hidden.entry(id).or_default();
    hidden.result = result;
    if kind == ParKind::And {
        hidden.flags = Some((cur, arms.len() as u32));
        for i in 0..arms.len() {
            l.slots.push(SlotInfo {
                name: format!("#flag{i}@{id}"),
                slot: cur + i as u32,
                len: 1,
                target_bytes: 1,
            });
        }
        cur += arms.len() as u32;
    }
    // arms coexist: stack them
    for arm in arms {
        cur = layout_block(arm, cur, l, vars);
    }
    cur
}

fn alloc_hidden(l: &mut Layout, cur: &mut u32, stmt: &Stmt, label: &str) -> SlotId {
    let slot = *cur;
    l.slots.push(SlotInfo { name: format!("{label}@{}", stmt.id), slot, len: 1, target_bytes: 2 });
    *cur += 1;
    slot
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lay(src: &str) -> Layout {
        let mut p = ceu_parser::parse(src).unwrap();
        ceu_ast::desugar(&mut p);
        ceu_ast::number(&mut p);
        let r = ceu_ast::resolve::resolve(p).unwrap();
        layout(&r.program, &r.vars)
    }

    #[test]
    fn sequential_blocks_reuse_memory() {
        // Two loops in sequence... loops never terminate without break, so
        // use do-blocks: their locals overlay.
        let src = r#"
            do
               int a, b;
               nothing;
            end
            do
               int c, d, e;
               nothing;
            end
        "#;
        let l = lay(src);
        assert_eq!(l.data_len, 3, "sequential do-blocks must overlay: {:?}", l.slots);
    }

    #[test]
    fn parallel_arms_coexist() {
        let src = r#"
            par/and do
               int a, b;
               nothing;
            with
               int c;
               nothing;
            end
        "#;
        let l = lay(src);
        // 2 flags + 2 + 1 vars
        assert_eq!(l.data_len, 5, "{:?}", l.slots);
    }

    #[test]
    fn arrays_take_their_length() {
        let l = lay("int[10] keys; int idx;");
        assert_eq!(l.data_len, 11);
        let (slot, is_array) = l.var("keys#0").unwrap();
        assert_eq!(slot, 0);
        assert!(is_array);
        assert_eq!(l.var("idx#1").unwrap(), (10, false));
    }

    #[test]
    fn code_after_loop_reuses_loop_memory() {
        // the paper's §4.2: "the code following the loop reuses all memory
        // from the loop"
        let src = r#"
            input void A;
            loop do
               int x, y, z;
               await A;
               break;
            end
            int w;
            nothing;
        "#;
        let l = lay(src);
        // w reuses offset 0..1 region? w is declared in the outer block
        // after the loop: decls accumulate in their own block, composites
        // don't advance the cursor, so w lands at slot 0.
        assert_eq!(l.var("w#3").unwrap().0, 0);
        assert_eq!(l.data_len, 3);
    }

    #[test]
    fn if_branches_overlay() {
        let src = r#"
            int c;
            if c then
               int a, b;
               nothing;
            else
               int d;
               nothing;
            end
        "#;
        let l = lay(src);
        assert_eq!(l.data_len, 3); // c + max(2, 1)
    }

    #[test]
    fn value_block_result_slot_precedes_body() {
        let src = r#"
            int v;
            v = par do
               return 1;
            with
               int x;
               return x;
            end;
        "#;
        let l = lay(src);
        // v(1) + result(1) + x(1)
        assert_eq!(l.data_len, 3, "{:?}", l.slots);
        let hidden: Vec<_> = l.hidden.values().collect();
        assert!(hidden.iter().any(|h| h.result.is_some()));
    }

    #[test]
    fn target_sizes() {
        assert_eq!(target_size(&Type::int()), 2);
        assert_eq!(target_size(&Type::new("message_t", 1)), 2);
        assert_eq!(target_size(&Type::void()), 0);
        assert_eq!(target_size(&Type::new("u8", 0)), 1);
    }
}

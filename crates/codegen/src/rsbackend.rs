//! The Rust source backend: AOT-compiles a [`CompiledProgram`] to native
//! code the runtime can execute in place of the block interpreter.
//!
//! Where [`cbackend`](crate::cbackend) prints the paper's switch/case C
//! for inspection, this backend emits Rust that is actually *run*: the
//! output implements `ceu_runtime::native::NativeProgram`, and
//! `Machine::set_native` steps it instead of interpreting block
//! instructions. Build the emitted file with a `build.rs` (see
//! `crates/native-corpus`) or via `ceuc emit-rust`, then `include!` it.
//!
//! Lowering strategy (docs/NATIVE.md has the full design):
//!
//! * one `match` arm per [`BlockId`] — the paper's `switch (track)` —
//!   with `Goto` chains followed natively inside the `step` loop;
//! * flat postfix expressions become straight-line `let` bindings: each
//!   operand lands in a local, so the emitted code has no operand stack
//!   at all and rustc sees plain data flow;
//! * int-pure expressions (arithmetic over slots/constants/event values)
//!   additionally get an **i64 fast path**: each operand is guarded for
//!   `Value::Int` at entry, the computation runs in plain `i64` locals
//!   (registers, no `Value` moves or drop glue), and any non-int operand
//!   or division by zero falls back to the generic lowering, which
//!   re-derives the result and raises the real error;
//! * dispatch tables (`GATE_CONT`, `BLOCK_RANK`) are baked as `const`
//!   arrays;
//! * scheduler-visible instructions (spawn, emits, region kills, async
//!   starts) are not lowered — they `return Step::Trap`, the machine
//!   interprets that one instruction, and native execution resumes at the
//!   next one. Each instruction is guarded by `if ip <= k`, which is what
//!   makes mid-block resumption linear in code size;
//! * operator semantics are *not* re-emitted: generated code calls the
//!   same `ceu_runtime::native::{bin_op, un_op}` the interpreter uses.
//!
//! The emission is deterministic: identical `CompiledProgram`s produce
//! byte-identical source (golden-snapshot tested), and the program's
//! [`fingerprint`](CompiledProgram::fingerprint) is baked into the output
//! so a stale emission is rejected at attach time.

use crate::flat::FlatOp;
use crate::ir::{BBlock, CompiledProgram, Instr, Op, Place, Term, TimeAmount};
use ceu_ast::{BinOp, Span, UnOp};
use std::fmt::Write;

/// Emits the complete Rust source for `p`. The output is a self-contained
/// set of items (`Program`, `program()`, `FINGERPRINT`, const tables)
/// meant to be `include!`d inside a module that depends on `ceu-runtime`.
pub fn emit_rust(p: &CompiledProgram) -> String {
    let em = Emitter::new(p);
    em.emit()
}

/// `true` for instructions the native code must hand back to the
/// interpreter (they touch scheduler state the [`NativeCtx`] split borrow
/// deliberately excludes).
fn is_trap(op: &Op) -> bool {
    matches!(
        op,
        Op::Spawn(_)
            | Op::EmitInt { .. }
            | Op::EmitExt { .. }
            | Op::EmitOut { .. }
            | Op::EmitTime(_)
            | Op::ActivateAsync { .. }
            | Op::ClearRegion(_)
    )
}

fn span_lit(s: Span) -> String {
    format!("Span::new({}, {})", s.line, s.col)
}

/// `true` when a flat expression is pure integer arithmetic over slots,
/// constants and event values — the shape the i64 fast path can compile
/// to plain register code. Anything touching strings, pointers, memory
/// or the host falls back to the generic `Value` lowering.
fn int_pure(code: &[FlatOp]) -> bool {
    code.iter().all(|op| match op {
        FlatOp::Const(_)
        | FlatOp::Slot(_)
        | FlatOp::EventVal(_)
        | FlatOp::Truthy
        | FlatOp::ShortAnd(_)
        | FlatOp::ShortOr(_) => true,
        FlatOp::Un(op) => !matches!(op, UnOp::Addr | UnOp::Deref),
        FlatOp::Bin(op) => !matches!(op, BinOp::And | BinOp::Or),
        _ => false,
    })
}

/// A deduplicated operand source for the i64 fast path's entry guards.
#[derive(Clone, Copy, PartialEq, Eq)]
enum IntLoad {
    Slot(u32),
    Evt(u32),
}

struct Emitter<'a> {
    p: &'a CompiledProgram,
    /// Interned string literals, in first-occurrence order over the flat
    /// pool (deterministic). Emitted code clones `Arc`s out of
    /// `Program::strs` instead of allocating per evaluation.
    strs: Vec<&'a str>,
}

impl<'a> Emitter<'a> {
    fn new(p: &'a CompiledProgram) -> Self {
        let mut strs: Vec<&'a str> = Vec::new();
        for op in &p.flat.code {
            if let FlatOp::Str(s) = op {
                if !strs.contains(&&**s) {
                    strs.push(s);
                }
            }
        }
        Emitter { p, strs }
    }

    fn str_index(&self, s: &str) -> usize {
        self.strs.iter().position(|t| *t == s).expect("string interned at construction")
    }

    fn emit(&self) -> String {
        let p = self.p;
        let fp = p.fingerprint();
        let mut o = String::with_capacity(16 * 1024);
        let _ =
            writeln!(o, "// @generated by ceu-codegen's Rust backend (rsbackend) — do not edit.");
        let _ = writeln!(o, "// fingerprint: {fp:#018x}");
        let _ = writeln!(
            o,
            "// blocks: {}, gates: {}, exprs: {}",
            p.blocks.len(),
            p.gates.len(),
            p.flat.len()
        );
        o.push_str("#[allow(unused_imports)]\n");
        o.push_str("use ceu_runtime::native::{bin_op, time_value, un_op, BinOp, NativeCtx, NativeProgram, Span, Step, UnOp};\n");
        o.push_str("#[allow(unused_imports)]\n");
        o.push_str("use ceu_runtime::{Ptr, RuntimeError, Value};\n");
        o.push_str("#[allow(unused_imports)]\nuse std::sync::Arc;\n\n");
        let _ = writeln!(o, "#[allow(dead_code)]\npub const FINGERPRINT: u64 = {fp:#018x};");
        // baked dispatch tables: gate → continuation block, block → rank
        o.push_str("#[allow(dead_code)]\npub const GATE_CONT: &[u32] = &[");
        for (i, g) in p.gates.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "{}", g.cont);
        }
        o.push_str("];\n");
        o.push_str("#[allow(dead_code)]\npub const BLOCK_RANK: &[u8] = &[");
        for (i, b) in p.blocks.iter().enumerate() {
            if i > 0 {
                o.push_str(", ");
            }
            let _ = write!(o, "{}", b.rank);
        }
        o.push_str("];\n\n");
        o.push_str("#[allow(dead_code)]\npub struct Program {\n    strs: Vec<Arc<str>>,\n}\n\n");
        o.push_str("#[allow(dead_code)]\npub fn program() -> Program {\n");
        if self.strs.is_empty() {
            o.push_str("    Program { strs: Vec::new() }\n");
        } else {
            o.push_str("    Program {\n        strs: vec![\n");
            for s in &self.strs {
                let _ = writeln!(o, "            Arc::from({s:?}),");
            }
            o.push_str("        ],\n    }\n");
        }
        o.push_str("}\n\n");
        o.push_str("impl NativeProgram for Program {\n");
        o.push_str("    fn fingerprint(&self) -> u64 {\n        FINGERPRINT\n    }\n\n");
        o.push_str("    fn gate_conts(&self) -> &'static [u32] {\n        GATE_CONT\n    }\n\n");
        o.push_str("    #[allow(unused_variables, unused_mut, unused_assignments, unused_labels, unreachable_code, unreachable_patterns, clippy::all)]\n");
        o.push_str("    fn step(&self, block: u32, ip: u32, ctx: &mut NativeCtx<'_>) -> Result<Step, RuntimeError> {\n");
        o.push_str("        let mut blk = block;\n");
        o.push_str("        let mut ip = ip;\n");
        o.push_str("        loop {\n");
        o.push_str("            // one fuel unit per fresh block entry (trap resumes are free),\n");
        o.push_str("            // mirroring the interpreter's per-track budget\n");
        o.push_str("            if ip == 0 {\n");
        o.push_str("                if *ctx.fuel == 0 {\n                    return Ok(Step::OutOfFuel);\n                }\n");
        o.push_str("                *ctx.fuel -= 1;\n");
        o.push_str("            }\n");
        o.push_str("            match blk {\n");
        for (b, blk) in p.blocks.iter().enumerate() {
            self.emit_block(&mut o, b as u32, blk);
        }
        o.push_str("                _ => {\n");
        o.push_str("                    return Err(RuntimeError::new(Span::new(0, 0), \"native step: unknown block\"));\n");
        o.push_str("                }\n");
        o.push_str("            }\n");
        o.push_str("        }\n");
        o.push_str("    }\n");
        o.push_str("}\n");
        o
    }

    fn emit_block(&self, o: &mut String, b: u32, blk: &BBlock) {
        let ind = "                ";
        let _ = writeln!(o, "{ind}// {} (rank {})", blk.label, blk.rank);
        let _ = writeln!(o, "{ind}{b}u32 => {{");
        for (k, instr) in blk.instrs.iter().enumerate() {
            let guard = if k == 0 { "if ip == 0".to_string() } else { format!("if ip <= {k}") };
            let _ = writeln!(o, "{ind}    {guard} {{");
            self.emit_instr(o, &format!("{ind}        "), b, k as u32, instr);
            let _ = writeln!(o, "{ind}    }}");
        }
        self.emit_term(o, &format!("{ind}    "), blk);
        let _ = writeln!(o, "{ind}}}");
    }

    fn emit_instr(&self, o: &mut String, ind: &str, b: u32, k: u32, instr: &Instr) {
        if is_trap(&instr.op) {
            let _ = writeln!(o, "{ind}// {:?} → interpreter", op_name(&instr.op));
            let _ = writeln!(o, "{ind}return Ok(Step::Trap {{ block: {b}, ip: {k} }});");
            return;
        }
        let sp = span_lit(instr.span);
        let mut n = 0u32;
        match &instr.op {
            Op::Assign { dst: Place::Slot(s), src } if int_pure(self.p.flat.code_of(*src)) => {
                // i64 fast path: guard every slot/event operand for being
                // an Int, compute in plain registers, store once. The
                // generic lowering below is the fallback when any guard
                // fails (a slot holding a string/pointer) — it re-derives
                // the result from scratch, so falling back is always safe.
                let code = self.p.flat.code_of(*src);
                let _ = writeln!(o, "{ind}let __nat = 'ifast: {{");
                let inner = format!("{ind}    ");
                let mut loads: Vec<(IntLoad, String)> = Vec::new();
                self.emit_int_guards(o, &inner, &mut n, code, &mut loads);
                let r = self.int_expr_code(o, &inner, &mut n, code, &loads);
                let _ = writeln!(o, "{inner}ctx.set_slot({s}, Value::Int({r}));");
                let _ = writeln!(o, "{inner}true");
                let _ = writeln!(o, "{ind}}};");
                let _ = writeln!(o, "{ind}if !__nat {{");
                let v = self.expr(o, &inner, &mut n, *src, &sp);
                let _ = writeln!(o, "{inner}ctx.set_slot({s}, {v});");
                let _ = writeln!(o, "{ind}}}");
            }
            Op::Assign { dst, src } => {
                let v = self.expr(o, ind, &mut n, *src, &sp);
                match dst {
                    Place::Slot(s) => {
                        let _ = writeln!(o, "{ind}ctx.set_slot({s}, {v});");
                    }
                    Place::Index(s, idx) => {
                        // source first, then index — the interpreter's order
                        let i = self.expr(o, ind, &mut n, *idx, &sp);
                        let _ = writeln!(o, "{ind}ctx.store_index({s}, {i}, {v}, {sp})?;");
                    }
                    Place::Deref(ptr) => {
                        let t = self.expr(o, ind, &mut n, *ptr, &sp);
                        let _ = writeln!(o, "{ind}ctx.store_deref({t}, {v}, {sp})?;");
                    }
                }
            }
            Op::Eval(rv) => {
                let v = self.expr(o, ind, &mut n, *rv, &sp);
                let _ = writeln!(o, "{ind}let _ = {v};");
            }
            Op::ActivateEvt { gate } | Op::ActivateNever { gate } => {
                let _ = writeln!(o, "{ind}ctx.arm({gate});");
            }
            Op::ActivateTime { gate, us } => match us {
                TimeAmount::Const(us) => {
                    let _ = writeln!(o, "{ind}ctx.arm_time({gate}, {us}u64);");
                }
                TimeAmount::Dyn(rv) => {
                    let v = self.expr(o, ind, &mut n, *rv, &sp);
                    let _ = writeln!(o, "{ind}ctx.arm_time({gate}, time_value({v}, {sp})?);");
                }
            },
            Op::SetFlag(s) => {
                let _ = writeln!(o, "{ind}ctx.set_slot({s}, Value::Int(1));");
            }
            Op::ClearFlags { lo, hi } => {
                let _ = writeln!(o, "{ind}ctx.clear_flags({lo}, {hi});");
            }
            trap => unreachable!("trap op emitted inline: {trap:?}"),
        }
    }

    fn emit_term(&self, o: &mut String, ind: &str, blk: &BBlock) {
        let sp = span_lit(Span::default());
        match &blk.term {
            Term::Halt => {
                let _ = writeln!(o, "{ind}return Ok(Step::Halt);");
            }
            Term::Goto(t) => {
                let _ = writeln!(o, "{ind}blk = {t};");
                let _ = writeln!(o, "{ind}ip = 0;");
            }
            Term::If { cond, then_b, else_b } => {
                let mut n = 0u32;
                let code = self.p.flat.code_of(*cond);
                let inner = format!("{ind}    ");
                if int_pure(code) {
                    let _ = writeln!(o, "{ind}let __nat = 'ifast: {{");
                    let mut loads: Vec<(IntLoad, String)> = Vec::new();
                    self.emit_int_guards(o, &inner, &mut n, code, &mut loads);
                    let r = self.int_expr_code(o, &inner, &mut n, code, &loads);
                    let _ =
                        writeln!(o, "{inner}blk = if {r} != 0 {{ {then_b} }} else {{ {else_b} }};");
                    let _ = writeln!(o, "{inner}true");
                    let _ = writeln!(o, "{ind}}};");
                    let _ = writeln!(o, "{ind}if !__nat {{");
                    let v = self.expr(o, &inner, &mut n, *cond, &sp);
                    let _ = writeln!(
                        o,
                        "{inner}blk = if ({v}).truthy() {{ {then_b} }} else {{ {else_b} }};"
                    );
                    let _ = writeln!(o, "{ind}}}");
                } else {
                    let _ = writeln!(o, "{ind}{{");
                    let v = self.expr(o, &inner, &mut n, *cond, &sp);
                    let _ = writeln!(
                        o,
                        "{inner}blk = if ({v}).truthy() {{ {then_b} }} else {{ {else_b} }};"
                    );
                    let _ = writeln!(o, "{ind}}}");
                }
                let _ = writeln!(o, "{ind}ip = 0;");
            }
            Term::JoinAnd { lo, hi, cont } => {
                let _ = writeln!(o, "{ind}if !ctx.flags_set({lo}, {hi}) {{");
                let _ = writeln!(o, "{ind}    return Ok(Step::Halt);");
                let _ = writeln!(o, "{ind}}}");
                let _ = writeln!(o, "{ind}blk = {cont};");
                let _ = writeln!(o, "{ind}ip = 0;");
            }
            Term::TerminateProgram { value } => match value {
                Some(rv) => {
                    let mut n = 0u32;
                    let _ = writeln!(o, "{ind}{{");
                    let inner = format!("{ind}    ");
                    let v = self.expr(o, &inner, &mut n, *rv, &sp);
                    let _ = writeln!(o, "{inner}return Ok(Step::Terminate(({v}).as_int()));");
                    let _ = writeln!(o, "{ind}}}");
                }
                None => {
                    let _ = writeln!(o, "{ind}return Ok(Step::Terminate(None));");
                }
            },
            Term::TerminateAsync { .. } => {
                // async bodies are stepped by the machine's round-robin
                // scheduler, never through native step — reaching this arm
                // is the same internal error the interpreter raises
                let _ = writeln!(
                    o,
                    "{ind}return Err(RuntimeError::new({sp}, \"internal error: async terminator reached from synchronous code\"));"
                );
            }
        }
    }

    /// Lowers one interned expression to straight-line `let` bindings
    /// appended to `o`, returning the name of the local holding the
    /// result. This is the symbolic version of the interpreter's operand
    /// stack: every value the postfix code would push becomes a named
    /// local, consumed exactly once, in the same left-to-right
    /// side-effect and error order.
    fn expr(&self, o: &mut String, ind: &str, n: &mut u32, id: u32, sp: &str) -> String {
        let code = self.p.flat.code_of(id);
        self.expr_code(o, ind, n, code, sp)
    }

    fn expr_code(
        &self,
        o: &mut String,
        ind: &str,
        n: &mut u32,
        code: &[FlatOp],
        sp: &str,
    ) -> String {
        let mut st: Vec<String> = Vec::new();
        let mut pc = 0usize;
        while pc < code.len() {
            let op = &code[pc];
            pc += 1;
            match op {
                FlatOp::Const(v) => self.bind(o, ind, n, &mut st, format!("Value::Int({v}i64)")),
                FlatOp::Str(s) => {
                    let k = self.str_index(s);
                    self.bind(
                        o,
                        ind,
                        n,
                        &mut st,
                        format!("Value::Str(Arc::clone(&self.strs[{k}]))"),
                    );
                }
                FlatOp::Null => self.bind(o, ind, n, &mut st, "Value::Null".into()),
                FlatOp::Slot(s) => self.bind(o, ind, n, &mut st, format!("ctx.slot({s})")),
                FlatOp::AddrOf(s) => {
                    self.bind(o, ind, n, &mut st, format!("Value::Ptr(Ptr::Data({s}))"));
                }
                FlatOp::EventVal(e) => {
                    self.bind(o, ind, n, &mut st, format!("ctx.evt({})", e.index()));
                }
                FlatOp::CGlobal(name) => {
                    self.bind(o, ind, n, &mut st, format!("ctx.global({name:?}, {sp})?"));
                }
                FlatOp::Un(op) => {
                    let v = st.pop().expect("rsbackend: unary operand");
                    self.bind(o, ind, n, &mut st, format!("un_op(UnOp::{op:?}, {v}, {sp})?"));
                }
                FlatOp::Bin(op) => {
                    let b = st.pop().expect("rsbackend: rhs operand");
                    let a = st.pop().expect("rsbackend: lhs operand");
                    self.bind(
                        o,
                        ind,
                        n,
                        &mut st,
                        format!("bin_op(BinOp::{op:?}, {a}, {b}, {sp})?"),
                    );
                }
                FlatOp::ShortAnd(skip) | FlatOp::ShortOr(skip) => {
                    // the skipped range is the self-contained right operand
                    // (plus its trailing Truthy); lower it into the else arm
                    let and = matches!(op, FlatOp::ShortAnd(_));
                    let l = st.pop().expect("rsbackend: short-circuit lhs");
                    let sub = &code[pc..pc + *skip as usize];
                    pc += *skip as usize;
                    let t = self.fresh(n);
                    let (test, decided) =
                        if and { ("!", "Value::Int(0)") } else { ("", "Value::Int(1)") };
                    let _ = writeln!(o, "{ind}let {t} = if {test}({l}).truthy() {{");
                    let _ = writeln!(o, "{ind}    {decided}");
                    let _ = writeln!(o, "{ind}}} else {{");
                    let inner = format!("{ind}    ");
                    let r = self.expr_code(o, &inner, n, sub, sp);
                    let _ = writeln!(o, "{inner}{r}");
                    let _ = writeln!(o, "{ind}}};");
                    st.push(t);
                }
                FlatOp::Truthy => {
                    let v = st.pop().expect("rsbackend: truthy operand");
                    self.bind(o, ind, n, &mut st, format!("Value::Int(({v}).truthy() as i64)"));
                }
                FlatOp::Index => {
                    let i = st.pop().expect("rsbackend: index");
                    let b = st.pop().expect("rsbackend: index base");
                    self.bind(o, ind, n, &mut st, format!("ctx.index({b}, {i}, {sp})?"));
                }
                FlatOp::CCall { name, argc } => {
                    let at = st.len() - *argc as usize;
                    let args = st.split_off(at).join(", ");
                    self.bind(o, ind, n, &mut st, format!("ctx.call({name:?}, &[{args}], {sp})?"));
                }
                FlatOp::Deref => {
                    let v = st.pop().expect("rsbackend: deref operand");
                    self.bind(o, ind, n, &mut st, format!("ctx.deref({v}, {sp})?"));
                }
                FlatOp::Field { name, arrow } => {
                    let b = st.pop().expect("rsbackend: field base");
                    self.bind(
                        o,
                        ind,
                        n,
                        &mut st,
                        format!("ctx.field({b}, {name:?}, {arrow}, {sp})?"),
                    );
                }
            }
        }
        st.pop().expect("rsbackend: expression result")
    }

    /// Emits the i64 fast path's entry guards: every distinct slot and
    /// event-value operand of `code` is pattern-matched for `Value::Int`
    /// (deduplicated, in first-occurrence order); any other runtime type
    /// breaks out to the generic fallback. Hoisting the guards above the
    /// computation is safe because loads have no side effects and the
    /// fallback re-derives everything.
    fn emit_int_guards(
        &self,
        o: &mut String,
        ind: &str,
        n: &mut u32,
        code: &[FlatOp],
        loads: &mut Vec<(IntLoad, String)>,
    ) {
        for op in code {
            let key = match op {
                FlatOp::Slot(s) => IntLoad::Slot(*s),
                FlatOp::EventVal(e) => IntLoad::Evt(e.index() as u32),
                _ => continue,
            };
            if loads.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let t = self.fresh_int(n);
            let place = match key {
                IntLoad::Slot(s) => format!("ctx.data[{s}usize]"),
                IntLoad::Evt(e) => format!("ctx.evtval[{e}usize]"),
            };
            let _ =
                writeln!(o, "{ind}let &Value::Int({t}) = &{place} else {{ break 'ifast false }};");
            loads.push((key, t));
        }
    }

    /// The i64 twin of [`expr_code`](Self::expr_code): same postfix walk,
    /// same left-to-right order, but every operand is a plain `i64` local
    /// and the operators are the `wrapping_*` bodies `bin_op`'s fast path
    /// uses. Division/modulo by zero breaks out to the generic fallback,
    /// which raises the real error.
    fn int_expr_code(
        &self,
        o: &mut String,
        ind: &str,
        n: &mut u32,
        code: &[FlatOp],
        loads: &[(IntLoad, String)],
    ) -> String {
        let find = |key: IntLoad| {
            loads
                .iter()
                .find(|(k, _)| *k == key)
                .map(|(_, t)| t.clone())
                .expect("guard emitted for every load")
        };
        let mut st: Vec<String> = Vec::new();
        let mut pc = 0usize;
        while pc < code.len() {
            let op = &code[pc];
            pc += 1;
            match op {
                FlatOp::Const(v) => st.push(format!("{v}i64")),
                FlatOp::Slot(s) => st.push(find(IntLoad::Slot(*s))),
                FlatOp::EventVal(e) => st.push(find(IntLoad::Evt(e.index() as u32))),
                FlatOp::Un(op) => {
                    let v = st.pop().expect("rsbackend: unary operand");
                    let rhs = match op {
                        UnOp::Not => format!("(({v}) == 0) as i64"),
                        UnOp::Neg => format!("({v}).wrapping_neg()"),
                        UnOp::Plus => v,
                        UnOp::BitNot => format!("!({v})"),
                        UnOp::Addr | UnOp::Deref => unreachable!("int_pure excludes &/*"),
                    };
                    self.bind_int(o, ind, n, &mut st, rhs);
                }
                FlatOp::Bin(op) => {
                    let b = st.pop().expect("rsbackend: rhs operand");
                    let a = st.pop().expect("rsbackend: lhs operand");
                    if matches!(op, BinOp::Div | BinOp::Mod) {
                        // bind the divisor so the zero test and the
                        // division see the same value
                        let d = self.fresh_int(n);
                        let _ = writeln!(o, "{ind}let {d} = {b};");
                        let _ = writeln!(o, "{ind}if {d} == 0 {{ break 'ifast false }}");
                        let call =
                            if matches!(op, BinOp::Div) { "wrapping_div" } else { "wrapping_rem" };
                        self.bind_int(o, ind, n, &mut st, format!("({a}).{call}({d})"));
                        continue;
                    }
                    let rhs = match op {
                        BinOp::Add => format!("({a}).wrapping_add({b})"),
                        BinOp::Sub => format!("({a}).wrapping_sub({b})"),
                        BinOp::Mul => format!("({a}).wrapping_mul({b})"),
                        BinOp::Lt => format!("(({a}) < ({b})) as i64"),
                        BinOp::Gt => format!("(({a}) > ({b})) as i64"),
                        BinOp::Le => format!("(({a}) <= ({b})) as i64"),
                        BinOp::Ge => format!("(({a}) >= ({b})) as i64"),
                        BinOp::Eq => format!("(({a}) == ({b})) as i64"),
                        BinOp::Ne => format!("(({a}) != ({b})) as i64"),
                        BinOp::BitAnd => format!("({a}) & ({b})"),
                        BinOp::BitOr => format!("({a}) | ({b})"),
                        BinOp::BitXor => format!("({a}) ^ ({b})"),
                        BinOp::Shl => format!("({a}).wrapping_shl(({b}) as u32)"),
                        BinOp::Shr => format!("({a}).wrapping_shr(({b}) as u32)"),
                        BinOp::Div | BinOp::Mod => unreachable!("handled above"),
                        BinOp::And | BinOp::Or => unreachable!("int_pure excludes &&/||"),
                    };
                    self.bind_int(o, ind, n, &mut st, rhs);
                }
                FlatOp::ShortAnd(skip) | FlatOp::ShortOr(skip) => {
                    let and = matches!(op, FlatOp::ShortAnd(_));
                    let l = st.pop().expect("rsbackend: short-circuit lhs");
                    let sub = &code[pc..pc + *skip as usize];
                    pc += *skip as usize;
                    let t = self.fresh_int(n);
                    let (test, decided) = if and { ("==", "0i64") } else { ("!=", "1i64") };
                    let _ = writeln!(o, "{ind}let {t} = if ({l}) {test} 0 {{");
                    let _ = writeln!(o, "{ind}    {decided}");
                    let _ = writeln!(o, "{ind}}} else {{");
                    let inner = format!("{ind}    ");
                    let r = self.int_expr_code(o, &inner, n, sub, loads);
                    let _ = writeln!(o, "{inner}{r}");
                    let _ = writeln!(o, "{ind}}};");
                    st.push(t);
                }
                FlatOp::Truthy => {
                    let v = st.pop().expect("rsbackend: truthy operand");
                    self.bind_int(o, ind, n, &mut st, format!("(({v}) != 0) as i64"));
                }
                other => unreachable!("int_pure excludes {other:?}"),
            }
        }
        st.pop().expect("rsbackend: expression result")
    }

    fn fresh_int(&self, n: &mut u32) -> String {
        let t = format!("__i{n}");
        *n += 1;
        t
    }

    fn bind_int(&self, o: &mut String, ind: &str, n: &mut u32, st: &mut Vec<String>, rhs: String) {
        let t = self.fresh_int(n);
        let _ = writeln!(o, "{ind}let {t} = {rhs};");
        st.push(t);
    }

    fn fresh(&self, n: &mut u32) -> String {
        let t = format!("__t{n}");
        *n += 1;
        t
    }

    fn bind(&self, o: &mut String, ind: &str, n: &mut u32, st: &mut Vec<String>, rhs: String) {
        let t = self.fresh(n);
        let _ = writeln!(o, "{ind}let {t} = {rhs};");
        st.push(t);
    }
}

fn op_name(op: &Op) -> &'static str {
    match op {
        Op::Spawn(_) => "Spawn",
        Op::EmitInt { .. } => "EmitInt",
        Op::EmitExt { .. } => "EmitExt",
        Op::EmitOut { .. } => "EmitOut",
        Op::EmitTime(_) => "EmitTime",
        Op::ActivateAsync { .. } => "ActivateAsync",
        Op::ClearRegion(_) => "ClearRegion",
        Op::Assign { .. } => "Assign",
        Op::Eval(_) => "Eval",
        Op::ActivateEvt { .. } => "ActivateEvt",
        Op::ActivateTime { .. } => "ActivateTime",
        Op::ActivateNever { .. } => "ActivateNever",
        Op::SetFlag(_) => "SetFlag",
        Op::ClearFlags { .. } => "ClearFlags",
    }
}

#[cfg(test)]
mod tests {
    use crate::compile_source;
    use crate::rsbackend::emit_rust;

    const SRC: &str = "input int A, B;\nint a, b, ret;\na = await A;\nb = await B;\nret = a + b;";

    #[test]
    fn emits_native_program_shape() {
        let p = compile_source(SRC).unwrap();
        let rs = emit_rust(&p);
        assert!(rs.contains("impl NativeProgram for Program"), "trait impl:\n{rs}");
        assert!(rs.contains("pub const FINGERPRINT: u64"), "baked fingerprint");
        assert!(rs.contains("pub const GATE_CONT: &[u32]"), "baked dispatch table");
        assert!(rs.contains("match blk"), "match-on-BlockId dispatch");
        assert!(rs.contains("Step::Halt"), "halt terminator lowered");
    }

    #[test]
    fn fingerprint_in_source_matches_program() {
        let p = compile_source(SRC).unwrap();
        let rs = emit_rust(&p);
        assert!(rs.contains(&format!("{:#018x}", p.fingerprint())));
    }

    #[test]
    fn scheduler_instructions_become_traps() {
        let p =
            compile_source("input void A, B;\npar do\n await A;\nwith\n await B;\nend").unwrap();
        let rs = emit_rust(&p);
        assert!(rs.contains("Step::Trap"), "spawns must trap to the interpreter:\n{rs}");
    }

    #[test]
    fn emission_is_deterministic() {
        // same program → byte-identical source, twice over: once from the
        // same artifact, once from an independent compile of the same
        // source (guards dispatch-table iteration order)
        let p1 = compile_source(SRC).unwrap();
        let p2 = compile_source(SRC).unwrap();
        let a = emit_rust(&p1);
        assert_eq!(a, emit_rust(&p1), "same artifact must emit identically");
        assert_eq!(a, emit_rust(&p2), "recompiled artifact must emit identically");
        assert_eq!(p1.fingerprint(), p2.fingerprint(), "fingerprints must agree");
    }

    #[test]
    fn short_circuit_lowers_to_branches() {
        let p =
            compile_source("input int A;\nint x, y;\nx = await A;\ny = x > 0 && x < 10;").unwrap();
        let rs = emit_rust(&p);
        assert!(rs.contains(".truthy() {"), "short-circuit must lower to a branch:\n{rs}");
    }
}

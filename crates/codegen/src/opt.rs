//! Flat-code optimizer pass (the compiler's `-O` stage).
//!
//! Runs over a finished [`CompiledProgram`] after lowering (and after the
//! analyses, which want the unoptimized shape):
//!
//! 1. **Expression simplification** — constant folding and algebraic
//!    peephole rewrites on each interned tree, then a full re-flatten of
//!    the postfix pool. `ExprId`s are stable (same count, same order), and
//!    [`CompiledProgram::exprs`] keeps the *original* trees: the C backend
//!    stays source-faithful and the runtime's tree-eval ablation doubles
//!    as a differential oracle for every rewrite below.
//! 2. **Branch-on-const** — an `If` whose condition simplified to a
//!    constant becomes a `Goto`.
//! 3. **Dead-block elimination** — blocks unreachable from the boot
//!    block, every gate continuation and every async entry are removed
//!    and `BlockId`s compacted. Gate continuations and async entries are
//!    pinned as roots even when their arming op is dead, so the gate and
//!    async tables stay valid for the C backend.
//! 4. **Unreachable-gate elimination** — gates no live block can ever arm
//!    are pruned from the hot dispatch tables (`event_gates` /
//!    `timer_gates`), so reactions never test them.
//!
//! Every rewrite must mirror the runtime *exactly*: arithmetic wraps,
//! `&&`/`||` produce 0/1 and short-circuit, and division or modulo by a
//! constant zero is **never** folded — it stays a runtime error.

use crate::flat::FlatPool;
use crate::ir::{CompiledProgram, Op, Rv, Term};
use ceu_ast::{BinOp, UnOp};

/// What the pass did, for logs, tests and `ceuc` diagnostics.
#[derive(Clone, Copy, Debug, Default)]
pub struct OptStats {
    /// Interned expressions whose tree was rewritten.
    pub exprs_simplified: usize,
    /// Flat ops before / after the re-flatten.
    pub flat_ops_before: usize,
    pub flat_ops_after: usize,
    /// `If` terminators turned into `Goto`.
    pub branches_folded: usize,
    /// Basic blocks removed as unreachable.
    pub blocks_removed: usize,
    /// Gate entries pruned from the dispatch tables.
    pub gates_pruned: usize,
}

/// Optimizes `prog` in place. Semantics-preserving by construction; the
/// three-way differential corpus test (tree vs flat vs flat+opt) pins it.
pub fn optimize(prog: &mut CompiledProgram) -> OptStats {
    let mut stats = OptStats { flat_ops_before: prog.flat.code.len(), ..OptStats::default() };

    // 1. simplify every interned tree, re-flatten the pool 1:1
    let simplified: Vec<Rv> = prog.exprs.iter().map(simplify).collect();
    let mut pool = FlatPool::default();
    for (rv, orig) in simplified.iter().zip(&prog.exprs) {
        if rv != orig {
            stats.exprs_simplified += 1;
        }
        pool.intern(rv);
    }
    prog.flat = pool;
    stats.flat_ops_after = prog.flat.code.len();

    // 2. branch-on-const
    for blk in &mut prog.blocks {
        if let Term::If { cond, then_b, else_b } = blk.term {
            if let Some(t) = const_truth(&simplified[cond as usize]) {
                blk.term = Term::Goto(if t { then_b } else { else_b });
                stats.branches_folded += 1;
            }
        }
    }

    // 3. + 4.
    stats.blocks_removed = remove_dead_blocks(prog);
    stats.gates_pruned = prune_unarmable_gates(prog);
    stats
}

/// Compile-time truth value of a simplified expression, mirroring
/// `Value::truthy` (`Int(0)` and `null` are false, strings are true).
fn const_truth(rv: &Rv) -> Option<bool> {
    match rv {
        Rv::Const(n) => Some(*n != 0),
        Rv::Null => Some(false),
        Rv::Str(_) => Some(true),
        _ => None,
    }
}

// ---- expression rewriting --------------------------------------------------

/// Bottom-up semantics-preserving rewrite of one tree.
pub fn simplify(rv: &Rv) -> Rv {
    match rv {
        Rv::Un(op, a) => simplify_un(*op, simplify(a)),
        Rv::Bin(op, a, b) => simplify_bin(*op, simplify(a), simplify(b)),
        Rv::Index(a, b) => Rv::Index(Box::new(simplify(a)), Box::new(simplify(b))),
        Rv::CCall(n, args) => Rv::CCall(n.clone(), args.iter().map(simplify).collect()),
        Rv::Deref(a) => Rv::Deref(Box::new(simplify(a))),
        Rv::Field(a, n, arrow) => Rv::Field(Box::new(simplify(a)), n.clone(), *arrow),
        // casts are value-preserving at runtime (flatten drops them too);
        // erasing the node lets constants fold through
        Rv::Cast(a) => simplify(a),
        other => other.clone(),
    }
}

/// `true` when the expression, *if it evaluates at all*, yields an `Int`.
/// `Add`/`Sub` are excluded (data-pointer arithmetic yields pointers) and
/// so are slots/event values (untyped: they may hold pointers or strings,
/// whose coercion errors must survive optimization).
fn is_int(rv: &Rv) -> bool {
    match rv {
        Rv::Const(_) | Rv::SizeOf(_) => true,
        Rv::Un(UnOp::Not | UnOp::Neg | UnOp::Plus | UnOp::BitNot, _) => true,
        Rv::Bin(op, ..) => !matches!(op, BinOp::Add | BinOp::Sub),
        _ => false,
    }
}

/// `true` when the expression yields exactly 0 or 1.
fn is_bool(rv: &Rv) -> bool {
    match rv {
        Rv::Const(n) => *n == 0 || *n == 1,
        Rv::Un(UnOp::Not, _) => true,
        Rv::Bin(op, ..) => matches!(
            op,
            BinOp::And
                | BinOp::Or
                | BinOp::Eq
                | BinOp::Ne
                | BinOp::Lt
                | BinOp::Gt
                | BinOp::Le
                | BinOp::Ge
        ),
        _ => false,
    }
}

/// `true` when evaluation cannot fail, has no side effects, and yields an
/// `Int` — the bar for *deleting* an evaluation (e.g. `x * 0`).
fn is_pure_int(rv: &Rv) -> bool {
    matches!(rv, Rv::Const(_) | Rv::SizeOf(_) | Rv::Null)
}

/// 0/1-coercion of an arbitrary operand: `!!x` (total on every value).
fn truthy_of(rv: Rv) -> Rv {
    if is_bool(&rv) {
        rv
    } else {
        Rv::Un(UnOp::Not, Box::new(Rv::Un(UnOp::Not, Box::new(rv))))
    }
}

fn simplify_un(op: UnOp, a: Rv) -> Rv {
    match (op, &a) {
        (UnOp::Not, Rv::Const(n)) => Rv::Const((*n == 0) as i64),
        (UnOp::Not, Rv::Null) => Rv::Const(1),
        (UnOp::Not, Rv::Str(_)) => Rv::Const(0),
        // `!!x` → `x` only when x is already 0/1 (otherwise `!!` coerces)
        (UnOp::Not, Rv::Un(UnOp::Not, inner)) if is_bool(inner) => (**inner).clone(),
        // `-MIN` is left to the runtime (mirrors its overflow behaviour)
        (UnOp::Neg, Rv::Const(n)) if *n != i64::MIN => Rv::Const(-*n),
        (UnOp::BitNot, Rv::Const(n)) => Rv::Const(!*n),
        (UnOp::Plus, _) if is_int(&a) => a,
        _ => Rv::Un(op, Box::new(a)),
    }
}

fn simplify_bin(op: BinOp, a: Rv, b: Rv) -> Rv {
    use BinOp::*;
    if let (Rv::Const(x), Rv::Const(y)) = (&a, &b) {
        if let Some(v) = fold_bin(op, *x, *y) {
            return Rv::Const(v);
        }
    }
    match (op, &a, &b) {
        // short-circuit with a constant left side decides at compile time
        // (skipping the right side is exactly what the runtime would do)
        (And, Rv::Const(0), _) => Rv::Const(0),
        (And, Rv::Const(_), _) => truthy_of(b),
        (Or, Rv::Const(0), _) => truthy_of(b),
        (Or, Rv::Const(_), _) => Rv::Const(1),
        // identities: only where the operand type is provably compatible
        // (slots stay untouched — they may hold pointers or strings)
        (Add | Sub, _, Rv::Const(0)) if is_int(&a) || matches!(a, Rv::AddrOf(_)) => a,
        (Add, Rv::Const(0), _) if is_int(&b) => b,
        (Mul | Div, _, Rv::Const(1)) if is_int(&a) => a,
        (Mul, Rv::Const(1), _) if is_int(&b) => b,
        (Mul, _, Rv::Const(0)) if is_pure_int(&a) => Rv::Const(0),
        (Mul, Rv::Const(0), _) if is_pure_int(&b) => Rv::Const(0),
        (BitOr | BitXor | Shl | Shr, _, Rv::Const(0)) if is_int(&a) => a,
        _ => Rv::Bin(op, Box::new(a), Box::new(b)),
    }
}

/// Constant-folds one binary op with the runtime's exact semantics
/// (wrapping arithmetic, C comparisons, 0/1 logic). Returns `None` for
/// division/modulo by zero: those must remain runtime errors.
fn fold_bin(op: BinOp, x: i64, y: i64) -> Option<i64> {
    use BinOp::*;
    Some(match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Mul => x.wrapping_mul(y),
        Div => {
            if y == 0 {
                return None;
            }
            x.wrapping_div(y)
        }
        Mod => {
            if y == 0 {
                return None;
            }
            x.wrapping_rem(y)
        }
        Lt => (x < y) as i64,
        Gt => (x > y) as i64,
        Le => (x <= y) as i64,
        Ge => (x >= y) as i64,
        Eq => (x == y) as i64,
        Ne => (x != y) as i64,
        And => (x != 0 && y != 0) as i64,
        Or => (x != 0 || y != 0) as i64,
        BitAnd => x & y,
        BitOr => x | y,
        BitXor => x ^ y,
        Shl => x.wrapping_shl(y as u32),
        Shr => x.wrapping_shr(y as u32),
    })
}

// ---- control-flow cleanup --------------------------------------------------

/// Removes blocks unreachable from the boot block, gate continuations and
/// async entries, compacting `BlockId`s. Returns how many were removed.
fn remove_dead_blocks(prog: &mut CompiledProgram) -> usize {
    let n = prog.blocks.len();
    let mut live = vec![false; n];
    let mut work: Vec<u32> = Vec::new();

    fn mark(b: u32, live: &mut [bool], work: &mut Vec<u32>) {
        if !std::mem::replace(&mut live[b as usize], true) {
            work.push(b);
        }
    }

    mark(prog.boot, &mut live, &mut work);
    for g in &prog.gates {
        mark(g.cont, &mut live, &mut work);
    }
    for a in &prog.asyncs {
        mark(a.entry, &mut live, &mut work);
    }
    while let Some(b) = work.pop() {
        let blk = &prog.blocks[b as usize];
        for instr in &blk.instrs {
            if let Op::Spawn(t) = instr.op {
                mark(t, &mut live, &mut work);
            }
        }
        match blk.term {
            Term::Goto(t) => mark(t, &mut live, &mut work),
            Term::If { then_b, else_b, .. } => {
                mark(then_b, &mut live, &mut work);
                mark(else_b, &mut live, &mut work);
            }
            Term::JoinAnd { cont, .. } => mark(cont, &mut live, &mut work),
            _ => {}
        }
    }

    let removed = live.iter().filter(|&&l| !l).count();
    if removed == 0 {
        return 0;
    }

    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for (i, &l) in live.iter().enumerate() {
        if l {
            map[i] = next;
            next += 1;
        }
    }

    let old = std::mem::take(&mut prog.blocks);
    prog.blocks = old
        .into_iter()
        .enumerate()
        .filter(|(i, _)| live[*i])
        .map(|(_, mut blk)| {
            for instr in &mut blk.instrs {
                if let Op::Spawn(t) = &mut instr.op {
                    *t = map[*t as usize];
                }
            }
            match &mut blk.term {
                Term::Goto(t) => *t = map[*t as usize],
                Term::If { then_b, else_b, .. } => {
                    *then_b = map[*then_b as usize];
                    *else_b = map[*else_b as usize];
                }
                Term::JoinAnd { cont, .. } => *cont = map[*cont as usize],
                _ => {}
            }
            blk
        })
        .collect();
    prog.boot = map[prog.boot as usize];
    for g in &mut prog.gates {
        g.cont = map[g.cont as usize];
    }
    for a in &mut prog.asyncs {
        a.entry = map[a.entry as usize];
    }
    let spans = std::mem::take(&mut prog.debug.block_spans);
    prog.debug.block_spans =
        spans.into_iter().enumerate().filter(|(i, _)| live[*i]).map(|(_, s)| s).collect();
    removed
}

/// Prunes gates no live block can arm from the hot dispatch tables. Gate
/// ids are *not* renumbered (regions address gates by contiguous range);
/// the gate table itself stays intact for the C backend.
fn prune_unarmable_gates(prog: &mut CompiledProgram) -> usize {
    let mut armable = vec![false; prog.gates.len()];
    for blk in &prog.blocks {
        for instr in &blk.instrs {
            match instr.op {
                Op::ActivateEvt { gate }
                | Op::ActivateNever { gate }
                | Op::ActivateTime { gate, .. }
                | Op::ActivateAsync { gate, .. } => armable[gate as usize] = true,
                _ => {}
            }
        }
    }
    let mut pruned = 0;
    for list in &mut prog.dispatch.event_gates {
        let before = list.len();
        list.retain(|&g| armable[g as usize]);
        pruned += before - list.len();
    }
    let before = prog.dispatch.timer_gates.len();
    prog.dispatch.timer_gates.retain(|&g| armable[g as usize]);
    pruned += before - prog.dispatch.timer_gates.len();
    pruned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile_source;

    fn sl(s: u32) -> Box<Rv> {
        Box::new(Rv::Slot(s))
    }

    fn c(n: i64) -> Box<Rv> {
        Box::new(Rv::Const(n))
    }

    #[test]
    fn const_folding_uses_wrapping_arithmetic() {
        let rv = Rv::Bin(BinOp::Add, c(i64::MAX), c(1));
        assert_eq!(simplify(&rv), Rv::Const(i64::MIN));
        let rv = Rv::Bin(BinOp::Mul, c(i64::MAX), c(2));
        assert_eq!(simplify(&rv), Rv::Const(i64::MAX.wrapping_mul(2)));
    }

    #[test]
    fn division_by_constant_zero_is_not_folded() {
        // must stay a runtime error, exactly like the interpreter
        let rv = Rv::Bin(BinOp::Div, c(1), c(0));
        assert_eq!(simplify(&rv), rv);
        let rv = Rv::Bin(BinOp::Mod, c(1), c(0));
        assert_eq!(simplify(&rv), rv);
    }

    #[test]
    fn comparisons_and_logic_fold_to_zero_one() {
        assert_eq!(simplify(&Rv::Bin(BinOp::Lt, c(2), c(3))), Rv::Const(1));
        assert_eq!(simplify(&Rv::Bin(BinOp::Eq, c(2), c(3))), Rv::Const(0));
        assert_eq!(simplify(&Rv::Bin(BinOp::And, c(7), c(5))), Rv::Const(1));
        assert_eq!(simplify(&Rv::Bin(BinOp::Or, c(0), c(0))), Rv::Const(0));
    }

    #[test]
    fn mul_one_and_add_zero_fold_only_for_int_operands() {
        // `!x` provably yields an int: identities apply
        let not_x = Rv::Un(UnOp::Not, sl(0));
        let rv = Rv::Bin(BinOp::Mul, Box::new(not_x.clone()), c(1));
        assert_eq!(simplify(&rv), not_x);
        let rv = Rv::Bin(BinOp::Add, Box::new(not_x.clone()), c(0));
        assert_eq!(simplify(&rv), not_x);
        // a bare slot may hold a pointer or string: left untouched so the
        // runtime's coercion errors survive
        let rv = Rv::Bin(BinOp::Mul, sl(0), c(1));
        assert_eq!(simplify(&rv), rv);
        let rv = Rv::Bin(BinOp::Add, c(0), sl(0));
        assert_eq!(simplify(&rv), rv);
    }

    #[test]
    fn pointer_plus_zero_folds() {
        let rv = Rv::Bin(BinOp::Add, Box::new(Rv::AddrOf(3)), c(0));
        assert_eq!(simplify(&rv), Rv::AddrOf(3));
        let rv = Rv::Bin(BinOp::Sub, Box::new(Rv::AddrOf(3)), c(0));
        assert_eq!(simplify(&rv), Rv::AddrOf(3));
    }

    #[test]
    fn mul_zero_requires_a_pure_operand() {
        // sizeof is pure: the whole product folds away
        let rv = Rv::Bin(BinOp::Mul, Box::new(Rv::SizeOf(4)), c(0));
        assert_eq!(simplify(&rv), Rv::Const(0));
        // a slot read is not deletable (it may be a pointer → runtime error)
        let rv = Rv::Bin(BinOp::Mul, sl(0), c(0));
        assert_eq!(simplify(&rv), rv);
        // a call is definitely not deletable
        let rv = Rv::Bin(BinOp::Mul, Box::new(Rv::CCall("f".into(), vec![])), c(0));
        assert_eq!(simplify(&rv), rv);
    }

    #[test]
    fn double_not_folds_only_on_boolean_subtrees() {
        let cmp = Rv::Bin(BinOp::Lt, sl(0), sl(1));
        let rv = Rv::Un(UnOp::Not, Box::new(Rv::Un(UnOp::Not, Box::new(cmp.clone()))));
        assert_eq!(simplify(&rv), cmp);
        // `!!slot` coerces to 0/1 — must not fold
        let rv = Rv::Un(UnOp::Not, Box::new(Rv::Un(UnOp::Not, sl(0))));
        assert_eq!(simplify(&rv), rv);
    }

    #[test]
    fn constant_lhs_short_circuits_fold() {
        // `0 && f()` never evaluates the call at runtime; folding matches
        let call = Rv::CCall("f".into(), vec![]);
        let rv = Rv::Bin(BinOp::And, c(0), Box::new(call.clone()));
        assert_eq!(simplify(&rv), Rv::Const(0));
        let rv = Rv::Bin(BinOp::Or, c(5), Box::new(call.clone()));
        assert_eq!(simplify(&rv), Rv::Const(1));
        // truthy lhs of && reduces to the 0/1 coercion of the rhs
        let cmp = Rv::Bin(BinOp::Eq, sl(0), c(4));
        let rv = Rv::Bin(BinOp::And, c(1), Box::new(cmp.clone()));
        assert_eq!(simplify(&rv), cmp);
        let rv = Rv::Bin(BinOp::Or, c(0), Box::new(call.clone()));
        assert_eq!(simplify(&rv), Rv::Un(UnOp::Not, Box::new(Rv::Un(UnOp::Not, Box::new(call)))));
    }

    #[test]
    fn casts_erase_and_constants_fold_through() {
        let rv = Rv::Cast(Box::new(Rv::Bin(BinOp::Add, c(2), Box::new(Rv::Cast(c(3))))));
        assert_eq!(simplify(&rv), Rv::Const(5));
    }

    #[test]
    fn nested_expressions_fold_bottom_up() {
        // (2*3 + 10%7) < 100  →  1
        let rv = Rv::Bin(
            BinOp::Lt,
            Box::new(Rv::Bin(
                BinOp::Add,
                Box::new(Rv::Bin(BinOp::Mul, c(2), c(3))),
                Box::new(Rv::Bin(BinOp::Mod, c(10), c(7))),
            )),
            c(100),
        );
        assert_eq!(simplify(&rv), Rv::Const(1));
    }

    #[test]
    fn branch_on_const_and_dead_block_elimination() {
        let mut p = compile_source(
            "input void A;\nint v;\nif 0 then\n v = 1;\nelse\n v = 2;\nend\nawait A;",
        )
        .unwrap();
        let before = p.blocks.len();
        let stats = optimize(&mut p);
        assert!(stats.branches_folded >= 1, "{stats:?}");
        assert!(stats.blocks_removed >= 1, "{stats:?}");
        assert!(p.blocks.len() < before);
        // the program still has a valid boot chain ending in the await arm
        assert!(p.blocks.iter().all(|b| match b.term {
            Term::Goto(t) => (t as usize) < p.blocks.len(),
            Term::If { then_b, else_b, .. } =>
                (then_b as usize) < p.blocks.len() && (else_b as usize) < p.blocks.len(),
            _ => true,
        }));
        assert!(p.gates.iter().all(|g| (g.cont as usize) < p.blocks.len()));
    }

    #[test]
    fn unarmable_gates_leave_the_dispatch_tables() {
        let mut p = compile_source(
            "input void A;\nint v;\nif 0 then\n await A;\nelse\n v = 2;\nend\nawait A;",
        )
        .unwrap();
        let a = p.events.lookup("A").unwrap();
        assert_eq!(p.dispatch.event_gates[a.index()].len(), 2);
        let stats = optimize(&mut p);
        assert!(stats.gates_pruned >= 1, "{stats:?}");
        // only the live `await A` remains dispatchable
        assert_eq!(p.dispatch.event_gates[a.index()].len(), 1);
        // the gate table itself is untouched (regions & C backend)
        assert_eq!(p.gates.len(), 2);
    }

    #[test]
    fn optimize_is_idempotent_and_ids_stay_stable() {
        let mut p = compile_source(
            "input int E;\nint v;\nloop do\n v = await E;\n v = (v * 1) + (2 * 3);\nend",
        )
        .unwrap();
        let n_exprs = p.exprs.len();
        let s1 = optimize(&mut p);
        assert_eq!(p.flat.len(), n_exprs, "ExprIds must stay 1:1 after the rewrite");
        assert!(s1.flat_ops_after < s1.flat_ops_before, "{s1:?}");
        let s2 = optimize(&mut p);
        assert_eq!(s2.blocks_removed, 0);
        assert_eq!(s2.flat_ops_after, s1.flat_ops_after);
    }
}

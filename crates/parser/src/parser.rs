//! Recursive-descent parser for the Appendix-A grammar.
//!
//! Deviations from the grammar as printed, needed to parse the paper's own
//! listings verbatim:
//!
//! * Semicolons are *separators* and optional (several listings omit them
//!   after `end` and even after calls, e.g. ring demo line 35).
//! * `emit TIME` and `await (Exp)` accept any expression, matching the
//!   ship-game's `await(dt*1000)`.
//! * `%` (modulo) is accepted although missing from the printed BINOP list
//!   (the listings use it, e.g. `(_TOS_NODE_ID+1)%3`).

use crate::error::{ParseError, Result};
use crate::lexer::{Lexer, Tok, Token};
use ceu_ast::{
    AssignRhs, BinOp, Block, Expr, ExprKind, ParKind, Program, Span, Stmt, StmtKind, Type, UnOp,
    VarDef,
};
use std::collections::VecDeque;

/// Words that can never be identifiers (note: `C` is context-dependent and
/// handled separately, since the paper itself declares an *event* named `C`).
const KEYWORDS: &[&str] = &[
    "nothing",
    "input",
    "internal",
    "output",
    "pure",
    "deterministic",
    "await",
    "emit",
    "if",
    "then",
    "else",
    "loop",
    "break",
    "par",
    "call",
    "return",
    "do",
    "async",
    "end",
    "with",
    "forever",
    "null",
    "sizeof",
    "suspend",
];

/// Which declaration keyword introduced an event.
#[derive(Clone, Copy)]
enum EventDir {
    Input,
    Internal,
    Output,
}

pub struct Parser<'a> {
    lexer: Lexer<'a>,
    buf: VecDeque<Token>,
}

impl<'a> Parser<'a> {
    pub fn new(src: &'a str) -> Self {
        Parser { lexer: Lexer::new(src), buf: VecDeque::new() }
    }

    /// Parses a whole program. Statements are *not* numbered; callers use
    /// [`ceu_ast::number`] (the `ceu` facade does this for you).
    pub fn parse_program(&mut self) -> Result<Program> {
        let block = self.parse_block()?;
        let t = self.peek(0)?.clone();
        if t.tok != Tok::Eof {
            return Err(ParseError::new(t.span, format!("expected end of input, found {}", t.tok)));
        }
        if block.stmts.is_empty() {
            return Err(ParseError::new(Span::new(1, 1), "empty program"));
        }
        Ok(Program { block })
    }

    // ---- token plumbing ----------------------------------------------------

    fn peek(&mut self, k: usize) -> Result<&Token> {
        while self.buf.len() <= k {
            let t = self.lexer.next_token()?;
            self.buf.push_back(t);
        }
        Ok(&self.buf[k])
    }

    fn next(&mut self) -> Result<Token> {
        self.peek(0)?;
        Ok(self.buf.pop_front().unwrap())
    }

    fn at_kw(&mut self, kw: &str) -> Result<bool> {
        Ok(matches!(&self.peek(0)?.tok, Tok::Ident(s) if s == kw))
    }

    fn eat_kw(&mut self, kw: &str) -> Result<bool> {
        if self.at_kw(kw)? {
            self.next()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span> {
        let t = self.next()?;
        match &t.tok {
            Tok::Ident(s) if s == kw => Ok(t.span),
            other => Err(ParseError::new(t.span, format!("expected `{kw}`, found {other}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<Span> {
        let t = self.next()?;
        if t.tok == tok {
            Ok(t.span)
        } else {
            Err(ParseError::new(t.span, format!("expected {tok}, found {}", t.tok)))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span)> {
        let t = self.next()?;
        match t.tok {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => Ok((s, t.span)),
            other => Err(ParseError::new(t.span, format!("expected {what}, found {other}"))),
        }
    }

    // ---- blocks & statements ----------------------------------------------

    /// Parses statements until `end` / `with` / `else` / EOF (not consumed).
    fn parse_block(&mut self) -> Result<Block> {
        let mut stmts = Vec::new();
        loop {
            // eat separator semicolons
            while self.peek(0)?.tok == Tok::Semi {
                self.next()?;
            }
            match &self.peek(0)?.tok {
                Tok::Eof => break,
                Tok::Ident(s) if matches!(s.as_str(), "end" | "with" | "else") => break,
                _ => {}
            }
            stmts.push(self.parse_stmt()?);
        }
        Ok(Block::new(stmts))
    }

    fn parse_stmt(&mut self) -> Result<Stmt> {
        let t = self.peek(0)?.clone();
        let span = t.span;
        match &t.tok {
            Tok::Ident(kw) => match kw.as_str() {
                "nothing" => {
                    self.next()?;
                    Ok(Stmt::new(StmtKind::Nothing, span))
                }
                "input" => self.parse_event_decl(EventDir::Input),
                "internal" => self.parse_event_decl(EventDir::Internal),
                "output" => self.parse_event_decl(EventDir::Output),
                "pure" => {
                    self.next()?;
                    let names = self.parse_csym_list()?;
                    Ok(Stmt::new(StmtKind::Pure { names }, span))
                }
                "deterministic" => {
                    self.next()?;
                    let names = self.parse_csym_list()?;
                    Ok(Stmt::new(StmtKind::Deterministic { names }, span))
                }
                "await" => {
                    self.next()?;
                    let kind = self.parse_await_tail()?;
                    Ok(Stmt::new(kind, span))
                }
                "emit" => self.parse_emit(),
                "if" => self.parse_if(),
                "loop" => {
                    self.next()?;
                    self.expect_kw("do")?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    Ok(Stmt::new(StmtKind::Loop { body }, span))
                }
                "break" => {
                    self.next()?;
                    Ok(Stmt::new(StmtKind::Break, span))
                }
                "par" => {
                    let (kind, arms) = self.parse_par()?;
                    Ok(Stmt::new(StmtKind::Par { kind, arms }, span))
                }
                "call" => {
                    self.next()?;
                    let expr = self.parse_expr()?;
                    Ok(Stmt::new(StmtKind::Call { expr }, span))
                }
                "return" => {
                    self.next()?;
                    let value = if self.stmt_boundary()? { None } else { Some(self.parse_expr()?) };
                    Ok(Stmt::new(StmtKind::Return { value }, span))
                }
                "do" => {
                    self.next()?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    Ok(Stmt::new(StmtKind::DoBlock { body }, span))
                }
                "suspend" => {
                    self.next()?;
                    let (event, _) = self.expect_ident("guard event")?;
                    self.expect_kw("do")?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    Ok(Stmt::new(StmtKind::Suspend { event, body }, span))
                }
                "async" => {
                    self.next()?;
                    self.expect_kw("do")?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    Ok(Stmt::new(StmtKind::Async { body }, span))
                }
                "C" if matches!(&self.peek(1)?.tok, Tok::Ident(d) if d == "do") => {
                    self.next()?; // C
                    self.next()?; // do
                    let code = self.lexer.capture_c_block()?;
                    Ok(Stmt::new(StmtKind::CBlock { code }, span))
                }
                _ => self.parse_decl_or_expr_stmt(),
            },
            _ => self.parse_decl_or_expr_stmt(),
        }
    }

    /// `true` when the next token cannot start an expression (used to decide
    /// whether `return` carries a value, given optional semicolons).
    fn stmt_boundary(&mut self) -> Result<bool> {
        Ok(matches!(&self.peek(0)?.tok, Tok::Semi | Tok::Eof | Tok::Ident(_))
            && match &self.peek(0)?.tok {
                Tok::Ident(s) => KEYWORDS.contains(&s.as_str()) || s == "end" || s == "with",
                _ => true,
            })
    }

    fn parse_event_decl(&mut self, dir: EventDir) -> Result<Stmt> {
        let span = self.next()?.span; // input | internal | output
        let ty = self.parse_type()?;
        let mut names = Vec::new();
        loop {
            let t = self.next()?;
            match t.tok {
                Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => names.push(s),
                // `C` is a keyword-ish identifier but a legal event name
                // (`input int A, B, C;` in the paper).
                Tok::Ident(s) if s == "C" => names.push(s),
                other => {
                    return Err(ParseError::new(
                        t.span,
                        format!("expected event name, found {other}"),
                    ))
                }
            }
            if self.peek(0)?.tok == Tok::Comma {
                self.next()?;
            } else {
                break;
            }
        }
        let kind = match dir {
            EventDir::Input => StmtKind::InputDecl { ty, names },
            EventDir::Internal => StmtKind::InternalDecl { ty, names },
            EventDir::Output => StmtKind::OutputDecl { ty, names },
        };
        Ok(Stmt::new(kind, span))
    }

    fn parse_csym_list(&mut self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        loop {
            let t = self.next()?;
            match t.tok {
                Tok::CSym(mut s) => {
                    // method-style names: `_lcd.setCursor` → "lcd.setCursor"
                    while self.peek(0)?.tok == Tok::Dot {
                        self.next()?;
                        let f = self.next()?;
                        match f.tok {
                            Tok::Ident(part) | Tok::CSym(part) => {
                                s.push('.');
                                s.push_str(&part);
                            }
                            other => {
                                return Err(ParseError::new(
                                    f.span,
                                    format!("expected method name after `.`, found {other}"),
                                ))
                            }
                        }
                    }
                    names.push(s);
                }
                other => {
                    return Err(ParseError::new(
                        t.span,
                        format!("expected C symbol (`_name`), found {other}"),
                    ))
                }
            }
            if self.peek(0)?.tok == Tok::Comma {
                self.next()?;
            } else {
                break;
            }
        }
        Ok(names)
    }

    /// Everything after the `await` keyword; shared by statement- and
    /// value-position awaits.
    fn parse_await_tail(&mut self) -> Result<StmtKind> {
        let t = self.peek(0)?.clone();
        match &t.tok {
            Tok::Time(time) => {
                let time = *time;
                self.next()?;
                Ok(StmtKind::AwaitTime { time })
            }
            Tok::LParen => {
                self.next()?;
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                Ok(StmtKind::AwaitExpr { us: e })
            }
            Tok::Ident(name) if name == "forever" => {
                self.next()?;
                Ok(StmtKind::AwaitForever)
            }
            Tok::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                let name = name.clone();
                self.next()?;
                Ok(StmtKind::AwaitEvt { name })
            }
            other => Err(ParseError::new(
                t.span,
                format!("expected event, time, or `forever` after `await`, found {other}"),
            )),
        }
    }

    fn parse_emit(&mut self) -> Result<Stmt> {
        let span = self.next()?.span; // emit
        let t = self.peek(0)?.clone();
        match &t.tok {
            Tok::Time(time) => {
                let time = *time;
                self.next()?;
                Ok(Stmt::new(StmtKind::EmitTime { time }, span))
            }
            Tok::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                let name = name.clone();
                self.next()?;
                let value = if self.peek(0)?.tok == Tok::Assign {
                    self.next()?;
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                Ok(Stmt::new(StmtKind::EmitEvt { name, value }, span))
            }
            other => Err(ParseError::new(
                t.span,
                format!("expected event or time after `emit`, found {other}"),
            )),
        }
    }

    fn parse_if(&mut self) -> Result<Stmt> {
        let span = self.next()?.span; // if
        let cond = self.parse_expr()?;
        self.expect_kw("then")?;
        let then_blk = self.parse_block()?;
        let else_blk = if self.eat_kw("else")? { Some(self.parse_block()?) } else { None };
        self.expect_kw("end")?;
        Ok(Stmt::new(StmtKind::If { cond, then_blk, else_blk }, span))
    }

    fn parse_par(&mut self) -> Result<(ParKind, Vec<Block>)> {
        self.expect_kw("par")?;
        let kind = if self.peek(0)?.tok == Tok::Slash {
            self.next()?;
            let (word, wspan) = match self.next()? {
                Token { tok: Tok::Ident(s), span } => (s, span),
                t => return Err(ParseError::new(t.span, "expected `or` or `and` after `par/`")),
            };
            match word.as_str() {
                "or" => ParKind::Or,
                "and" => ParKind::And,
                other => {
                    return Err(ParseError::new(
                        wspan,
                        format!("expected `or` or `and` after `par/`, found `{other}`"),
                    ))
                }
            }
        } else {
            ParKind::Par
        };
        self.expect_kw("do")?;
        let mut arms = vec![self.parse_block()?];
        while self.eat_kw("with")? {
            arms.push(self.parse_block()?);
        }
        let end = self.expect_kw("end")?;
        if arms.len() < 2 {
            return Err(ParseError::new(
                end,
                "parallel statement needs at least two arms (`with`)",
            ));
        }
        Ok((kind, arms))
    }

    /// Declaration (`int v = 0;`, `_message_t* msg;`, `int[10] keys;`) or an
    /// expression statement (call / assignment).
    fn parse_decl_or_expr_stmt(&mut self) -> Result<Stmt> {
        if self.looks_like_decl()? {
            return self.parse_var_decl();
        }
        let span = self.peek(0)?.span;
        let lhs = self.parse_expr()?;
        if self.peek(0)?.tok == Tok::Assign {
            self.next()?;
            let rhs = self.parse_set_exp()?;
            return Ok(Stmt::new(StmtKind::Assign { lhs, rhs }, span));
        }
        match lhs.kind {
            ExprKind::Call(..) => Ok(Stmt::new(StmtKind::Call { expr: lhs }, span)),
            _ => Err(ParseError::new(span, "expression statement must be a call or assignment")),
        }
    }

    /// Lookahead test for variable declarations.
    fn looks_like_decl(&mut self) -> Result<bool> {
        // first token must be a plain identifier or C symbol (a type name)
        match &self.peek(0)?.tok {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => {}
            Tok::CSym(_) => {}
            _ => return Ok(false),
        }
        // skip pointer stars
        let mut k = 1;
        while self.peek(k)?.tok == Tok::Star {
            k += 1;
        }
        match &self.peek(k)?.tok {
            // `int v`, `_message_t* msg`
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => Ok(true),
            // `int[10] keys` — distinguish from `keys[idx] = …` by requiring
            // NUM ] IDENT right after the bracket.
            Tok::LBrack if k == 1 => Ok(matches!(self.peek(2)?.tok, Tok::Num(_))
                && self.peek(3)?.tok == Tok::RBrack
                && matches!(&self.peek(4)?.tok, Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()))),
            _ => Ok(false),
        }
    }

    fn parse_type(&mut self) -> Result<Type> {
        let t = self.next()?;
        let name = match t.tok {
            Tok::Ident(s) if !KEYWORDS.contains(&s.as_str()) => s,
            Tok::CSym(s) => s,
            other => {
                return Err(ParseError::new(t.span, format!("expected type name, found {other}")))
            }
        };
        let mut ptr = 0u8;
        while self.peek(0)?.tok == Tok::Star {
            self.next()?;
            ptr += 1;
        }
        Ok(Type::new(name, ptr))
    }

    fn parse_var_decl(&mut self) -> Result<Stmt> {
        let span = self.peek(0)?.span;
        let mut ty = self.parse_type()?;
        // optional array length, shared by all declarators on this line
        let array = if self.peek(0)?.tok == Tok::LBrack {
            self.next()?;
            let t = self.next()?;
            let n = match t.tok {
                Tok::Num(n) if n > 0 => n as u32,
                _ => return Err(ParseError::new(t.span, "expected positive array length")),
            };
            self.expect(Tok::RBrack)?;
            Some(n)
        } else {
            None
        };
        // `_message_t* msg`: pointer stars were consumed by parse_type
        let _ = &mut ty;
        let mut vars = Vec::new();
        loop {
            let (name, _) = self.expect_ident("variable name")?;
            let init = if self.peek(0)?.tok == Tok::Assign {
                self.next()?;
                Some(self.parse_set_exp()?)
            } else {
                None
            };
            vars.push(VarDef { name, array, init });
            if self.peek(0)?.tok == Tok::Comma {
                self.next()?;
            } else {
                break;
            }
        }
        Ok(Stmt::new(StmtKind::VarDecl { ty, vars }, span))
    }

    /// `SetExp ::= Exp | await… | par…/do/async block`
    fn parse_set_exp(&mut self) -> Result<AssignRhs> {
        let t = self.peek(0)?.clone();
        if let Tok::Ident(kw) = &t.tok {
            match kw.as_str() {
                "await" => {
                    self.next()?;
                    return Ok(match self.parse_await_tail()? {
                        StmtKind::AwaitEvt { name } => AssignRhs::AwaitEvt(name),
                        StmtKind::AwaitTime { time } => AssignRhs::AwaitTime(time),
                        StmtKind::AwaitExpr { us } => AssignRhs::AwaitExpr(us),
                        StmtKind::AwaitForever => {
                            return Err(ParseError::new(
                                t.span,
                                "`await forever` yields no value and cannot be assigned",
                            ))
                        }
                        _ => unreachable!(),
                    });
                }
                "par" => {
                    let (kind, arms) = self.parse_par()?;
                    return Ok(AssignRhs::Par(kind, arms));
                }
                "do" => {
                    self.next()?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    return Ok(AssignRhs::Do(body));
                }
                "async" => {
                    self.next()?;
                    self.expect_kw("do")?;
                    let body = self.parse_block()?;
                    self.expect_kw("end")?;
                    return Ok(AssignRhs::Async(body));
                }
                _ => {}
            }
        }
        Ok(AssignRhs::Expr(self.parse_expr()?))
    }

    // ---- expressions --------------------------------------------------------

    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_binop(1)
    }

    fn parse_binop(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.peek_binop()? {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.next()?;
            let rhs = self.parse_binop(prec + 1)?;
            let span = lhs.span;
            lhs = Expr::new(ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)), span);
        }
        Ok(lhs)
    }

    fn peek_binop(&mut self) -> Result<Option<BinOp>> {
        Ok(Some(match self.peek(0)?.tok {
            Tok::OrOr => BinOp::Or,
            Tok::AndAnd => BinOp::And,
            Tok::Pipe => BinOp::BitOr,
            Tok::Caret => BinOp::BitXor,
            Tok::Amp => BinOp::BitAnd,
            Tok::Eq => BinOp::Eq,
            Tok::Ne => BinOp::Ne,
            Tok::Le => BinOp::Le,
            Tok::Ge => BinOp::Ge,
            Tok::Lt => BinOp::Lt,
            Tok::Gt => BinOp::Gt,
            Tok::Shl => BinOp::Shl,
            Tok::Shr => BinOp::Shr,
            Tok::Plus => BinOp::Add,
            Tok::Minus => BinOp::Sub,
            Tok::Star => BinOp::Mul,
            Tok::Slash => BinOp::Div,
            Tok::Percent => BinOp::Mod,
            _ => return Ok(None),
        }))
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        let t = self.peek(0)?.clone();
        let op = match t.tok {
            Tok::Bang => Some(UnOp::Not),
            Tok::Amp => Some(UnOp::Addr),
            Tok::Minus => Some(UnOp::Neg),
            Tok::Plus => Some(UnOp::Plus),
            Tok::Tilde => Some(UnOp::BitNot),
            Tok::Star => Some(UnOp::Deref),
            _ => None,
        };
        if let Some(op) = op {
            self.next()?;
            let inner = self.parse_unary()?;
            return Ok(Expr::new(ExprKind::Unop(op, Box::new(inner)), t.span));
        }
        self.parse_postfix()
    }

    fn parse_postfix(&mut self) -> Result<Expr> {
        let mut e = self.parse_primary()?;
        loop {
            match self.peek(0)?.tok {
                Tok::LBrack => {
                    self.next()?;
                    let idx = self.parse_expr()?;
                    self.expect(Tok::RBrack)?;
                    let span = e.span;
                    e = Expr::new(ExprKind::Index(Box::new(e), Box::new(idx)), span);
                }
                Tok::LParen => {
                    self.next()?;
                    let mut args = Vec::new();
                    if self.peek(0)?.tok != Tok::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek(0)?.tok == Tok::Comma {
                                self.next()?;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    let span = e.span;
                    e = Expr::new(ExprKind::Call(Box::new(e), args), span);
                }
                Tok::Dot | Tok::Arrow => {
                    let arrow = self.next()?.tok == Tok::Arrow;
                    let t = self.next()?;
                    let name = match t.tok {
                        Tok::Ident(s) => s,
                        Tok::CSym(s) => s,
                        other => {
                            return Err(ParseError::new(
                                t.span,
                                format!("expected field name, found {other}"),
                            ))
                        }
                    };
                    let span = e.span;
                    e = Expr::new(ExprKind::Field(Box::new(e), name, arrow), span);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        let t = self.next()?;
        let span = t.span;
        Ok(match t.tok {
            Tok::Num(n) => Expr::num(n, span),
            Tok::Str(s) => Expr::new(ExprKind::Str(s), span),
            Tok::Chr(c) => Expr::new(ExprKind::Chr(c), span),
            Tok::CSym(s) => Expr::csym(s, span),
            Tok::LParen => {
                let e = self.parse_expr()?;
                self.expect(Tok::RParen)?;
                e
            }
            // `<type> e` — cast
            Tok::Lt => {
                let ty = self.parse_type()?;
                self.expect(Tok::Gt)?;
                let e = self.parse_unary()?;
                Expr::new(ExprKind::Cast(ty, Box::new(e)), span)
            }
            Tok::Ident(s) => match s.as_str() {
                "null" => Expr::new(ExprKind::Null, span),
                "sizeof" => {
                    self.expect(Tok::Lt)?;
                    let ty = self.parse_type()?;
                    self.expect(Tok::Gt)?;
                    Expr::new(ExprKind::SizeOf(ty), span)
                }
                kw if KEYWORDS.contains(&kw) => {
                    return Err(ParseError::new(
                        span,
                        format!("keyword `{kw}` cannot start an expression"),
                    ))
                }
                _ => Expr::var(s, span),
            },
            other => {
                return Err(ParseError::new(span, format!("expected expression, found {other}")))
            }
        })
    }
}

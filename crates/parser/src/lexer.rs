//! Hand-written lexer for Céu.
//!
//! Notable lexical features:
//!
//! * **Time literals** — a number immediately followed by a time unit forms
//!   a compound literal (`1h35min`, `500ms`), canonicalised to µs.
//! * **C symbols** — identifiers starting with `_` reference the C world;
//!   the leading underscore is stripped (the paper repasses the rest to the
//!   C compiler as-is).
//! * **Raw C capture** — the parser switches the lexer into raw mode for
//!   `C do … end` blocks; the capture balances nested `do`/`end` words and
//!   skips strings, chars and comments.

use crate::error::{ParseError, Result};
use ceu_ast::{Span, TimeSpec};
use std::fmt;

/// Lexical token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier (any of the grammar's ID classes except C symbols).
    Ident(String),
    /// C symbol: `_name`, stored without the underscore.
    CSym(String),
    /// Integer literal.
    Num(i64),
    /// Wall-clock time literal, canonicalised to µs.
    Time(TimeSpec),
    /// String literal (unescaped content).
    Str(String),
    /// Character literal.
    Chr(char),
    // punctuation & operators
    Semi,
    Comma,
    LParen,
    RParen,
    LBrack,
    RBrack,
    Assign,
    OrOr,
    AndAnd,
    Pipe,
    Caret,
    Amp,
    Eq,
    Ne,
    Le,
    Ge,
    Lt,
    Gt,
    Shl,
    Shr,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Bang,
    Tilde,
    Dot,
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::CSym(s) => write!(f, "`_{s}`"),
            Tok::Num(n) => write!(f, "number {n}"),
            Tok::Time(t) => write!(f, "time {t}"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Chr(c) => write!(f, "char '{c}'"),
            Tok::Eof => write!(f, "end of input"),
            other => write!(f, "`{}`", symbol_of(other)),
        }
    }
}

fn symbol_of(t: &Tok) -> &'static str {
    match t {
        Tok::Semi => ";",
        Tok::Comma => ",",
        Tok::LParen => "(",
        Tok::RParen => ")",
        Tok::LBrack => "[",
        Tok::RBrack => "]",
        Tok::Assign => "=",
        Tok::OrOr => "||",
        Tok::AndAnd => "&&",
        Tok::Pipe => "|",
        Tok::Caret => "^",
        Tok::Amp => "&",
        Tok::Eq => "==",
        Tok::Ne => "!=",
        Tok::Le => "<=",
        Tok::Ge => ">=",
        Tok::Lt => "<",
        Tok::Gt => ">",
        Tok::Shl => "<<",
        Tok::Shr => ">>",
        Tok::Plus => "+",
        Tok::Minus => "-",
        Tok::Star => "*",
        Tok::Slash => "/",
        Tok::Percent => "%",
        Tok::Bang => "!",
        Tok::Tilde => "~",
        Tok::Dot => ".",
        Tok::Arrow => "->",
        _ => "?",
    }
}

/// A token plus its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

/// The lexer: a cursor over the source bytes.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Self {
        Lexer { src: src.as_bytes(), pos: 0, line: 1, col: 1 }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek_byte() {
                Some(b) if b.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek_byte() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(start, "unterminated block comment"))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes the next token.
    pub fn next_token(&mut self) -> Result<Token> {
        self.skip_trivia()?;
        let span = self.span();
        let Some(b) = self.peek_byte() else {
            return Ok(Token { tok: Tok::Eof, span });
        };
        let tok = match b {
            b'0'..=b'9' => return self.lex_number(span),
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => return self.lex_ident(span),
            b'"' => return self.lex_string(span),
            b'\'' => return self.lex_char(span),
            b';' => self.one(Tok::Semi),
            b',' => self.one(Tok::Comma),
            b'(' => self.one(Tok::LParen),
            b')' => self.one(Tok::RParen),
            b'[' => self.one(Tok::LBrack),
            b']' => self.one(Tok::RBrack),
            b'=' => self.one_or_two(b'=', Tok::Eq, Tok::Assign),
            b'|' => self.one_or_two(b'|', Tok::OrOr, Tok::Pipe),
            b'&' => self.one_or_two(b'&', Tok::AndAnd, Tok::Amp),
            b'^' => self.one(Tok::Caret),
            b'!' => self.one_or_two(b'=', Tok::Ne, Tok::Bang),
            b'<' => {
                self.bump();
                match self.peek_byte() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Le
                    }
                    Some(b'<') => {
                        self.bump();
                        Tok::Shl
                    }
                    _ => Tok::Lt,
                }
            }
            b'>' => {
                self.bump();
                match self.peek_byte() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Ge
                    }
                    Some(b'>') => {
                        self.bump();
                        Tok::Shr
                    }
                    _ => Tok::Gt,
                }
            }
            b'+' => self.one(Tok::Plus),
            b'-' => self.one_or_two(b'>', Tok::Arrow, Tok::Minus),
            b'*' => self.one(Tok::Star),
            b'/' => self.one(Tok::Slash),
            b'%' => self.one(Tok::Percent),
            b'~' => self.one(Tok::Tilde),
            b'.' => self.one(Tok::Dot),
            other => {
                return Err(ParseError::new(
                    span,
                    format!("unexpected character `{}`", other as char),
                ))
            }
        };
        Ok(Token { tok, span })
    }

    fn one(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn one_or_two(&mut self, second: u8, two: Tok, one: Tok) -> Tok {
        self.bump();
        if self.peek_byte() == Some(second) {
            self.bump();
            two
        } else {
            one
        }
    }

    fn lex_number(&mut self, span: Span) -> Result<Token> {
        let start = self.pos;
        if self.peek_byte() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_hexdigit()) {
                self.bump();
            }
            if self.pos == hex_start {
                return Err(ParseError::new(span, "expected hex digits after `0x`"));
            }
            let text = std::str::from_utf8(&self.src[hex_start..self.pos]).unwrap();
            let n = i64::from_str_radix(text, 16)
                .map_err(|_| ParseError::new(span, "hex literal out of range"))?;
            return Ok(Token { tok: Tok::Num(n), span });
        }
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        // A trailing letter turns the literal into a wall-clock time:
        // consume the full [0-9a-z]* tail and let TimeSpec validate it.
        if matches!(self.peek_byte(), Some(b) if b.is_ascii_alphabetic()) {
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_alphanumeric()) {
                self.bump();
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
            let time = TimeSpec::parse(text)
                .ok_or_else(|| ParseError::new(span, format!("malformed time literal `{text}`")))?;
            return Ok(Token { tok: Tok::Time(time), span });
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let n: i64 =
            text.parse().map_err(|_| ParseError::new(span, "integer literal out of range"))?;
        Ok(Token { tok: Tok::Num(n), span })
    }

    fn lex_ident(&mut self, span: Span) -> Result<Token> {
        let is_csym = self.peek_byte() == Some(b'_');
        if is_csym {
            self.bump();
        }
        let start = self.pos;
        while matches!(self.peek_byte(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
        if text.is_empty() {
            return Err(ParseError::new(span, "lone `_` is not a valid identifier"));
        }
        Ok(Token { tok: if is_csym { Tok::CSym(text) } else { Tok::Ident(text) }, span })
    }

    fn lex_string(&mut self, span: Span) -> Result<Token> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => out.push(self.unescape(span)?),
                Some(b) => out.push(b as char),
                None => return Err(ParseError::new(span, "unterminated string literal")),
            }
        }
        Ok(Token { tok: Tok::Str(out), span })
    }

    fn lex_char(&mut self, span: Span) -> Result<Token> {
        self.bump(); // opening quote
        let c = match self.bump() {
            Some(b'\\') => self.unescape(span)?,
            Some(b) => b as char,
            None => return Err(ParseError::new(span, "unterminated char literal")),
        };
        if self.bump() != Some(b'\'') {
            return Err(ParseError::new(span, "char literal must contain one character"));
        }
        Ok(Token { tok: Tok::Chr(c), span })
    }

    fn unescape(&mut self, span: Span) -> Result<char> {
        match self.bump() {
            Some(b'n') => Ok('\n'),
            Some(b't') => Ok('\t'),
            Some(b'r') => Ok('\r'),
            Some(b'0') => Ok('\0'),
            Some(b'\\') => Ok('\\'),
            Some(b'\'') => Ok('\''),
            Some(b'"') => Ok('"'),
            Some(other) => {
                Err(ParseError::new(span, format!("unknown escape `\\{}`", other as char)))
            }
            None => Err(ParseError::new(span, "unterminated escape")),
        }
    }

    /// Raw-captures the body of a `C do … end` block.
    ///
    /// Must be called with the cursor just past the `do` token. Consumes up
    /// to and including the first bare `end` word, skipping strings, chars,
    /// and comments inside the C code. (`do`-words are *not* counted, so C
    /// `do/while` loops are fine; the only restriction is that the C code
    /// must not contain a bare identifier `end` — same pragmatic rule as
    /// the reference implementation, which does not parse its C blocks.)
    pub fn capture_c_block(&mut self) -> Result<String> {
        let start_span = self.span();
        let start = self.pos;
        loop {
            self.skip_c_noise(start_span)?;
            let Some(b) = self.peek_byte() else {
                return Err(ParseError::new(start_span, "unterminated `C do … end` block"));
            };
            if b.is_ascii_alphabetic() || b == b'_' {
                let word_start = self.pos;
                while matches!(self.peek_byte(), Some(b) if b.is_ascii_alphanumeric() || b == b'_')
                {
                    self.bump();
                }
                if &self.src[word_start..self.pos] == b"end" {
                    let code = std::str::from_utf8(&self.src[start..word_start]).unwrap();
                    return Ok(code.to_string());
                }
            } else {
                self.bump();
            }
        }
    }

    /// Skips C strings/chars/comments so `do`/`end` inside them don't count.
    fn skip_c_noise(&mut self, err_span: Span) -> Result<()> {
        loop {
            match self.peek_byte() {
                Some(b'"') | Some(b'\'') => {
                    let quote = self.bump().unwrap();
                    loop {
                        match self.bump() {
                            Some(b'\\') => {
                                self.bump();
                            }
                            Some(b) if b == quote => break,
                            Some(_) => {}
                            None => {
                                return Err(ParseError::new(
                                    err_span,
                                    "unterminated literal inside C block",
                                ))
                            }
                        }
                    }
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match self.peek_byte() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            Some(_) => {
                                self.bump();
                            }
                            None => {
                                return Err(ParseError::new(
                                    err_span,
                                    "unterminated comment inside C block",
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lex_all(src: &str) -> Vec<Tok> {
        let mut lx = Lexer::new(src);
        let mut out = vec![];
        loop {
            let t = lx.next_token().unwrap();
            let done = t.tok == Tok::Eof;
            out.push(t.tok);
            if done {
                break;
            }
        }
        out
    }

    #[test]
    fn lexes_basic_tokens() {
        let toks = lex_all("input int A; v = v + 1;");
        assert_eq!(
            toks,
            vec![
                Tok::Ident("input".into()),
                Tok::Ident("int".into()),
                Tok::Ident("A".into()),
                Tok::Semi,
                Tok::Ident("v".into()),
                Tok::Assign,
                Tok::Ident("v".into()),
                Tok::Plus,
                Tok::Num(1),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_time_literals() {
        assert_eq!(lex_all("1s")[0], Tok::Time(TimeSpec::from_secs(1)));
        assert_eq!(lex_all("500ms")[0], Tok::Time(TimeSpec::from_ms(500)));
        assert_eq!(
            lex_all("1h35min")[0],
            Tok::Time(TimeSpec::from_us(3_600_000_000 + 35 * 60_000_000))
        );
    }

    #[test]
    fn rejects_bad_time_literal() {
        let mut lx = Lexer::new("12qq");
        assert!(lx.next_token().is_err());
    }

    #[test]
    fn lexes_c_symbols_without_underscore() {
        assert_eq!(lex_all("_printf")[0], Tok::CSym("printf".into()));
        assert_eq!(lex_all("_TOS_NODE_ID")[0], Tok::CSym("TOS_NODE_ID".into()));
    }

    #[test]
    fn lexes_operators_maximal_munch() {
        let toks = lex_all("a <= b << c < d -> e - f");
        assert!(toks.contains(&Tok::Le));
        assert!(toks.contains(&Tok::Shl));
        assert!(toks.contains(&Tok::Lt));
        assert!(toks.contains(&Tok::Arrow));
        assert!(toks.contains(&Tok::Minus));
    }

    #[test]
    fn skips_comments() {
        let toks = lex_all("a // comment\n /* block \n comment */ b");
        assert_eq!(toks, vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]);
    }

    #[test]
    fn lexes_string_and_char() {
        let toks = lex_all(r#""v = %d\n" '#'"#);
        assert_eq!(toks[0], Tok::Str("v = %d\n".into()));
        assert_eq!(toks[1], Tok::Chr('#'));
    }

    #[test]
    fn hex_numbers() {
        assert_eq!(lex_all("0x1F")[0], Tok::Num(31));
    }

    #[test]
    fn captures_c_block_with_nested_words() {
        let src = r#"
            #include <assert.h>
            int I = 0; // do end in comment: do end
            char* s = "do end";
            int inc (int i) { do { i++; } while(0); return I+i; }
        end"#;
        let mut lx = Lexer::new(src);
        let code = lx.capture_c_block().unwrap();
        assert!(code.contains("#include <assert.h>"));
        assert!(code.contains("while(0)"));
        // lexer cursor is now after `end`
        assert_eq!(lx.next_token().unwrap().tok, Tok::Eof);
    }

    #[test]
    fn spans_track_lines() {
        let mut lx = Lexer::new("a\n  b");
        let a = lx.next_token().unwrap();
        let b = lx.next_token().unwrap();
        assert_eq!(a.span, Span::new(1, 1));
        assert_eq!(b.span, Span::new(2, 3));
    }
}

//! Parse diagnostics.

use ceu_ast::Span;
use std::fmt;

/// A syntax error with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub span: Span,
    pub message: String,
}

impl ParseError {
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        ParseError { span, message: message.into() }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

pub type Result<T> = std::result::Result<T, ParseError>;

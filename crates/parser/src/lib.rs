//! Parser for the Céu language (lexer + recursive descent).
//!
//! Entry point: [`parse`], which returns a numbered
//! [`ceu_ast::Program`] ready for analysis and compilation.

pub mod error;
pub mod lexer;
pub mod parser;

pub use error::{ParseError, Result};

use ceu_ast::Program;

/// Parses Céu source into a numbered AST.
pub fn parse(src: &str) -> Result<Program> {
    let mut p = parser::Parser::new(src);
    let mut program = p.parse_program()?;
    ceu_ast::number(&mut program);
    Ok(program)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ceu_ast::{pretty, AssignRhs, ExprKind, ParKind, StmtKind, TimeSpec};

    /// §1 introductory example, verbatim from the paper.
    const INTRO: &str = r#"
        input int Restart;     // an external event
        internal void changed; // an internal event
        int v = 0;             // a variable
        par do
           loop do             // 1st trail
              await 1s;
              v = v + 1;
              emit changed;
           end
        with
           loop do             // 2nd trail
              v = await Restart;
              emit changed;
           end
        with
           loop do             // 3rd trail
              await changed;
              _printf("v = %d\n", v);
           end
        end
    "#;

    #[test]
    fn parses_intro_example() {
        let p = parse(INTRO).unwrap();
        assert_eq!(p.block.stmts.len(), 4);
        match &p.block.stmts[3].kind {
            StmtKind::Par { kind: ParKind::Par, arms } => assert_eq!(arms.len(), 3),
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn parses_dataflow_example() {
        let src = r#"
            int v1, v2, v3;
            internal void v1_evt, v2_evt, v3_evt;
            par do
               loop do
                  await v1_evt;
                  v2 = v1 + 1;
                  emit v2_evt;
               end
            with
               loop do
                  await v2_evt;
                  v3 = v2 * 2;
                  emit v3_evt;
               end
            with
               nothing;
            end
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[0].kind {
            StmtKind::VarDecl { vars, .. } => assert_eq!(vars.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_async_sum_example() {
        let src = r#"
            int ret;
            par/or do
               ret = async do
                  int sum = 0;
                  int i = 1;
                  loop do
                     sum = sum + i;
                     if i == 100 then
                        break;
                     else
                        i = i + 1;
                     end
                  end
                  return sum;
               end;
            with
               await 10ms;
               ret = 0;
            end
            return ret;
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[1].kind {
            StmtKind::Par { kind: ParKind::Or, arms } => match &arms[0].stmts[0].kind {
                StmtKind::Assign { rhs: AssignRhs::Async(body), .. } => {
                    assert_eq!(body.stmts.len(), 4);
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ring_demo_fragments() {
        // Note line `_Radio_send(1, &msg)` without a semicolon: semicolons
        // are separators in our implementation (paper listings omit them).
        let src = r#"
            input void Radio_receive;
            internal void retry;
            par do
               loop do
                  _message_t* msg = await Radio_receive;
                  int* cnt = _Radio_getPayload(msg);
                  _Leds_set(*cnt);
                  await 1s;
                  *cnt = *cnt + 1;
                  _Radio_send((_TOS_NODE_ID+1)%3, msg);
               end
            with
               loop do
                  par/or do
                     await 5s;
                     par do
                        loop do
                           emit retry;
                           await 10s;
                        end
                     with
                        _Leds_set(0);
                        loop do
                           _Leds_led0Toggle();
                           await 500ms;
                        end
                     end
                  with
                     await Radio_receive;
                  end
               end
            with
               if _TOS_NODE_ID == 0 then
                  loop do
                     _message_t msg;
                     int* cnt = _Radio_getPayload(&msg);
                     *cnt = 1;
                     _Radio_send(1, &msg)
                     await retry;
                  end
               else
                  await forever;
               end
            end
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parses_ship_game_fragments() {
        let src = r#"
            input int Key;
            int dt = 500, step = 0, points = 0, ship = 0, win = 0;
            par do
               loop do
                  await(dt*1000);
                  step = step + 1;
                  _redraw(step, ship, points);
                  if _MAP[ship][step] == '#' then
                     return 0;
                  end
                  if step == _FINISH then
                     return 1;
                  end
                  points = points + 1;
               end
            with
               loop do
                  int key = await Key;
                  if key == _KEY_UP then
                     ship = 0;
                  end
                  if key == _KEY_DOWN then
                     ship = 1;
                  end
               end
            end
        "#;
        let p = parse(src).unwrap();
        // ensure `await(dt*1000)` parsed as expression await
        let text = pretty(&p);
        assert!(text.contains("await ((dt * 1000))"), "{text}");
    }

    #[test]
    fn parses_mario_fragments() {
        let src = r#"
            input int Seed;
            input void Key, Step;
            internal void collision;
            int seed = await Seed;
            _srand(seed);
            int mario_x = 10;
            int mario_dx = 1, mario_dy = 0;
            int turtle_x = 600, turtle_dx = 0;
            par do
                loop do
                    await 50ms;
                    turtle_dx = -(_rand()%4-1);
                end
            with
                loop do
                    int v =
                        par do
                            await Key;
                            return 1;
                        with
                            await collision;
                            return 0;
                        end;
                    if v == 1 then
                        mario_dy = -2;
                    else
                        mario_dx = -4;
                    end
                end
            with
                loop do
                    await Step;
                    if !( mario_x+32<turtle_x || turtle_x+32<mario_x ) then
                        emit collision;
                    end
                end
            end
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parses_c_block_and_symbols() {
        let src = r#"
            C do
                #include <assert.h>
                int I = 0;
                int inc (int i) {
                    return I+i;
                }
            end
            return _assert(_inc(_I));
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[0].kind {
            StmtKind::CBlock { code } => assert!(code.contains("#include <assert.h>")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_pure_and_deterministic() {
        let src = r#"
            pure _abs;
            deterministic _led1On, _led2On;
            deterministic _led1Off, _led2Off;
            nothing;
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[1].kind {
            StmtKind::Deterministic { names } => {
                assert_eq!(names, &vec!["led1On".to_string(), "led2On".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_event_named_c() {
        let src = "input int A, B, C;\nawait C;";
        let p = parse(src).unwrap();
        match &p.block.stmts[0].kind {
            StmtKind::InputDecl { names, .. } => assert_eq!(names.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_emit_with_value_and_time() {
        let src = r#"
            input int Seed, Start;
            async do
                emit Seed = _time(0);
                emit Start = 10;
                emit 1h35min;
                emit 10ms;
            end
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[1].kind {
            StmtKind::Async { body } => {
                assert_eq!(body.stmts.len(), 4);
                match &body.stmts[2].kind {
                    StmtKind::EmitTime { time } => {
                        assert_eq!(*time, TimeSpec::parse("1h35min").unwrap())
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_par_as_value() {
        let src = r#"
            int win = 0;
            win =
               par do
                  return 0;
               with
                  return 1;
               end;
        "#;
        let p = parse(src).unwrap();
        match &p.block.stmts[1].kind {
            StmtKind::Assign { rhs: AssignRhs::Par(ParKind::Par, arms), .. } => {
                assert_eq!(arms.len(), 2)
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_field_access_and_cast() {
        let src = r#"
            _SDL_Event event;
            if _SDL_PollEvent(&event) then
                if event.type == _SDL_KEYDOWN then
                    nothing;
                end
            end
            int x = <int> _ptr->field;
        "#;
        parse(src).unwrap();
    }

    #[test]
    fn parses_sizeof() {
        let src = "int x = sizeof<int> + sizeof<_message_t>;";
        let p = parse(src).unwrap();
        match &p.block.stmts[0].kind {
            StmtKind::VarDecl { vars, .. } => {
                let init = vars[0].init.as_ref().unwrap();
                match init {
                    AssignRhs::Expr(e) => {
                        assert!(matches!(e.kind, ExprKind::Binop(..)));
                    }
                    other => panic!("{other:?}"),
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_single_arm_par() {
        assert!(parse("par do nothing; end").is_err());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("loop do").is_err());
        assert!(parse("1 + 2;").is_err());
        assert!(parse("v = ;").is_err());
        assert!(parse("").is_err());
        assert!(parse("await;").is_err());
    }

    #[test]
    fn error_positions_are_meaningful() {
        let err = parse("nothing;\n   loop od").unwrap_err();
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn pretty_roundtrip_paper_programs() {
        for src in [
            INTRO,
            "int tc, tf;\ninternal void tc_evt, tf_evt;\npar do\nloop do\nawait tc_evt;\ntf = 9 * tc / 5 + 32;\nemit tf_evt;\nend\nwith\nloop do\nawait tf_evt;\ntc = 5 * (tf-32) / 9;\nemit tc_evt;\nend\nwith\nnothing;\nend",
            "int v;\nawait 10ms;\nv = 1;\nawait 1ms;\nv = 2;",
            "par/or do\nawait 50ms;\nawait 49ms;\nwith\nawait 100ms;\nend",
        ] {
            let p1 = parse(src).unwrap();
            let text = pretty(&p1);
            let p2 = parse(&text).unwrap_or_else(|e| panic!("re-parse failed: {e}\n---\n{text}"));
            // spans differ between the two parses; compare the printed form,
            // which is span-free and canonical
            assert_eq!(text, pretty(&p2), "round-trip mismatch for:\n{text}");
        }
    }

    #[test]
    fn operator_precedence_shape() {
        let p = parse("int x = 1 + 2 * 3;").unwrap();
        let text = pretty(&p);
        assert!(text.contains("(1 + (2 * 3))"), "{text}");
    }

    #[test]
    fn unary_binds_tighter_than_binop() {
        let p = parse("int x = -1 + 2;").unwrap();
        let text = pretty(&p);
        assert!(text.contains("(-(1) + 2)"), "{text}");
    }
}

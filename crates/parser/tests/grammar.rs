//! Grammar conformance: every production of the Appendix-A grammar, the
//! documented deviations, and the diagnostics' source positions.

use ceu_ast::{pretty, AssignRhs, BinOp, ExprKind, StmtKind, UnOp};
use ceu_parser::parse;

fn parse_ok(src: &str) -> ceu_ast::Program {
    parse(src).unwrap_or_else(|e| panic!("{e}\n---\n{src}"))
}

#[test]
fn every_statement_production_parses() {
    // one giant program touching each Stmt alternative of the grammar
    let src = r#"
        nothing;
        input int A, B;
        input void C;
        output int Out;
        internal void tick;
        int x = 0, y;
        int[4] arr;
        _message_t* ptr;
        C do int g; end
        pure _abs;
        deterministic _f, _g;
        await A;
        await 10ms;
        await (x + 1);
        emit tick;
        emit Out = x;
        if x then
           nothing;
        else
           nothing;
        end
        loop do
           break;
        end
        par/and do
           await A;
        with
           await B;
        end
        _f(x, y);
        call _g(x);
        x = 1;
        y = await A;
        x = do
           return 1;
        end;
        y = async do
           return 2;
        end;
        do
           nothing;
        end
        suspend A do
           await C;
        end
        async do
           nothing;
        end
        par/or do
           await A;
        with
           await B;
        end
        par do
           await forever;
        with
           await forever;
        end
        return x;
    "#;
    let p = parse_ok(src);
    assert!(p.block.stmts.len() > 25);
}

#[test]
fn every_operator_parses_with_c_precedence() {
    let src = "int a, b, c;\na = b || c && b | c ^ b & c == b != c < b > c <= b >= c << b >> c + b - c * b / c % b;";
    let p = parse_ok(src);
    // the top-most operator must be || (lowest precedence)
    match &p.block.stmts[1].kind {
        StmtKind::Assign { rhs: AssignRhs::Expr(e), .. } => {
            assert!(matches!(e.kind, ExprKind::Binop(BinOp::Or, _, _)), "{e}");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn unary_operators_nest() {
    let src = "int a, b;\na = !-+~b;\nb = *&a;";
    let p = parse_ok(src);
    match &p.block.stmts[1].kind {
        StmtKind::Assign { rhs: AssignRhs::Expr(e), .. } => match &e.kind {
            ExprKind::Unop(UnOp::Not, inner) => {
                assert!(matches!(inner.kind, ExprKind::Unop(UnOp::Neg, _)));
            }
            other => panic!("{other:?}"),
        },
        other => panic!("{other:?}"),
    }
}

#[test]
fn postfix_chains_parse() {
    parse_ok("int v;\nv = _a.b.c(1)[2]->d;");
    parse_ok("int v;\nv = _MAP[0][1];");
    parse_ok("int v;\nv = _f()(1);");
}

#[test]
fn casts_and_sizeof() {
    let p = parse_ok("int v;\nv = <int> sizeof<_message_t> + <_u8*> v;");
    let text = pretty(&p);
    assert!(text.contains("sizeof<_message_t>") || text.contains("sizeof<message_t>"), "{text}");
}

#[test]
fn char_and_string_escapes() {
    let p = parse_ok("int v;\n_f(\"tab\\t nl\\n quote\\\" back\\\\\", '\\n', '\\'', '\\0');");
    let text = pretty(&p);
    assert!(text.contains("\\t"), "{text}");
}

#[test]
fn hex_and_large_numbers() {
    parse_ok("int v;\nv = 0xFF + 0x0 + 2147483647;");
}

#[test]
fn all_time_units_parse() {
    for t in ["1h", "2min", "3s", "4ms", "5us", "1h2min3s4ms5us", "90min"] {
        parse_ok(&format!("await {t};"));
    }
}

#[test]
fn comments_everywhere() {
    parse_ok("// leading\nint v; // trailing\n/* block */ await /* inline */ 1s; /* end */");
}

#[test]
fn error_spans_point_at_the_problem() {
    let cases = [("await ;", 1, 7), ("int v;\nv = ;", 2, 5), ("loop do\nawait 1s;\nod", 3, 1)];
    for (src, line, col) in cases {
        let err = parse(src).unwrap_err();
        assert_eq!((err.span.line, err.span.col), (line, col), "{src:?}: {err}");
    }
}

#[test]
fn deeply_nested_structures_do_not_overflow() {
    let mut src = String::new();
    for _ in 0..64 {
        src.push_str("do\n");
    }
    src.push_str("await 1s;\n");
    for _ in 0..64 {
        src.push_str("end\n");
    }
    parse_ok(&src);
}

#[test]
fn long_expression_chains_parse() {
    let mut e = String::from("1");
    for i in 0..200 {
        e.push_str(&format!(" + {i}"));
    }
    parse_ok(&format!("int v;\nv = {e};"));
}

#[test]
fn keywords_are_reserved_for_variables() {
    for kw in ["loop", "par", "await", "emit", "end", "return", "suspend", "output"] {
        assert!(parse(&format!("int {kw};")).is_err(), "`{kw}` must be reserved");
    }
}

#[test]
fn c_event_identifier_still_works_in_all_positions() {
    // `C` is almost-a-keyword: a C block when followed by `do`, an event
    // name otherwise
    parse_ok("input void C;\nawait C;\npar/and do\n await C;\nwith\n await C;\nend");
    parse_ok("C do int x; end\ninput void C;\nawait C;");
}

#[test]
fn separator_semicolons_are_optional_and_repeatable() {
    parse_ok("int v;;;\nv = 1\nv = 2;;\nawait 1s\n;");
}

#[test]
fn empty_and_whitespace_only_inputs_fail() {
    assert!(parse("").is_err());
    assert!(parse("   \n\t  ").is_err());
    assert!(parse("// just a comment").is_err());
}

#[test]
fn async_value_and_statement_forms() {
    let p = parse_ok("int r;\nr = async do return 1; end;\nasync do nothing; end\nawait 1s;");
    let kinds: Vec<_> = p.block.stmts.iter().map(|s| &s.kind).collect();
    assert!(matches!(kinds[1], StmtKind::Assign { rhs: AssignRhs::Async(_), .. }));
    assert!(matches!(kinds[2], StmtKind::Async { .. }));
}

#[test]
fn emit_time_forms() {
    let p = parse_ok("async do\n emit 10ms;\n emit 1h35min;\nend\nawait 1s;");
    match &p.block.stmts[0].kind {
        StmtKind::Async { body } => {
            assert!(matches!(body.stmts[0].kind, StmtKind::EmitTime { .. }));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn dotted_annotation_names() {
    let p = parse_ok("deterministic _lcd.setCursor, _lcd.write, _analogRead;\nawait 1s;");
    match &p.block.stmts[0].kind {
        StmtKind::Deterministic { names } => {
            assert_eq!(names[0], "lcd.setCursor");
            assert_eq!(names[1], "lcd.write");
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn negative_numbers_via_unary_minus() {
    // the grammar has no negative literals; `-` is unary
    let p = parse_ok("int v;\nv = -5;");
    match &p.block.stmts[1].kind {
        StmtKind::Assign { rhs: AssignRhs::Expr(e), .. } => {
            assert!(matches!(e.kind, ExprKind::Unop(UnOp::Neg, _)));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn pointer_types_multi_star() {
    parse_ok("_message_t** handle;\nint** pp;\nawait 1s;");
}

#[test]
fn declarations_vs_expressions_disambiguate() {
    // `int[10] keys` is a declaration; `keys[idx] = v` is an assignment
    let p = parse_ok("int[10] keys;\nint idx, v;\nkeys[idx] = v;\nawait 1s;");
    assert!(matches!(p.block.stmts[0].kind, StmtKind::VarDecl { .. }));
    assert!(matches!(p.block.stmts[2].kind, StmtKind::Assign { .. }));
}
